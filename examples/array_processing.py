"""The paper's other motivating applications (§VI related work):

- underwater acoustic target detection (ref [2]): per-frequency-bin
  covariance SVDs drive MUSIC-style bearing estimation;
- separable CNN filters (ref [3]): a filter bank factorizes to rank-1
  column/row passes, cutting per-pixel multiplies.

Run:  python examples/array_processing.py
"""

import numpy as np

from repro import WCycleSVD
from repro.apps.acoustics import ArraySpec, SubspaceDetector, simulate_snapshots
from repro.apps.separable_filters import (
    convolve2d,
    convolve_separable,
    separate_filter_bank,
)


def acoustic_demo(solver) -> None:
    array = ArraySpec(n_sensors=16)
    true_bearing = 28.0
    bins = [
        simulate_snapshots(
            array, [true_bearing], n_snapshots=300, snr_db=15.0, rng=50 + b
        )
        for b in range(8)
    ]
    detector = SubspaceDetector(array, solver)
    result = detector.detect(bins)
    print(f"hydrophone array: {array.n_sensors} sensors, 8 frequency bins")
    print(f"true bearing magnitude: {true_bearing} deg")
    for b in range(len(bins)):
        est = result.detected_bearings(b)
        top = f"{abs(est[0]):5.1f}" if len(est) else "  -  "
        print(
            f"  bin {b}: {result.n_sources[b]} source(s), "
            f"|bearing| ~ {top} deg"
        )


def filter_demo(solver, rng) -> None:
    # A small "layer" of 7x7 kernels: some separable, some not.
    x = np.arange(7) - 3.0
    gauss = np.exp(-(x**2) / 4.0)
    bank = [
        np.outer(gauss, gauss),
        np.outer([1, 2, 1, 0, -1, -2, -1], gauss),
        rng.standard_normal((7, 7)) * 0.2,
        rng.standard_normal((7, 7)) * 0.2,
    ]
    filters = separate_filter_bank(bank, solver, rank=1)
    image = rng.uniform(size=(48, 48))
    print("\nseparable filters (rank 1 of each 7x7 kernel):")
    print(f"{'kernel':>8} {'mults/px':>9} {'vs dense':>9} {'output err':>11}")
    for idx, (K, f) in enumerate(zip(bank, filters)):
        dense = convolve2d(image, K)
        fast = convolve_separable(image, f)
        err = np.abs(dense - fast).max() / max(1e-12, np.abs(dense).max())
        print(
            f"{idx:>8} {f.multiplies_per_pixel():>9} "
            f"{49 / f.multiplies_per_pixel():>8.1f}x {err:>11.2e}"
        )


def main() -> None:
    solver = WCycleSVD(device="V100")
    rng = np.random.default_rng(9)
    acoustic_demo(solver)
    filter_demo(solver, rng)


if __name__ == "__main__":
    main()
