"""A tour of the tailoring strategy and auto-tuning engine (paper §IV-D):
the candidate table, the TLP/AI objectives, the threshold walk, and how the
chosen plan changes with batch size and matrix shape.

Run:  python examples/autotuning_tour.py
"""

from repro.gpusim import V100
from repro.tuning import AutoTuner, candidate_plans
from repro.tuning.alpha import alpha_gcd_rule


def main() -> None:
    # --- the candidate table for m* = 256 (paper Table III) -------------
    shapes_100 = [(256, 256)] * 100
    print("candidate plans for m* = 256 (Table III) with f1/f2/f3:")
    print(f"{'plan':>5} {'w':>4} {'delta':>6} {'T':>5} "
          f"{'TLP (f1)':>12} {'AI1 (f2)':>9} {'AI2 (f3)':>9}")
    for plan in candidate_plans(256):
        print(
            f"{plan.index:>5} {plan.width:>4} {plan.delta:>6} "
            f"{plan.threads:>5} {plan.tlp(shapes_100):>12,.0f} "
            f"{plan.ai_gram():>9.0f} {plan.ai_update():>9.1f}"
        )

    # --- the paper's worked example --------------------------------------
    tuner = AutoTuner(V100)
    result = tuner.select(shapes_100)
    print(
        f"\n100 x 256^2 on V100 (threshold {tuner.threshold:,.0f}): "
        f"plan {result.plan.index} selected "
        f"(w={result.plan.width}, delta={result.plan.delta}, "
        f"T={result.plan.threads}), f1 = {result.tlp:,.0f}"
    )
    print("paper: plan 4, f1 = 409,600")

    # --- how the choice moves with the workload --------------------------
    print("\nselected plan vs batch size (256^2):")
    for batch in (1, 10, 100, 1000, 10000):
        plan = tuner.select([(256, 256)] * batch).plan
        print(
            f"  batch {batch:>6}: plan {plan.index} "
            f"(w={plan.width}, delta={plan.delta})"
        )

    # --- alpha-warp selection (paper §IV-B1) -----------------------------
    print("\nGCD rule for the alpha-warp task assignment:")
    for m_star in (8, 16, 32, 48, 100, 256):
        alpha = alpha_gcd_rule(m_star)
        print(f"  m* = {m_star:>4}: alpha = {alpha} "
              f"({int(alpha * 32)} threads per column pair)")

    # --- threshold calibration -------------------------------------------
    calibrated = AutoTuner(V100).calibrate_threshold()
    print(f"\ncalibrated TLP threshold for V100: {calibrated:,.0f} "
          f"(paper uses 306,149)")


if __name__ == "__main__":
    main()
