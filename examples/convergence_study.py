"""Convergence study on the SuiteSparse stand-ins (paper Table VII and
Fig. 15): sweeps to working accuracy as a function of conditioning, for the
W-cycle versus a uniform one-sided Jacobi, plus the per-sweep error trace.

Real numerics throughout; matrices are scaled to 1/4 the paper's dimensions
(exact condition numbers) so the study runs in under a minute.

Run:  python examples/convergence_study.py
"""

import numpy as np

from repro import WCycleSVD
from repro.baselines import CuSolverModel
from repro.datasets import table7_specs
from repro.utils.matrices import random_with_condition

SCALE = 4
TOL = 1e-12


def main() -> None:
    print(f"{'matrix':<16} {'size':>9} {'condition':>10} "
          f"{'uniform':>8} {'W-cycle':>8}")
    uniform = CuSolverModel("V100")
    wcycle = WCycleSVD(device="V100")
    for spec in table7_specs():
        m, n = max(16, spec.rows // SCALE), max(12, spec.cols // SCALE)
        cond = min(spec.condition, 1e12)
        A = random_with_condition(m, n, cond, rng=hash(spec.name) % 2**32)
        res_u = uniform.decompose(A)
        res_w = wcycle.decompose(A)
        s_u = res_u.trace.sweeps_to(TOL) or res_u.trace.sweeps
        s_w = res_w.trace.sweeps_to(TOL) or res_w.trace.sweeps
        print(
            f"{spec.name:<16} {m:>4}x{n:<4} {spec.condition:>10.2e} "
            f"{s_u:>8} {s_w:>8}"
        )

    # Per-sweep error trace for the impcol_d-conditioned case (Fig. 15(a)).
    A = random_with_condition(106, 106, 2.06e3, rng=42)
    res_u = uniform.decompose(A)
    res_w = wcycle.decompose(A)
    print("\nerror per sweep (impcol_d stand-in):")
    print(f"{'sweep':>6} {'uniform':>12} {'W-cycle':>12}")
    for k in range(max(res_u.trace.sweeps, res_w.trace.sweeps)):
        e_u = (
            f"{res_u.trace.records[k].off_norm:.3e}"
            if k < res_u.trace.sweeps
            else "-"
        )
        e_w = (
            f"{res_w.trace.records[k].off_norm:.3e}"
            if k < res_w.trace.sweeps
            else "-"
        )
        print(f"{k + 1:>6} {e_u:>12} {e_w:>12}")

    # Both find the same spectrum.
    np.testing.assert_allclose(res_u.S, res_w.S, rtol=1e-7)
    print("\nspectra agree to 1e-7 relative — accuracy is not traded away.")


if __name__ == "__main__":
    main()
