"""Profiling tour: run a batched SVD under the simulated-GPU profiler,
verify the factorization battery, classify every kernel on the device
roofline, and export a chrome://tracing timeline.

Run:  python examples/profile_and_trace.py
"""

from collections import Counter
from pathlib import Path

import numpy as np

from repro import Profiler, WCycleSVD, verify_svd
from repro.gpusim import V100, chrome_trace, ridge_intensity, roofline_points


def main() -> None:
    rng = np.random.default_rng(5)
    batch = [rng.standard_normal((220, 96)) for _ in range(4)] + [
        rng.standard_normal((32, 32)) for _ in range(8)
    ]

    solver = WCycleSVD(device="V100")
    profiler = Profiler()
    results = solver.decompose_batch(batch, profiler=profiler)

    # --- verification battery -------------------------------------------
    report = verify_svd(batch[0], results[0])
    print("verification of the first (tall) matrix:")
    print(report.summary())

    # --- profile ----------------------------------------------------------
    print("\nsimulated-GPU profile:")
    print(profiler.report.summary())

    # --- roofline ---------------------------------------------------------
    ridge = ridge_intensity(V100)
    print(f"\nroofline (V100 ridge at {ridge:.1f} flops/byte):")
    bounds = Counter(p.bound for p in roofline_points(profiler.report, V100))
    for bound, count in sorted(bounds.items()):
        print(f"  {bound:<8} {count} launches")

    # --- chrome trace -----------------------------------------------------
    out = Path("benchmarks/results/example_trace.json")
    out.parent.mkdir(exist_ok=True)
    out.write_text(chrome_trace(profiler.report))
    print(f"\ntimeline written to {out} (load in chrome://tracing)")


if __name__ == "__main__":
    main()
