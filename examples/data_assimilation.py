"""Oceanic data assimilation (paper §V-F): a synthetic sea-surface state is
reconstructed from scattered observations via a localized ensemble
smoother whose per-grid-point analyses are a batched SVD workload.

Run:  python examples/data_assimilation.py
"""


from repro import WCycleEstimator, WCycleSVD
from repro.apps.assimilation import AssimilationExperiment
from repro.baselines import MagmaModel
from repro.datasets import assimilation_sizes


def main() -> None:
    # --- real-arithmetic assimilation at laptop scale -------------------
    experiment = AssimilationExperiment(
        nlat=12,
        nlon=12,
        n_observations=90,
        localization_radius=3.5,
        n_members=24,
        seed=11,
    )
    sizes = experiment.svd_sizes()
    print(
        f"mesh {experiment.grid.nlat} x {experiment.grid.nlon}, "
        f"{experiment.grid.n_observations} observations, "
        f"{len(sizes)} local analyses "
        f"(SVD sizes {min(sizes)}..{max(sizes)})"
    )

    result = experiment.run(WCycleSVD(device="V100"), cycles=2)
    print(
        f"ensemble-mean RMSE {result.rmse_before:.4f} -> "
        f"{result.rmse_after:.4f}  "
        f"spread {result.spread_before:.4f} -> {result.spread_after:.4f}"
    )

    # --- the paper's Fig. 14(b) comparison at production scale ----------
    # Per-grid-point analysis matrices of 50..1024 like the 0.1-degree
    # oceanic mesh; costs from the simulated Vega20 (cost-only, no math).
    shapes = assimilation_sizes(256, rng=0)
    t_w = WCycleEstimator(device="Vega20").estimate_time(shapes)
    t_m = MagmaModel("Vega20").estimate_time(shapes)
    print(
        f"\n256 grid points on Vega20 (simulated): "
        f"W-cycle {t_w:.3f}s vs MAGMA {t_m:.3f}s "
        f"-> {t_m / t_w:.2f}x (paper: 2.73~3.09x)"
    )


if __name__ == "__main__":
    main()
