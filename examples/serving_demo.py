"""Serving demo: asynchronous SVD requests through the micro-batching broker.

Many application threads each need "an SVD, now" — none of them holds a
batch, but together they *are* one. The broker recovers batched
throughput from that stream: requests coalesce per shape bucket, flush
as fused batches into the batch-vectorized engine, and fan back out to
per-request futures with results bit-identical to standalone solves.

Run:  python examples/serving_demo.py
"""

import threading

import numpy as np

from repro import SVDClient, SVDServer, ServeConfig
from repro.jacobi.batched import BatchedJacobiEngine


def main() -> None:
    config = ServeConfig(max_batch=16, max_wait_ms=2.0, max_pending=256)

    with SVDServer(config) as server:
        # --- the asynchronous surface: futures --------------------------
        rng = np.random.default_rng(7)
        matrices = [
            rng.standard_normal((16, 8) if i % 2 else (24, 12))
            for i in range(24)
        ]
        futures = [server.submit(a) for a in matrices]
        results = [f.result() for f in futures]
        print("asynchronous submits")
        print(f"  {len(results)} futures resolved")

        # Served factors are bit-identical to a standalone batch solve.
        reference = BatchedJacobiEngine().svd_batch(matrices)
        identical = all(
            np.array_equal(got.U, want.U)
            and np.array_equal(got.S, want.S)
            and np.array_equal(got.V, want.V)
            for got, want in zip(results, reference)
        )
        print(f"  bit-identical to standalone solves: {identical}")

        # --- the synchronous surface: many client threads ---------------
        # Concurrency is what fills fused batches: each thread blocks on
        # its own solve while the broker coalesces across threads.
        def worker(seed: int) -> None:
            client = SVDClient(server)
            local = np.random.default_rng(seed)
            for _ in range(8):
                a = local.standard_normal((16, 8))
                res = client.solve(a, priority=seed % 2, deadline_ms=50.0)
                assert res.S.shape == (8,)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = server.stats()
        print("\nclient-thread traffic (8 threads x 8 solves)")
        print(f"  mean batch fill: {stats.mean_fill:.2f}")

        print("\nbroker statistics")
        print(stats.summary())


if __name__ == "__main__":
    main()
