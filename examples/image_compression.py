"""Low-rank image compression — the classic SVD application from the
paper's introduction: keep the primary singular values of an image to
retain its quality at a fraction of the storage.

A synthetic "photograph" (smooth structure + texture + noise) is
compressed at several ranks; tiles of the image form a batched SVD the
W-cycle solver factors in one call.

Run:  python examples/image_compression.py
"""

import numpy as np

from repro import WCycleSVD
from repro.apps.compression import TiledSVDCodec, psnr


def synthetic_image(size: int = 96, seed: int = 3) -> np.ndarray:
    """A smooth scene with edges and light noise, values in [0, 1]."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:size, 0:size] / size
    scene = (
        0.6 * np.sin(3 * np.pi * x) * np.cos(2 * np.pi * y)
        + 0.3 * ((x - 0.5) ** 2 + (y - 0.5) ** 2 < 0.1)
        + 0.1 * rng.standard_normal((size, size))
    )
    scene -= scene.min()
    return scene / scene.max()


def main() -> None:
    image = synthetic_image()
    solver = WCycleSVD(device="V100")

    # --- whole-image compression ----------------------------------------
    result = solver.decompose(image)
    n = image.shape[0]
    print(f"{n} x {n} image, full rank {len(result.S)}")
    print(f"{'rank':>6} {'storage':>9} {'PSNR (dB)':>10}")
    for rank in (2, 5, 10, 20, 40):
        approx = result.truncate(rank).reconstruct()
        storage = rank * (2 * n + 1) / n**2
        print(f"{rank:>6} {storage:>8.1%} {psnr(image, approx):>10.2f}")

    # --- tiled compression: a batched SVD workload ----------------------
    codec = TiledSVDCodec(solver, tile=24)
    print("\nrate-distortion with 24x24 tiles:")
    print(f"{'rank':>6} {'compression':>12} {'PSNR (dB)':>10}")
    for rank, ratio, quality in codec.rate_distortion(image, [2, 4, 8]):
        print(f"{rank:>6} {ratio:>11.1f}x {quality:>10.2f}")


if __name__ == "__main__":
    main()
