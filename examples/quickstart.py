"""Quickstart: batched SVD of mixed-size matrices with the W-cycle solver.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Profiler, WCycleSVD


def main() -> None:
    rng = np.random.default_rng(7)

    # A batch the way real workloads look: sizes all over the place.
    batch = [
        rng.standard_normal((8, 8)),
        rng.standard_normal((30, 18)),
        rng.standard_normal((64, 64)),
        rng.standard_normal((24, 96)),  # wide: handled via its transpose
        rng.standard_normal((120, 80)),
    ]

    solver = WCycleSVD(device="V100")
    profiler = Profiler()
    results = solver.decompose_batch(batch, profiler=profiler)

    print("per-matrix results")
    for A, res in zip(batch, results):
        err = res.reconstruction_error(A)
        ref = np.linalg.svd(A, compute_uv=False)
        sv_err = np.abs(res.S - ref).max() / ref[0]
        sweeps = res.trace.sweeps if res.trace is not None else "-"
        print(
            f"  {A.shape[0]:>4} x {A.shape[1]:<4} "
            f"reconstruction {err:.2e}  sv-vs-LAPACK {sv_err:.2e}  "
            f"sweeps {sweeps}"
        )

    print("\nbatch check:", end=" ")
    print(f"max error {results.max_reconstruction_error(batch):.2e}")

    print("\nsimulated-GPU profile (V100)")
    print(profiler.report.summary())


if __name__ == "__main__":
    main()
