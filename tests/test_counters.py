"""Profiling counters: KernelStats arithmetic and report aggregation."""

import pytest

from repro.gpusim.counters import KernelStats, Profiler, ProfileReport


def _stats(**kwargs):
    defaults = dict(
        kernel="k",
        blocks=10,
        threads_per_block=128,
        shared_bytes_per_block=1024,
        flops=1e6,
        gm_bytes=1e4,
        gm_transactions=100,
        occupancy=0.5,
        time=1e-3,
    )
    defaults.update(kwargs)
    return KernelStats(**defaults)


class TestKernelStats:
    def test_threads(self):
        assert _stats().threads == 1280

    def test_arithmetic_intensity(self):
        assert _stats().arithmetic_intensity == pytest.approx(100.0)

    def test_ai_with_zero_bytes(self):
        assert _stats(gm_bytes=0.0).arithmetic_intensity == float("inf")
        assert _stats(gm_bytes=0.0, flops=0.0).arithmetic_intensity == 0.0

    def test_repeated_scales_extensive_quantities(self):
        r = _stats().repeated(5)
        assert r.time == pytest.approx(5e-3)
        assert r.flops == pytest.approx(5e6)
        assert r.gm_transactions == 500
        assert r.occupancy == 0.5  # intensive: unchanged
        assert r.blocks == 10

    def test_repeated_one_is_identity(self):
        s = _stats()
        assert s.repeated(1) is s

    def test_repeated_rejects_zero(self):
        with pytest.raises(ValueError):
            _stats().repeated(0)


class TestProfileReport:
    def test_totals(self):
        report = ProfileReport()
        report.add(_stats(time=1e-3, flops=1e6))
        report.add(_stats(time=2e-3, flops=3e6))
        assert report.total_time == pytest.approx(3e-3)
        assert report.total_flops == pytest.approx(4e6)
        assert report.total_gm_transactions == 200
        assert report.launch_count == 2

    def test_mean_occupancy_time_weighted(self):
        report = ProfileReport()
        report.add(_stats(time=1e-3, occupancy=1.0))
        report.add(_stats(time=3e-3, occupancy=0.0))
        assert report.mean_occupancy == pytest.approx(0.25)

    def test_mean_occupancy_empty(self):
        assert ProfileReport().mean_occupancy == 0.0

    def test_by_kernel(self):
        report = ProfileReport()
        report.add(_stats(kernel="a", time=1e-3))
        report.add(_stats(kernel="b", time=2e-3))
        report.add(_stats(kernel="a", time=4e-3))
        times = report.by_kernel()
        assert times["a"] == pytest.approx(5e-3)
        assert times["b"] == pytest.approx(2e-3)

    def test_extend(self):
        a, b = ProfileReport(), ProfileReport()
        a.add(_stats())
        b.add(_stats())
        a.extend(b)
        assert a.launch_count == 2

    def test_summary_mentions_kernels(self):
        report = ProfileReport()
        report.add(_stats(kernel="batched_svd_sm"))
        text = report.summary()
        assert "batched_svd_sm" in text
        assert "occupancy" in text


class TestProfiler:
    def test_collect_context(self):
        profiler = Profiler()
        with profiler.collect() as report:
            profiler.record(_stats())
        assert report.launch_count == 1
        assert report is profiler.report
