"""Cross-module integration: the headline comparisons at test scale.

These are miniature versions of the benchmark harnesses — fast enough for
the unit suite while asserting the qualitative results the paper reports
("who wins, by roughly what factor").
"""

import numpy as np
import pytest

from repro import Profiler, WCycleConfig, WCycleEstimator, WCycleSVD
from repro.baselines import (
    BatchedDPDirect,
    BatchedDPGram,
    CuSolverModel,
    MagmaModel,
)
from repro.datasets import load_matrix


class TestHeadlineSpeedups:
    def test_wcycle_beats_cusolver_batched_small(self):
        """Fig. 7 territory: small batched matrices."""
        w = WCycleEstimator(device="V100")
        cu = CuSolverModel("V100")
        for shape in [(16, 16), (32, 32)]:
            shapes = [shape] * 100
            assert cu.estimate_time(shapes) > 1.5 * w.estimate_time(shapes)

    def test_wcycle_beats_cusolver_batched_large(self):
        """Fig. 8(b) territory: batched large matrices, 2-20x."""
        w = WCycleEstimator(device="V100")
        cu = CuSolverModel("V100")
        shapes = [(256, 256)] * 100
        speedup = cu.estimate_time(shapes) / w.estimate_time(shapes)
        assert speedup > 2.0

    def test_single_svd_advantage_modest(self):
        """Fig. 8(a): batch-1 speedup is real but modest (paper: 1.37x)."""
        w = WCycleEstimator(device="V100")
        cu = CuSolverModel("V100")
        speedup = cu.estimate_time([(1000, 1000)]) / w.estimate_time(
            [(1000, 1000)]
        )
        assert 1.0 < speedup < 6.0

    def test_wcycle_beats_magma_batched(self):
        """Fig. 9: >= 4.2x on batched workloads."""
        w = WCycleEstimator(device="V100")
        m = MagmaModel("V100")
        shapes = [(512, 512)] * 100
        assert m.estimate_time(shapes) > 4.0 * w.estimate_time(shapes)

    def test_wcycle_beats_prior_batched_kernels(self):
        """Table IV: faster than Batched_DP_Direct and _Gram on P100."""
        w = WCycleEstimator(device="P100")
        shapes = [(256, 256)] * 200
        t_w = w.estimate_time(shapes)
        assert BatchedDPDirect("P100").estimate_time(shapes) > t_w
        assert BatchedDPGram("P100").estimate_time(shapes) > t_w


class TestLocalityAndOccupancy:
    def test_fewer_gm_transactions_than_cusolver(self):
        """Fig. 11(b): W-cycle moves less data through global memory."""
        shapes = [(16, 16)] * 200
        w = WCycleEstimator(device="V100").estimate_batch(shapes)
        cu = CuSolverModel("V100").estimate_batch(shapes)
        assert w.total_gm_transactions < cu.total_gm_transactions

    def test_occupancy_grows_with_batch(self):
        """Fig. 11(a): bigger batches fill the device."""
        est = WCycleEstimator(device="V100")
        occ = [
            est.estimate_batch([(256, 256)] * bs).mean_occupancy
            for bs in (1, 500)
        ]
        assert occ[1] > occ[0]


class TestPortability:
    """Fig. 14(a): the advantage holds on every architecture."""

    @pytest.mark.parametrize(
        "device", ["V100", "P100", "GTX-Titan-X", "A100"]
    )
    def test_beats_cusolver_everywhere(self, device):
        shapes = [(512, 512)] * 100
        w = WCycleEstimator(device=device).estimate_time(shapes)
        cu = CuSolverModel(device).estimate_time(shapes)
        assert cu > 2.0 * w

    def test_beats_magma_on_vega20(self):
        shapes = [(512, 512)] * 100
        w = WCycleEstimator(device="Vega20").estimate_time(shapes)
        m = MagmaModel("Vega20").estimate_time(shapes)
        assert m > 2.0 * w

    def test_tensor_cores_help(self):
        """Fig. 13: A100 tensor cores accelerate the level GEMMs."""
        shapes = [(512, 512)] * 100
        with_tc = WCycleEstimator(device="A100").estimate_time(shapes)
        from repro.gpusim import A100
        from dataclasses import replace

        no_tc = WCycleEstimator(
            device=replace(A100, tensor_core_gemm_speedup=1.0)
        ).estimate_time(shapes)
        assert with_tc < no_tc


class TestConvergenceOnRealMatrices:
    """Table VII at test scale: W-cycle needs fewer sweeps than the
    uniform-width baseline on the SuiteSparse stand-ins."""

    def test_wcycle_converges_on_impcol_d_subset(self, rng):
        # Full impcol_d (425^2) is too slow for a unit test; a conditioned
        # 64^2 slice of the same construction exercises the same path.
        from repro.utils.matrices import random_with_condition

        A = random_with_condition(64, 64, 2.06e3, rng=rng)
        res = WCycleSVD(device="V100").decompose(A)
        assert res.trace.off_norms()[-1] < 1e-12
        ref = np.linalg.svd(A, compute_uv=False)
        np.testing.assert_allclose(res.S, ref, rtol=1e-7)

    def test_block_rotations_converge_in_fewer_sweeps(self, rng):
        """Wider blocks -> fewer sweeps (Fig. 15(b) / Observation 2)."""
        from repro.utils.matrices import random_with_condition

        A = random_with_condition(64, 64, 1e3, rng=rng)
        sweeps = {}
        for w1 in (2, 16):
            res = WCycleSVD(WCycleConfig(w1=w1), device="V100").decompose(A)
            sweeps[w1] = res.trace.sweeps
        assert sweeps[16] <= sweeps[2]

    def test_suitesparse_matrix_loads_and_factors(self):
        """End-to-end on the real ash331 stand-in (the smallest one)."""
        A = load_matrix("ash331")[:60, :30]
        res = WCycleSVD(device="V100").decompose(A)
        assert res.reconstruction_error(A) < 1e-9


class TestProfiledEndToEnd:
    def test_full_pipeline_profile(self, rng):
        """Mixed batch through the real driver with full profiling."""
        batch = [
            rng.standard_normal((12, 12)),
            rng.standard_normal((64, 48)),
            rng.standard_normal((30, 70)),
        ]
        profiler = Profiler()
        results = WCycleSVD(device="V100").decompose_batch(
            batch, profiler=profiler
        )
        assert results.max_reconstruction_error(batch) < 1e-9
        report = profiler.report
        assert report.total_time > 0
        assert report.total_flops > 0
        assert 0 < report.mean_occupancy <= 1
        summary = report.summary()
        assert "launches" in summary
