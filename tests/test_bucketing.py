"""Shape bucketing: the batch-axis grouping behind the vectorized engine."""

from __future__ import annotations

import numpy as np

from repro.utils.bucketing import (
    ShapeBucket,
    bucket_by_shape,
    bucket_cost,
    order_buckets,
    scatter_to_list,
    stack_bucket,
)


class TestBucketByShape:
    def test_uniform_batch_is_one_bucket(self):
        buckets = bucket_by_shape([(16, 8)] * 5)
        assert len(buckets) == 1
        assert buckets[0].shape == (16, 8)
        assert buckets[0].indices == (0, 1, 2, 3, 4)
        assert len(buckets[0]) == 5

    def test_ragged_batch_groups_by_shape(self):
        shapes = [(16, 8), (4, 4), (16, 8), (8, 16), (4, 4)]
        buckets = bucket_by_shape(shapes)
        assert [(b.shape, b.indices) for b in buckets] == [
            ((16, 8), (0, 2)),
            ((4, 4), (1, 4)),
            ((8, 16), (3,)),
        ]

    def test_bucket_order_is_first_seen(self):
        buckets = bucket_by_shape([(2, 2), (9, 9), (2, 2)])
        assert [b.shape for b in buckets] == [(2, 2), (9, 9)]

    def test_indices_preserve_caller_order(self):
        buckets = bucket_by_shape([(3, 3)] * 4)
        assert buckets[0].indices == (0, 1, 2, 3)

    def test_every_index_in_exactly_one_bucket(self):
        shapes = [(i % 3 + 1, 2) for i in range(20)]
        buckets = bucket_by_shape(shapes)
        seen = sorted(i for b in buckets for i in b.indices)
        assert seen == list(range(20))

    def test_composite_keys(self):
        """Joint (panel, rotation) shape keys, as BatchedGemm.update uses."""
        panels = [(16, 8), (16, 8), (16, 8)]
        rots = [(8, 8), (8, 6), (8, 8)]
        keys = [p + r for p, r in zip(panels, rots)]
        buckets = bucket_by_shape(keys)
        assert [b.indices for b in buckets] == [(0, 2), (1,)]

    def test_empty_batch(self):
        assert bucket_by_shape([]) == []

    def test_bucket_is_hashable_value_object(self):
        a = ShapeBucket(shape=(2, 2), indices=(0, 1))
        b = ShapeBucket(shape=(2, 2), indices=(0, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestBucketCost:
    def test_svd_bucket_cost(self):
        """(b, m, n) bucket -> b * m * n^2 one-sided-sweep proxy."""
        b = ShapeBucket(shape=(16, 8), indices=(0, 1, 2))
        assert bucket_cost(b) == 3 * 16 * 8 * 8

    def test_cost_scales_with_count(self):
        one = ShapeBucket(shape=(8, 8), indices=(0,))
        ten = ShapeBucket(shape=(8, 8), indices=tuple(range(10)))
        assert bucket_cost(ten) == 10 * bucket_cost(one)

    def test_degenerate_shape(self):
        assert bucket_cost(ShapeBucket(shape=(), indices=(0, 1))) == 2.0


class TestOrderBuckets:
    def test_descending_cost(self):
        buckets = bucket_by_shape([(4, 4), (64, 48), (64, 48), (16, 8)])
        ordered = order_buckets(buckets)
        costs = [bucket_cost(b) for b in ordered]
        assert costs == sorted(costs, reverse=True)
        assert ordered[0].shape == (64, 48)

    def test_stable_shape_tie_break(self):
        """Equal-cost buckets order by ascending shape, not first-seen."""
        a = ShapeBucket(shape=(8, 4), indices=(0,))   # 8*4*4 = 128
        b = ShapeBucket(shape=(2, 8), indices=(1,))   # 2*8*8 = 128
        assert order_buckets([a, b]) == order_buckets([b, a]) == [b, a]

    def test_order_independent_of_first_seen(self):
        shapes_one = [(4, 4)] * 3 + [(32, 16)] * 2
        shapes_two = [(32, 16)] * 2 + [(4, 4)] * 3
        one = [b.shape for b in order_buckets(bucket_by_shape(shapes_one))]
        two = [b.shape for b in order_buckets(bucket_by_shape(shapes_two))]
        assert one == two == [(32, 16), (4, 4)]

    def test_grouping_unchanged(self):
        """order_buckets only permutes — same buckets, same indices."""
        buckets = bucket_by_shape([(2, 2), (9, 9), (2, 2), (3, 5)])
        assert sorted(order_buckets(buckets), key=lambda b: b.shape) == sorted(
            buckets, key=lambda b: b.shape
        )


class TestStackScatter:
    def test_stack_selects_and_stacks(self, rng):
        arrays = [rng.standard_normal((4, 3)) for _ in range(5)]
        stack = stack_bucket(arrays, [1, 3])
        assert stack.shape == (2, 4, 3)
        assert np.array_equal(stack[0], arrays[1])
        assert np.array_equal(stack[1], arrays[3])

    def test_scatter_restores_caller_order(self):
        out = [None] * 4
        scatter_to_list(out, [2, 0], ["c", "a"])
        scatter_to_list(out, [1, 3], ["b", "d"])
        assert out == ["a", "b", "c", "d"]

    def test_roundtrip_through_buckets(self, rng):
        shapes = [(6, 4), (3, 3), (6, 4), (3, 3), (2, 5)]
        arrays = [rng.standard_normal(s) for s in shapes]
        out: list[np.ndarray | None] = [None] * len(arrays)
        for bucket in bucket_by_shape(shapes):
            stack = stack_bucket(arrays, bucket.indices)
            scatter_to_list(out, bucket.indices, list(stack))
        for original, restored in zip(arrays, out):
            assert np.array_equal(original, restored)
