"""Shape bucketing: the batch-axis grouping behind the vectorized engine."""

from __future__ import annotations

import numpy as np

from repro.utils.bucketing import (
    ShapeBucket,
    bucket_by_shape,
    scatter_to_list,
    stack_bucket,
)


class TestBucketByShape:
    def test_uniform_batch_is_one_bucket(self):
        buckets = bucket_by_shape([(16, 8)] * 5)
        assert len(buckets) == 1
        assert buckets[0].shape == (16, 8)
        assert buckets[0].indices == (0, 1, 2, 3, 4)
        assert len(buckets[0]) == 5

    def test_ragged_batch_groups_by_shape(self):
        shapes = [(16, 8), (4, 4), (16, 8), (8, 16), (4, 4)]
        buckets = bucket_by_shape(shapes)
        assert [(b.shape, b.indices) for b in buckets] == [
            ((16, 8), (0, 2)),
            ((4, 4), (1, 4)),
            ((8, 16), (3,)),
        ]

    def test_bucket_order_is_first_seen(self):
        buckets = bucket_by_shape([(2, 2), (9, 9), (2, 2)])
        assert [b.shape for b in buckets] == [(2, 2), (9, 9)]

    def test_indices_preserve_caller_order(self):
        buckets = bucket_by_shape([(3, 3)] * 4)
        assert buckets[0].indices == (0, 1, 2, 3)

    def test_every_index_in_exactly_one_bucket(self):
        shapes = [(i % 3 + 1, 2) for i in range(20)]
        buckets = bucket_by_shape(shapes)
        seen = sorted(i for b in buckets for i in b.indices)
        assert seen == list(range(20))

    def test_composite_keys(self):
        """Joint (panel, rotation) shape keys, as BatchedGemm.update uses."""
        panels = [(16, 8), (16, 8), (16, 8)]
        rots = [(8, 8), (8, 6), (8, 8)]
        keys = [p + r for p, r in zip(panels, rots)]
        buckets = bucket_by_shape(keys)
        assert [b.indices for b in buckets] == [(0, 2), (1,)]

    def test_empty_batch(self):
        assert bucket_by_shape([]) == []

    def test_bucket_is_hashable_value_object(self):
        a = ShapeBucket(shape=(2, 2), indices=(0, 1))
        b = ShapeBucket(shape=(2, 2), indices=(0, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestStackScatter:
    def test_stack_selects_and_stacks(self, rng):
        arrays = [rng.standard_normal((4, 3)) for _ in range(5)]
        stack = stack_bucket(arrays, [1, 3])
        assert stack.shape == (2, 4, 3)
        assert np.array_equal(stack[0], arrays[1])
        assert np.array_equal(stack[1], arrays[3])

    def test_scatter_restores_caller_order(self):
        out = [None] * 4
        scatter_to_list(out, [2, 0], ["c", "a"])
        scatter_to_list(out, [1, 3], ["b", "d"])
        assert out == ["a", "b", "c", "d"]

    def test_roundtrip_through_buckets(self, rng):
        shapes = [(6, 4), (3, 3), (6, 4), (3, 3), (2, 5)]
        arrays = [rng.standard_normal(s) for s in shapes]
        out: list[np.ndarray | None] = [None] * len(arrays)
        for bucket in bucket_by_shape(shapes):
            stack = stack_bucket(arrays, bucket.indices)
            scatter_to_list(out, bucket.indices, list(stack))
        for original, restored in zip(arrays, out):
            assert np.array_equal(original, restored)
