"""Candidate tailoring plans (paper Tables II and III)."""

import pytest

from repro.errors import ConfigurationError
from repro.tuning.candidates import (
    CANDIDATE_TABLE,
    TailoringPlan,
    candidate_plans,
)


class TestTableII:
    def test_eight_rows(self):
        assert len(CANDIDATE_TABLE) == 8

    def test_row_contents(self):
        # Spot-check against the paper's Table II.
        assert CANDIDATE_TABLE[0] == (48, 1.0, 256)
        assert CANDIDATE_TABLE[3] == (16, 0.5, 256)
        assert CANDIDATE_TABLE[7] == (8, 0.125, 128)

    def test_ordered_by_increasing_tlp(self):
        """The search direction: f1 rises along the table.

        Strict monotonicity holds within each thread-count tier (the paper's
        rows 7-8 drop T_h to 128, which locally lowers f1); overall the last
        plan still dominates the first by a wide margin.
        """
        shapes = [(256, 256)] * 100
        plans = candidate_plans(256)
        tlps = [p.tlp(shapes) for p in plans]
        t256 = [t for p, t in zip(plans, tlps) if p.threads == 256]
        t128 = [t for p, t in zip(plans, tlps) if p.threads == 128]
        assert t256 == sorted(t256)
        assert t128 == sorted(t128)
        assert tlps[-1] > 10 * tlps[0]

    def test_ordered_by_decreasing_gram_ai(self):
        plans = candidate_plans(256)
        ais = [p.ai_gram() for p in plans]
        assert ais == sorted(ais, reverse=True)


class TestTableIII:
    def test_materialization_for_m256(self):
        """Table III: delta fractions of m* = 256 become concrete heights."""
        plans = candidate_plans(256)
        expected = [
            (48, 256, 256),
            (24, 256, 256),
            (24, 128, 256),
            (16, 128, 256),
            (16, 64, 256),
            (16, 32, 256),
            (8, 64, 128),
            (8, 32, 128),
        ]
        assert [(p.width, p.delta, p.threads) for p in plans] == expected

    def test_indices_cite_table_rows(self):
        plans = candidate_plans(256)
        assert [p.index for p in plans] == list(range(1, 9))


class TestFiltering:
    def test_max_width_drops_infeasible_rows(self):
        plans = candidate_plans(256, max_width=24)
        assert all(p.width <= 24 for p in plans)
        assert plans[0].index == 2  # first surviving row

    def test_all_filtered_raises(self):
        with pytest.raises(ConfigurationError, match="no feasible"):
            candidate_plans(256, max_width=4)

    def test_tiny_m_star_clamps_delta(self):
        plans = candidate_plans(4)
        assert all(p.delta >= 1 for p in plans)

    def test_rejects_bad_m_star(self):
        with pytest.raises(ConfigurationError):
            candidate_plans(0)


class TestPlanValidation:
    def test_rejects_invalid_plan(self):
        with pytest.raises(ConfigurationError):
            TailoringPlan(width=0, delta=8, threads=256)
        with pytest.raises(ConfigurationError):
            TailoringPlan(width=8, delta=8, threads=8)
