"""Baseline comparators: numerics and cost-model structure."""

import numpy as np
import pytest

from tests.helpers import assert_valid_svd
from repro.baselines import (
    CUSOLVER_BATCHED_LIMIT,
    BatchedDPDirect,
    BatchedDPGram,
    CuSolverModel,
    MagmaModel,
    lapack_svd,
)
from repro.errors import ConfigurationError


class TestReference:
    def test_lapack_svd_valid(self, rng):
        A = rng.standard_normal((9, 6))
        assert_valid_svd(A, lapack_svd(A))


class TestCuSolverNumerics:
    def test_single_decompose(self, rng):
        A = rng.standard_normal((20, 14))
        assert_valid_svd(A, CuSolverModel("V100").decompose(A))

    def test_batch_decompose(self, rng):
        batch = [rng.standard_normal((10, 8)) for _ in range(3)]
        results = CuSolverModel("V100").decompose_batch(batch)
        for A, res in zip(batch, results):
            assert_valid_svd(A, res)


class TestCuSolverCosts:
    def test_small_batch_uses_batched_kernel(self):
        report = CuSolverModel("V100").estimate_batch([(16, 16)] * 20)
        assert set(report.by_kernel()) == {"cusolver_gesvdj_batched"}

    def test_large_matrices_serial_calls(self):
        report = CuSolverModel("V100").estimate_batch([(128, 128)] * 3)
        assert report.launch_count == 3  # one folded record per matrix
        assert "cusolver_gesvd_single" in report.by_kernel()

    def test_mixed_batch_splits(self):
        report = CuSolverModel("V100").estimate_batch(
            [(16, 16), (128, 128), (24, 24)]
        )
        kernels = set(report.by_kernel())
        assert "cusolver_gesvdj_batched" in kernels
        assert "cusolver_gesvd_single" in kernels

    def test_batched_api_limit_enforced(self):
        model = CuSolverModel("V100")
        with pytest.raises(ConfigurationError):
            model._batched_small([(64, 64)], [None])

    def test_limit_is_32(self):
        assert CUSOLVER_BATCHED_LIMIT == 32

    def test_serial_cost_scales_linearly_with_batch(self):
        model = CuSolverModel("V100")
        t1 = model.estimate_time([(256, 256)])
        t10 = model.estimate_time([(256, 256)] * 10)
        assert t10 == pytest.approx(10 * t1, rel=1e-9)

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            CuSolverModel("V100").estimate_batch([])


class TestMagma:
    def test_numerics_are_reference(self, rng):
        A = rng.standard_normal((12, 9))
        assert_valid_svd(A, MagmaModel("V100").decompose(A))

    def test_serial_scaling(self):
        model = MagmaModel("V100")
        t1 = model.estimate_time([(256, 256)])
        t5 = model.estimate_time([(256, 256)] * 5)
        assert t5 == pytest.approx(5 * t1, rel=1e-9)

    def test_phase_structure(self):
        report = MagmaModel("V100").estimate_batch([(256, 256)])
        kernels = set(report.by_kernel())
        assert {
            "magma_bidiag_trailing",
            "magma_bidiag_panel",
            "magma_bdsqr_hybrid",
            "magma_unmbr",
        } == kernels

    def test_hybrid_qr_is_significant_for_small_matrices(self):
        """The CPU-side bdsqr chain dominates small sizes — the structural
        weakness the paper's batched comparison exploits."""
        report = MagmaModel("V100").estimate_batch([(128, 128)])
        times = report.by_kernel()
        assert times["magma_bdsqr_hybrid"] > 0.25 * report.total_time


class TestBoukaram:
    def test_direct_numerics(self, rng):
        A = rng.standard_normal((14, 10))
        assert_valid_svd(A, BatchedDPDirect("P100").decompose(A))

    def test_gram_numerics_well_conditioned(self, rng):
        A = rng.standard_normal((14, 10))
        res = BatchedDPGram("P100").decompose(A)
        assert_valid_svd(A, res, tol=1e-8)

    def test_gram_loses_relative_accuracy(self, rng):
        """The documented deficit: squaring the condition number destroys
        the relative accuracy of small singular values."""
        from repro.utils.matrices import random_with_spectrum

        spectrum = np.array([1.0, 1e-9])
        A = random_with_spectrum(12, 2, spectrum, rng=rng)
        gram_s = BatchedDPGram("P100").decompose(A).S
        direct_s = BatchedDPDirect("P100").decompose(A).S
        gram_rel = abs(gram_s[1] - 1e-9) / 1e-9
        direct_rel = abs(direct_s[1] - 1e-9) / 1e-9
        assert direct_rel < 1e-4
        assert gram_rel > 10 * direct_rel

    def test_direct_batched_launches(self):
        report = BatchedDPDirect("P100").estimate_batch([(64, 64)] * 10)
        assert set(report.by_kernel()) == {"batched_dp_direct"}

    def test_gram_three_phases(self):
        report = BatchedDPGram("P100").estimate_batch([(64, 64)] * 10)
        assert set(report.by_kernel()) == {
            "batched_dp_gram_gram",
            "batched_dp_gram_evd",
            "batched_dp_gram_recover",
        }

    def test_batched_scaling_sublinear(self):
        """Genuinely batched: 10x matrices cost < 10x time."""
        model = BatchedDPDirect("P100")
        t10 = model.estimate_time([(128, 128)] * 10)
        t100 = model.estimate_time([(128, 128)] * 100)
        assert t100 < 9 * t10

    def test_empty_batches_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedDPDirect("P100").estimate_batch([])
        with pytest.raises(ConfigurationError):
            BatchedDPGram("P100").estimate_batch([])
