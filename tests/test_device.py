"""Device specifications and the residency calculator."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim import (
    A100,
    GTX_TITAN_X,
    P100,
    V100,
    VEGA20,
    DeviceSpec,
    available_devices,
    get_device,
)


class TestBuiltins:
    def test_all_five_registered(self):
        assert available_devices() == sorted(
            ["A100", "GTX-Titan-X", "P100", "V100", "Vega20"]
        )

    def test_lookup_case_insensitive(self):
        assert get_device("v100") is V100
        assert get_device("VEGA20") is VEGA20

    def test_lookup_passes_spec_through(self):
        assert get_device(P100) is P100

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError, match="unknown device"):
            get_device("H100")

    def test_paper_static_shared_memory(self):
        # All CUDA parts expose 48 KB static shared memory per block.
        for spec in (V100, P100, A100, GTX_TITAN_X):
            assert spec.shared_mem_per_block == 48 * 1024

    def test_amd_wavefront(self):
        assert VEGA20.warp_size == 64

    def test_a100_has_tensor_cores(self):
        assert A100.tensor_core_gemm_speedup > 1.0
        assert V100.tensor_core_gemm_speedup == 1.0

    def test_relative_peaks_ordered(self):
        # A100 > V100 > Vega20 > P100 >> Titan X in double precision.
        peaks = [A100, V100, VEGA20, P100, GTX_TITAN_X]
        values = [d.peak_flops for d in peaks]
        assert values == sorted(values, reverse=True)


class TestValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(name="bad", sm_count=0)

    def test_rejects_tiny_shared(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(name="bad", sm_count=1, shared_mem_per_block=512)

    def test_rejects_nonpositive_peak(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(name="bad", sm_count=1, peak_flops=0)


class TestResidency:
    def test_thread_limited(self):
        # 512-thread blocks, negligible shared memory: 2048/512 = 4.
        assert V100.blocks_resident_per_sm(512, 0) == 4

    def test_shared_limited(self):
        # 40 KB blocks on a 96 KB SM: 2 resident.
        assert V100.blocks_resident_per_sm(64, 40 * 1024) == 2

    def test_block_cap(self):
        assert V100.blocks_resident_per_sm(32, 0) == V100.max_blocks_per_sm

    def test_over_limit_block_is_zero(self):
        assert V100.blocks_resident_per_sm(64, 49 * 1024) == 0

    def test_rejects_bad_threads(self):
        with pytest.raises(ConfigurationError):
            V100.blocks_resident_per_sm(0, 0)

    def test_max_warps(self):
        assert V100.max_warps_per_sm == 64

    def test_with_tensor_cores_copy(self):
        boosted = V100.with_tensor_cores(3.0)
        assert boosted.tensor_core_gemm_speedup == 3.0
        assert V100.tensor_core_gemm_speedup == 1.0
        assert boosted.sm_count == V100.sm_count
