"""Simulated batched SVD kernel (paper §IV-B)."""

import pytest

from tests.helpers import assert_valid_svd
from repro.errors import ConfigurationError, ResourceError
from repro.gpusim import V100, P100, Profiler
from repro.gpusim.svd_kernel import (
    BatchedSVDKernel,
    SMSVDKernelConfig,
    svd_sweep_cost,
    v_panel_in_sm,
)


class TestConfig:
    def test_alpha_choices(self):
        for alpha in (1.0, 0.5, 0.25, 0.125, None, "auto"):
            SMSVDKernelConfig(alpha=alpha)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            SMSVDKernelConfig(alpha=0.3)


class TestRun:
    def test_results_correct(self, rng):
        batch = [rng.standard_normal((16, 8)) for _ in range(5)]
        results, stats = BatchedSVDKernel(V100).run(batch)
        for A, res in zip(batch, results):
            assert_valid_svd(A, res)
        assert stats.blocks == 5

    def test_mixed_sizes(self, rng):
        batch = [
            rng.standard_normal((8, 8)),
            rng.standard_normal((20, 10)),
            rng.standard_normal((6, 16)),  # wide: transposed internally
        ]
        results, stats = BatchedSVDKernel(V100).run(batch)
        for A, res in zip(batch, results):
            assert_valid_svd(A, res)

    def test_rejects_empty_batch(self):
        with pytest.raises(ConfigurationError):
            BatchedSVDKernel(V100).run([])

    def test_rejects_oversized_matrix(self, rng):
        kernel = BatchedSVDKernel(V100)
        with pytest.raises(ResourceError, match="shared memory"):
            kernel.run([rng.standard_normal((512, 512))])

    def test_profiler_records_one_launch(self, rng):
        profiler = Profiler()
        batch = [rng.standard_normal((8, 8)) for _ in range(3)]
        BatchedSVDKernel(V100).run(batch, profiler=profiler)
        assert profiler.report.launch_count == 1
        assert profiler.report.launches[0].kernel == "batched_svd_sm"


class TestWorkingShape:
    def test_transposes_wide(self):
        kernel = BatchedSVDKernel(V100)
        assert kernel.working_shape(4, 10) == (10, 4)
        assert kernel.working_shape(10, 4) == (10, 4)

    def test_transpose_disabled(self):
        kernel = BatchedSVDKernel(
            V100, SMSVDKernelConfig(transpose_wide=False)
        )
        assert kernel.working_shape(4, 10) == (4, 10)


class TestEstimate:
    def test_positive_time(self):
        stats = BatchedSVDKernel(V100).estimate([(16, 8)] * 10)
        assert stats.time > 0
        assert stats.flops > 0

    def test_scales_with_batch(self):
        kernel = BatchedSVDKernel(V100)
        t_small = kernel.estimate([(32, 32)] * 50).time
        t_large = kernel.estimate([(32, 32)] * 5000).time
        assert t_large > t_small
        # Sub-linear growth while occupancy improves.
        assert t_large < 100 * t_small

    def test_condition_slows_convergence(self):
        kernel = BatchedSVDKernel(V100)
        easy = kernel.estimate([(16, 16)] * 10, conditions=[1e1] * 10)
        hard = kernel.estimate([(16, 16)] * 10, conditions=[1e15] * 10)
        assert hard.flops > easy.flops

    def test_estimate_respects_residency(self):
        with pytest.raises(ResourceError):
            BatchedSVDKernel(V100).estimate([(512, 512)])

    def test_execute_and_estimate_flops_agree(self, rng):
        """The two paths share cost formulas; only sweep counts differ."""
        batch = [rng.standard_normal((16, 12)) for _ in range(4)]
        kernel = BatchedSVDKernel(V100)
        results, run_stats = kernel.run(batch)
        est_stats = kernel.estimate([(16, 12)] * 4)
        measured_sweeps = sum(r.trace.sweeps for r in results)
        # flops per sweep should match between paths.
        assert run_stats.flops / measured_sweeps == pytest.approx(
            est_stats.flops / (4 * _predicted_sweeps(12)), rel=0.05
        )


def _predicted_sweeps(n):
    from repro.jacobi.sweep_model import predict_sweeps_vector

    return predict_sweeps_vector(n)


class TestSweepCost:
    def test_caching_reduces_flops(self):
        cached, _ = svd_sweep_cost(32, 16, cached=True)
        plain, _ = svd_sweep_cost(32, 16, cached=False)
        assert cached < plain

    def test_v_in_sm_removes_streaming(self):
        _, gm_stream = svd_sweep_cost(32, 16, cached=True, v_in_gm=True)
        _, gm_resident = svd_sweep_cost(32, 16, cached=True, v_in_gm=False)
        assert gm_stream > 0
        assert gm_resident == 0

    def test_v_panel_residency_decision(self):
        assert v_panel_in_sm(32, 32, V100)
        assert not v_panel_in_sm(48, 60, V100)


class TestAlphaPolicies:
    def test_fixed_alpha_geometry(self):
        kernel = BatchedSVDKernel(V100, SMSVDKernelConfig(alpha=0.5))
        blocks, threads = kernel.launch_geometry([(32, 32)] * 7, 0.5)
        assert blocks == 7
        assert threads == 16 * 16  # half-warp per pair, 16 pairs

    def test_auto_not_slower_than_any_fixed(self):
        shapes = [(25, 10)] * 50
        auto = BatchedSVDKernel(
            V100, SMSVDKernelConfig(alpha="auto")
        ).estimate(shapes)
        for alpha in (1.0, 0.5, 0.25, 0.125):
            fixed = BatchedSVDKernel(
                V100, SMSVDKernelConfig(alpha=alpha)
            ).estimate(shapes)
            assert auto.time <= fixed.time * (1 + 1e-9)

    def test_gcd_rule_applied_by_default(self):
        kernel = BatchedSVDKernel(P100)
        assert kernel.select_alpha([(48, 16)]) == 0.5  # gcd(48,32)=16
        assert kernel.select_alpha([(100, 16)]) == 0.125  # gcd(100,32)=4
