"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import V100


@pytest.fixture(autouse=True, scope="session")
def _sanitizer_leak_check():
    """Under ``REPRO_SANITIZE=1``, fail the session if any shared-memory
    segment acquired during the run was never released."""
    yield
    from repro.runtime import sanitize

    if sanitize.enabled():
        sanitize.assert_no_leaks()


@pytest.fixture
def chaos():
    """Arm a deterministic fault plan for the test body.

    Yields an ``arm(spec)`` callable: parses a ``REPRO_FAULTS`` spec,
    installs it, and returns the plan. Teardown restores whatever plan was
    installed before the test (possibly the session's env-armed plan), so
    chaos tests compose with a ``REPRO_FAULTS`` CI run.
    """
    from repro.runtime import faults

    prev = faults.installed()

    def arm(spec: str) -> faults.FaultPlan:
        plan = faults.parse_spec(spec)
        faults.install(plan)
        return plan

    yield arm
    if prev is None:
        faults.uninstall()
    else:
        faults.install(prev)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; tests that need different streams jump it."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def device():
    """The paper's primary platform."""
    return V100


@pytest.fixture
def small_matrix(rng) -> np.ndarray:
    """A well-conditioned 12 x 8 test matrix."""
    return rng.standard_normal((12, 8))


@pytest.fixture
def symmetric_matrix(rng) -> np.ndarray:
    """A 10 x 10 symmetric test matrix."""
    M = rng.standard_normal((10, 10))
    return (M + M.T) / 2.0
