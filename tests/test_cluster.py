"""Multi-GPU cluster model (the paper's distributed Fig. 14(b) setting)."""

import pytest

from repro import WCycleEstimator
from repro.errors import ConfigurationError
from repro.gpusim import ClusterSpec, estimate_cluster
from repro.gpusim.cluster import partition_batch


class TestPartition:
    def test_covers_everything_once(self):
        costs = [5.0, 1.0, 3.0, 2.0, 4.0]
        parts = partition_batch(costs, 2)
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(5))

    def test_lpt_balances_loads(self):
        costs = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0]
        parts = partition_batch(costs, 2)
        loads = [sum(costs[i] for i in p) for p in parts]
        # LPT on this instance achieves a 17/16 split.
        assert max(loads) <= 17.0

    def test_single_rank(self):
        parts = partition_batch([1.0, 2.0], 1)
        assert parts == [[1, 0]]

    def test_more_ranks_than_jobs(self):
        parts = partition_batch([1.0], 3)
        assert sum(len(p) for p in parts) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            partition_batch([], 2)
        with pytest.raises(ConfigurationError):
            partition_batch([1.0], 0)


class TestClusterSpec:
    def test_of_constructor(self):
        spec = ClusterSpec.of("Vega20", 4)
        assert spec.device.name == "Vega20"
        assert spec.n_devices == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.of("V100", 0)
        with pytest.raises(ConfigurationError):
            ClusterSpec.of("V100", 2, interconnect_bandwidth=0)


class TestEstimateCluster:
    def _time_fn(self, device="Vega20"):
        est = WCycleEstimator(device=device)
        return lambda shapes: est.estimate_time(shapes)

    def test_multi_gpu_speeds_up_compute(self):
        shapes = [(256, 256)] * 64
        one = estimate_cluster(shapes, ClusterSpec.of("Vega20", 1), self._time_fn())
        four = estimate_cluster(shapes, ClusterSpec.of("Vega20", 4), self._time_fn())
        assert four.compute_time < one.compute_time
        assert four.total_time < one.total_time

    def test_scaling_is_sublinear_but_real(self):
        shapes = [(256, 256)] * 64
        one = estimate_cluster(shapes, ClusterSpec.of("Vega20", 1), self._time_fn())
        eight = estimate_cluster(
            shapes, ClusterSpec.of("Vega20", 8), self._time_fn()
        )
        speedup = one.total_time / eight.total_time
        assert 1.5 < speedup <= 8.0

    def test_load_balance_on_heavy_tail(self):
        """The LPT heuristic keeps variable-size batches balanced."""
        from repro.datasets import assimilation_sizes

        shapes = assimilation_sizes(48, rng=5)
        result = estimate_cluster(
            shapes, ClusterSpec.of("Vega20", 4), self._time_fn()
        )
        assert result.load_imbalance < 1.8

    def test_communication_accounted(self):
        shapes = [(128, 128)] * 8
        result = estimate_cluster(
            shapes, ClusterSpec.of("Vega20", 2), self._time_fn()
        )
        assert result.communication_time > 0
        assert result.total_time == pytest.approx(
            result.compute_time + result.communication_time
        )

    def test_partition_recorded(self):
        shapes = [(64, 64)] * 6
        result = estimate_cluster(
            shapes, ClusterSpec.of("Vega20", 3), self._time_fn()
        )
        assert sorted(i for p in result.partition for i in p) == list(range(6))

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_cluster([], ClusterSpec.of("Vega20", 2), self._time_fn())
