"""Kernel-launch cost model: occupancy and roofline behaviour."""

import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.gpusim import V100
from repro.gpusim.launch import (
    BANDWIDTH_SATURATION_OCCUPANCY,
    LaunchConfig,
    achieved_occupancy,
    simulate_launch,
)


def _cfg(**kwargs):
    defaults = dict(
        kernel="test",
        blocks=80,
        threads_per_block=256,
        shared_bytes_per_block=0,
        flops=1e9,
        gm_bytes=0.0,
    )
    defaults.update(kwargs)
    return LaunchConfig(**defaults)


class TestLaunchConfig:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ConfigurationError):
            _cfg(blocks=0)

    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigurationError):
            _cfg(threads_per_block=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            _cfg(intra_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            _cfg(intra_efficiency=1.5)

    def test_rejects_negative_work(self):
        with pytest.raises(ConfigurationError):
            _cfg(flops=-1)


class TestOccupancy:
    def test_full_grid_full_occupancy(self):
        # 8 blocks of 256 threads per SM = 2048 threads = 100%.
        occ = achieved_occupancy(V100, _cfg(blocks=8 * V100.sm_count))
        assert occ == pytest.approx(1.0)

    def test_small_grid_low_occupancy(self):
        occ = achieved_occupancy(V100, _cfg(blocks=1))
        assert occ == pytest.approx(256 / (80 * 2048))

    def test_shared_memory_caps_occupancy(self):
        # 40 KB blocks: 2 resident per SM regardless of grid size.
        occ = achieved_occupancy(
            V100, _cfg(blocks=10_000, shared_bytes_per_block=40 * 1024)
        )
        assert occ == pytest.approx(2 * 256 / 2048)

    def test_threads_rounded_to_warps(self):
        occ33 = achieved_occupancy(V100, _cfg(blocks=1, threads_per_block=33))
        occ64 = achieved_occupancy(V100, _cfg(blocks=1, threads_per_block=64))
        assert occ33 == occ64

    def test_oversized_block_raises(self):
        with pytest.raises(ResourceError):
            achieved_occupancy(V100, _cfg(threads_per_block=2048))

    def test_oversized_shared_raises(self):
        with pytest.raises(ResourceError):
            achieved_occupancy(
                V100, _cfg(shared_bytes_per_block=49 * 1024)
            )


class TestSimulatedTime:
    def test_includes_launch_overhead(self):
        stats = simulate_launch(V100, _cfg(flops=0.0, gm_bytes=0.0))
        assert stats.time == pytest.approx(V100.kernel_launch_overhead)

    def test_compute_bound_scales_with_flops(self):
        t1 = simulate_launch(V100, _cfg(flops=1e9)).time
        t2 = simulate_launch(V100, _cfg(flops=2e9)).time
        overhead = V100.kernel_launch_overhead
        assert (t2 - overhead) == pytest.approx(2 * (t1 - overhead), rel=1e-9)

    def test_memory_bound_uses_bandwidth(self):
        stats = simulate_launch(
            V100, _cfg(blocks=8 * 80, flops=1.0, gm_bytes=9e9)
        )
        expected = 9e9 / V100.mem_bandwidth + V100.kernel_launch_overhead
        assert stats.time == pytest.approx(expected, rel=1e-6)

    def test_roofline_takes_max(self):
        compute = simulate_launch(V100, _cfg(blocks=640, flops=1e12)).time
        both = simulate_launch(
            V100, _cfg(blocks=640, flops=1e12, gm_bytes=1.0)
        ).time
        assert both == pytest.approx(compute)

    def test_low_occupancy_slows_compute(self):
        t_small = simulate_launch(V100, _cfg(blocks=1, flops=1e9)).time
        t_big = simulate_launch(V100, _cfg(blocks=640, flops=1e9)).time
        assert t_small > t_big

    def test_compute_saturates_past_knee(self):
        # A quarter-occupancy grid already runs at full rate.
        quarter = simulate_launch(V100, _cfg(blocks=160, flops=1e10)).time
        full = simulate_launch(V100, _cfg(blocks=640, flops=1e10)).time
        assert quarter == pytest.approx(full, rel=1e-6)

    def test_low_occupancy_throttles_bandwidth(self):
        needed_blocks = int(
            BANDWIDTH_SATURATION_OCCUPANCY * 80 * 2048 / 256
        )
        saturated = simulate_launch(
            V100, _cfg(blocks=needed_blocks, flops=0.0, gm_bytes=1e9)
        ).time
        starved = simulate_launch(
            V100, _cfg(blocks=needed_blocks // 4, flops=0.0, gm_bytes=1e9)
        ).time
        assert starved > 3.5 * (saturated - V100.kernel_launch_overhead)

    def test_tensor_cores_speed_gemm_only(self):
        from repro.gpusim import A100

        gemm = simulate_launch(
            A100, _cfg(blocks=864, flops=1e11, is_gemm=True)
        ).time
        plain = simulate_launch(
            A100, _cfg(blocks=864, flops=1e11, is_gemm=False)
        ).time
        assert plain == pytest.approx(
            gemm * A100.tensor_core_gemm_speedup
            + A100.kernel_launch_overhead
            * (1 - A100.tensor_core_gemm_speedup),
            rel=1e-6,
        )

    def test_intra_efficiency_scales_compute(self):
        fast = simulate_launch(V100, _cfg(blocks=640, flops=1e10)).time
        slow = simulate_launch(
            V100, _cfg(blocks=640, flops=1e10, intra_efficiency=0.5)
        ).time
        overhead = V100.kernel_launch_overhead
        assert (slow - overhead) == pytest.approx(
            2 * (fast - overhead), rel=1e-9
        )

    def test_transactions_counted(self):
        stats = simulate_launch(V100, _cfg(gm_bytes=3200.0))
        assert stats.gm_transactions == 100

    def test_profiler_records(self):
        from repro.gpusim import Profiler

        profiler = Profiler()
        simulate_launch(V100, _cfg(), profiler)
        simulate_launch(V100, _cfg(), profiler)
        assert profiler.report.launch_count == 2
