"""From-scratch CART and the learned α selector (paper §IV-B1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim import V100
from repro.tuning.alpha import ALPHA_CHOICES
from repro.tuning.decision_tree import (
    AlphaSelector,
    DecisionTree,
    train_alpha_tree,
)


class TestDecisionTree:
    def test_separable_data(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [10.0], [11.0], [12.0], [13.0]])
        y = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        tree = DecisionTree(min_samples_leaf=2).fit(X, y)
        np.testing.assert_array_equal(tree.predict(X), y)

    def test_two_feature_split(self, rng):
        # Quadrant labels: needs two levels of splits.
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] > 0) & (X[:, 1] > 0)).astype(int)
        tree = DecisionTree(max_depth=4, min_samples_leaf=4).fit(X, y)
        accuracy = (tree.predict(X) == y).mean()
        assert accuracy > 0.95

    def test_probabilities_sum_to_one(self, rng):
        X = rng.uniform(0, 1, size=(60, 2))
        y = rng.integers(0, 3, size=60)
        tree = DecisionTree(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (60, 3)

    def test_pure_node_is_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.zeros(10, dtype=int)
        tree = DecisionTree().fit(X, y)
        assert tree.depth == 0

    def test_max_depth_respected(self, rng):
        X = rng.uniform(0, 1, size=(200, 2))
        y = (X.sum(axis=1) * 4).astype(int)
        tree = DecisionTree(max_depth=2, min_samples_leaf=2).fit(X, y)
        assert tree.depth <= 2

    def test_predict_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_fit_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            DecisionTree().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_constant_features_fall_back_to_leaf(self):
        X = np.ones((20, 2))
        y = np.array([0, 1] * 10)
        tree = DecisionTree().fit(X, y)
        # Cannot split; majority leaf with 50/50 probabilities.
        proba = tree.predict_proba(np.ones((1, 2)))[0]
        np.testing.assert_allclose(proba, [0.5, 0.5])


class TestAlphaTree:
    @pytest.fixture(scope="class")
    def selector(self):
        return train_alpha_tree(V100, n_samples=150, rng=0)

    def test_returns_valid_alpha(self, selector):
        for m_star, batch in [(8, 10), (32, 100), (48, 500), (24, 50)]:
            assert selector(m_star, batch) in ALPHA_CHOICES

    def test_agrees_with_oracle_mostly(self, selector):
        """The tree should match the simulated-argmin labels it was trained
        toward on a held-out grid most of the time."""
        from repro.tuning.decision_tree import _best_alpha_label

        hits = 0
        cases = [(m, b) for m in (8, 16, 24, 32, 40, 48) for b in (10, 100, 400)]
        for m_star, batch in cases:
            oracle = ALPHA_CHOICES[_best_alpha_label(V100, m_star, m_star, batch)]
            if selector(m_star, batch) == oracle:
                hits += 1
        assert hits >= len(cases) // 2

    def test_selector_wraps_fitted_tree(self, selector):
        assert isinstance(selector, AlphaSelector)
        # Label space covers at most the four alpha candidates (fewer when
        # the oracle never picks the smallest fractions on this device).
        assert 1 <= selector.tree.n_classes <= len(ALPHA_CHOICES)
