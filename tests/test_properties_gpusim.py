"""Property-based invariants of the simulated-GPU layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import V100, P100, VEGA20
from repro.gpusim.gemm import plan_segments
from repro.gpusim.launch import LaunchConfig, achieved_occupancy, simulate_launch
from repro.gpusim.memory import evd_shared_bytes, svd_shared_bytes

DEVICES = [V100, P100, VEGA20]

heights = st.lists(st.integers(1, 2048), min_size=1, max_size=20)


@settings(max_examples=60, deadline=None)
@given(heights=heights, delta=st.integers(1, 512))
def test_plan_segments_conserves_rows(heights, delta):
    """No rows are lost or invented by the tailoring segmentation."""
    blocks, rows = plan_segments(heights, delta)
    assert blocks == len(rows)
    assert sum(rows) == sum(heights)
    assert all(r > 0 for r in rows)


@settings(max_examples=60, deadline=None)
@given(heights=heights, delta=st.integers(1, 512))
def test_plan_segments_block_bound(heights, delta):
    """Full plates are exactly delta rows; residual blocks stay bounded by
    the 1.2-packing rule plus one final sliver."""
    _, rows = plan_segments(heights, delta)
    for r in rows:
        assert r <= max(1.2 * delta + delta, delta)


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.integers(1, 100_000),
    threads=st.integers(1, 1024),
    shared=st.integers(0, 48 * 1024),
)
def test_occupancy_bounded(blocks, threads, shared):
    """Occupancy is a fraction in (0, 1] whenever the launch is legal."""
    cfg = LaunchConfig(
        kernel="prop",
        blocks=blocks,
        threads_per_block=threads,
        shared_bytes_per_block=shared,
    )
    for device in DEVICES:
        occ = achieved_occupancy(device, cfg)
        assert 0.0 < occ <= 1.0


@settings(max_examples=60, deadline=None)
@given(
    blocks=st.integers(1, 10_000),
    flops=st.floats(0.0, 1e13, allow_nan=False),
    gm=st.floats(0.0, 1e12, allow_nan=False),
)
def test_time_positive_and_monotone_in_work(blocks, flops, gm):
    """Simulated time is positive and never decreases when work grows."""
    base = simulate_launch(
        V100,
        LaunchConfig(
            kernel="prop", blocks=blocks, threads_per_block=256,
            flops=flops, gm_bytes=gm,
        ),
    )
    more = simulate_launch(
        V100,
        LaunchConfig(
            kernel="prop", blocks=blocks, threads_per_block=256,
            flops=flops * 2 + 1, gm_bytes=gm,
        ),
    )
    assert base.time > 0
    assert more.time >= base.time


@settings(max_examples=60, deadline=None)
@given(blocks=st.integers(1, 512), flops=st.floats(1e6, 1e12))
def test_more_blocks_never_slower_same_total_work(blocks, flops):
    """Splitting fixed work across more blocks cannot slow the launch
    (the critical-path bound only ever relaxes)."""
    t1 = simulate_launch(
        V100,
        LaunchConfig(
            kernel="prop", blocks=blocks, threads_per_block=256, flops=flops
        ),
    ).time
    t2 = simulate_launch(
        V100,
        LaunchConfig(
            kernel="prop", blocks=blocks * 2, threads_per_block=256, flops=flops
        ),
    ).time
    assert t2 <= t1 + 1e-12


@settings(max_examples=40, deadline=None)
@given(m=st.integers(1, 256), n=st.integers(1, 256))
def test_shared_bytes_symmetric_and_monotone(m, n):
    """SVD footprint is orientation-invariant and monotone in size."""
    assert svd_shared_bytes(m, n) == svd_shared_bytes(n, m)
    assert svd_shared_bytes(m + 1, n) >= svd_shared_bytes(m, n)


@settings(max_examples=40, deadline=None)
@given(k=st.integers(1, 128), eb=st.sampled_from([2, 4, 8]))
def test_evd_bytes_scale_linearly_with_element_size(k, eb):
    assert evd_shared_bytes(k, element_bytes=eb) == eb * (
        evd_shared_bytes(k) // 8
    )
