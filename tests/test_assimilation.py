"""Data-assimilation application (paper §V-F)."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.apps.assimilation import (
    AssimilationExperiment,
    Ensemble,
    EnsembleSmoother,
    OceanGrid,
    SmootherConfig,
    smooth_random_field,
)
from repro.baselines import MagmaModel
from repro.errors import ConfigurationError


@pytest.fixture
def grid():
    return OceanGrid(
        nlat=8, nlon=8, n_observations=40, localization_radius=3.0, seed=7
    )


class TestOceanGrid:
    def test_point_count(self, grid):
        assert grid.n_points == 64

    def test_point_coords_roundtrip(self, grid):
        lat, lon = grid.point_coords(19)
        assert (lat, lon) == (2, 3)

    def test_point_coords_out_of_range(self, grid):
        with pytest.raises(ConfigurationError):
            grid.point_coords(64)

    def test_local_observations_within_radius(self, grid):
        for p in (0, 27, 63):
            lat, lon = grid.point_coords(p)
            for idx in grid.local_observations(p):
                d2 = (grid.obs_lat[idx] - lat) ** 2 + (
                    grid.obs_lon[idx] - lon
                ) ** 2
                assert d2 <= grid.localization_radius**2

    def test_observation_grid_indices_valid(self, grid):
        idx = grid.observation_grid_indices()
        assert idx.shape == (40,)
        assert ((idx >= 0) & (idx < 64)).all()

    def test_local_sizes_vary(self, grid):
        sizes = grid.local_sizes()
        assert sizes.shape == (64,)
        assert sizes.max() > sizes.min()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OceanGrid(nlat=1, nlon=8, n_observations=4, localization_radius=1)
        with pytest.raises(ConfigurationError):
            OceanGrid(nlat=4, nlon=4, n_observations=0, localization_radius=1)
        with pytest.raises(ConfigurationError):
            OceanGrid(nlat=4, nlon=4, n_observations=4, localization_radius=0)


class TestSmoothField:
    def test_standardized(self):
        field = smooth_random_field(16, 16, rng=0)
        assert field.shape == (256,)
        assert abs(field.mean()) < 1e-10
        assert field.std() == pytest.approx(1.0)

    def test_spatially_correlated(self):
        """Neighbouring points correlate strongly; distant ones do not."""
        field = smooth_random_field(32, 32, length_scale=5.0, rng=1).reshape(
            32, 32
        )
        neighbor = np.corrcoef(field[:-1, :].ravel(), field[1:, :].ravel())[0, 1]
        assert neighbor > 0.8

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            smooth_random_field(8, 8, length_scale=0.0)


class TestEnsemble:
    def test_from_truth_shape(self, grid):
        truth = smooth_random_field(8, 8, rng=0)
        ens = Ensemble.from_truth(truth, grid, 12, rng=0)
        assert ens.states.shape == (64, 12)
        assert ens.n_members == 12

    def test_anomalies_zero_mean(self, grid):
        truth = smooth_random_field(8, 8, rng=0)
        ens = Ensemble.from_truth(truth, grid, 10, rng=0)
        np.testing.assert_allclose(
            ens.anomalies.mean(axis=1), np.zeros(64), atol=1e-12
        )

    def test_spread_positive(self, grid):
        truth = smooth_random_field(8, 8, rng=0)
        ens = Ensemble.from_truth(truth, grid, 10, spread=0.5, rng=0)
        assert ens.spread() > 0.1

    def test_needs_two_members(self):
        with pytest.raises(ConfigurationError):
            Ensemble(states=np.zeros((10, 1)))


class TestSmoother:
    def test_assimilation_reduces_rmse(self):
        exp = AssimilationExperiment(
            nlat=8,
            nlon=8,
            n_observations=48,
            localization_radius=3.0,
            n_members=16,
            seed=3,
        )
        result = exp.run(WCycleSVD(device="V100"))
        assert result.improved
        assert result.rmse_after < 0.9 * result.rmse_before

    def test_assimilation_tightens_spread(self):
        exp = AssimilationExperiment(
            nlat=8,
            nlon=8,
            n_observations=48,
            localization_radius=3.0,
            n_members=16,
            seed=4,
        )
        result = exp.run(WCycleSVD(device="V100"))
        assert result.spread_after < result.spread_before

    def test_solver_agnostic(self):
        """Any decompose_batch-shaped solver plugs in: results with the
        exact MAGMA/LAPACK factorization match W-cycle's closely."""
        kwargs = dict(
            nlat=6,
            nlon=6,
            n_observations=30,
            localization_radius=2.5,
            n_members=12,
            seed=5,
        )
        r_w = AssimilationExperiment(**kwargs).run(WCycleSVD(device="V100"))
        r_m = AssimilationExperiment(**kwargs).run(MagmaModel("V100"))
        assert r_w.rmse_after == pytest.approx(r_m.rmse_after, rel=1e-6)

    def test_multiple_cycles_converge_further(self):
        exp = AssimilationExperiment(
            nlat=6,
            nlon=6,
            n_observations=30,
            localization_radius=2.5,
            n_members=16,
            seed=6,
        )
        one = exp.run(WCycleSVD(device="V100"), cycles=1)
        three = exp.run(WCycleSVD(device="V100"), cycles=3)
        assert three.rmse_after <= one.rmse_after * 1.1

    def test_observation_shape_checked(self, grid):
        smoother = EnsembleSmoother(grid, WCycleSVD(device="V100"))
        truth = smooth_random_field(8, 8, rng=0)
        ens = Ensemble.from_truth(truth, grid, 8, rng=0)
        with pytest.raises(ConfigurationError):
            smoother.assimilate(ens, np.zeros(3))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SmootherConfig(obs_error_std=0.0)
        with pytest.raises(ConfigurationError):
            SmootherConfig(mda_inflation=0.5)
        with pytest.raises(ConfigurationError):
            SmootherConfig(rcond=2.0)

    def test_svd_sizes_reported(self):
        exp = AssimilationExperiment(
            nlat=6, nlon=6, n_observations=30, localization_radius=2.5, seed=0
        )
        sizes = exp.svd_sizes()
        assert len(sizes) > 0
        assert all(s >= 2 for s in sizes)
