"""SARIF emission, baseline subtraction, and the incremental cache.

The analyzer's CI-facing surfaces: ``--format sarif`` for PR
annotations, ``--baseline`` for adopting the linter over existing debt,
``--cache-dir`` for cheap warm runs. Tested through both the library
API and the CLI.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis import Finding, all_rules, lint_file, lint_source
from repro.analysis.baseline import (
    apply_baseline,
    compute_fingerprints,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import LintCache, lint_paths_cached
from repro.analysis.cli import main
from repro.analysis.framework import ANALYZER_VERSION, ruleset_signature
from repro.analysis.sarif import render_sarif, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

#: A minimal SHM03 leak whose message embeds no line numbers — the
#: baseline drift test shifts it down the file and expects the
#: fingerprint to survive.
_LEAK_SOURCE = (
    "def leaks(arena, stack):\n"
    "    ref = arena.place(stack)\n"
    "    arena.view(ref)\n"
)


def _corpus_files() -> list[str]:
    return sorted(str(p) for p in FIXTURES.rglob("*.py"))


class TestSarif:
    def test_log_shape(self):
        findings = lint_file(str(FIXTURES / "runtime" / "det01_violations.py"))
        log = to_sarif(findings)
        assert log["version"] == "2.1.0"
        assert "SARIF-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == ANALYZER_VERSION
        ids = [d["id"] for d in driver["rules"]]
        assert ids == [r.id for r in all_rules()]
        assert len(run["results"]) == len(findings)

    def test_result_location_and_rule_index(self):
        findings = lint_file(str(FIXTURES / "lock01_violations.py"))
        log = to_sarif(findings)
        run = log["runs"][0]
        rule_ids = [d["id"] for d in run["tool"]["driver"]["rules"]]
        for f, result in zip(findings, run["results"]):
            assert result["ruleId"] == f.rule
            assert rule_ids[result["ruleIndex"]] == f.rule
            assert result["level"] == "warning"
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == f.line
            # SARIF columns are 1-based; Finding.col is the AST offset.
            assert region["startColumn"] == f.col + 1

    def test_parse_failure_is_error_level(self):
        findings = lint_source("def broken(:\n", filename="x.py")
        (result,) = to_sarif(findings)["runs"][0]["results"]
        assert result["ruleId"] == "PARSE"
        assert result["level"] == "error"
        assert "ruleIndex" not in result

    def test_render_is_valid_json(self):
        assert json.loads(render_sarif([]))["runs"][0]["results"] == []

    def test_cli_emits_sarif(self, capsys):
        code = main(
            ["--format", "sarif", str(FIXTURES / "lock01_violations.py")]
        )
        log = json.loads(capsys.readouterr().out)
        assert code == 1
        assert log["version"] == "2.1.0"
        assert {r["ruleId"] for r in log["runs"][0]["results"]} == {"LOCK01"}


class TestBaseline:
    def test_roundtrip_suppresses_every_finding(self, tmp_path):
        findings = lint_file(str(FIXTURES / "lock01_violations.py"))
        assert findings
        bl = tmp_path / "baseline.json"
        write_baseline(str(bl), findings)
        fresh, suppressed = apply_baseline(findings, load_baseline(str(bl)))
        assert fresh == []
        assert suppressed == len(findings)

    def test_new_findings_pass_through(self, tmp_path):
        findings = lint_file(str(FIXTURES / "lock01_violations.py"))
        bl = tmp_path / "baseline.json"
        write_baseline(str(bl), findings[:1])
        fresh, suppressed = apply_baseline(findings, load_baseline(str(bl)))
        assert fresh == findings[1:]
        assert suppressed == 1

    def test_fingerprints_survive_line_drift(self, tmp_path):
        target = tmp_path / "leaky.py"
        target.write_text(_LEAK_SOURCE)
        before = lint_file(str(target))
        assert [f.rule for f in before] == ["SHM03"]
        bl = tmp_path / "baseline.json"
        write_baseline(str(bl), before)

        # Insert lines above the finding: its line number moves, its
        # content fingerprint must not.
        target.write_text("# padding\n# more padding\n" + _LEAK_SOURCE)
        after = lint_file(str(target))
        assert after[0].line == before[0].line + 2
        fresh, suppressed = apply_baseline(after, load_baseline(str(bl)))
        assert fresh == []
        assert suppressed == 1

    def test_changed_line_resurrects_the_finding(self, tmp_path):
        target = tmp_path / "leaky.py"
        target.write_text(_LEAK_SOURCE)
        bl = tmp_path / "baseline.json"
        write_baseline(str(bl), lint_file(str(target)))

        # Renaming the variable rewrites the flagged line (and the
        # message), so the old fingerprint no longer covers it.
        target.write_text(_LEAK_SOURCE.replace("ref", "lease_ref"))
        after = lint_file(str(target))
        fresh, suppressed = apply_baseline(after, load_baseline(str(bl)))
        assert len(fresh) == 1
        assert suppressed == 0

    def test_duplicate_findings_get_occurrence_suffix(self):
        twin = Finding(
            rule="X01", path="missing.py", line=1, col=0, message="m"
        )
        first, second = compute_fingerprints([twin, twin])
        assert second == f"{first}#1"

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_wrong_version_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="not a repro-lint baseline"):
            load_baseline(str(bad))

    def test_file_records_ruleset_signature(self, tmp_path):
        bl = tmp_path / "baseline.json"
        write_baseline(str(bl), [])
        data = json.loads(bl.read_text())
        assert data["version"] == 1
        assert data["ruleset"] == ruleset_signature()

    def test_cli_update_then_subtract(self, tmp_path, capsys):
        fixture = str(FIXTURES / "lock01_violations.py")
        bl = str(tmp_path / "baseline.json")

        assert main(["--baseline", bl, "--update-baseline", fixture]) == 0
        capsys.readouterr()

        # Baselined run is clean; the suppression is reported on stderr.
        code = main(["--baseline", bl, fixture])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert "2 finding(s) suppressed" in captured.err

        # Without the baseline the findings are back.
        assert main([fixture]) == 1

    def test_cli_update_requires_baseline_path(self, capsys):
        assert main(["--update-baseline", "src"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_cli_rejects_corrupt_baseline(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"version\": 99}")
        assert main(["--baseline", str(bad), "src"]) == 2
        assert "baseline" in capsys.readouterr().err


class TestCache:
    def test_warm_run_replays_identical_findings(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        files = _corpus_files()
        cold, c1 = lint_paths_cached(files, cache_dir)
        warm, c2 = lint_paths_cached(files, cache_dir)
        assert warm == cold
        assert c1.hits == 0 and c1.misses == len(files)
        assert c2.hits == len(files) and c2.misses == 0

    def test_warm_run_is_at_least_5x_faster(self, tmp_path):
        """The cache's reason to exist: warm CI runs skip the CFG and
        fixpoint work entirely. Cold-lints the whole ``src`` tree, then
        replays it. The 5x bar is conservative — observed ratios are
        two orders of magnitude higher."""
        cache_dir = str(tmp_path / "cache")
        paths = [str(REPO_ROOT / "src")]
        t0 = time.perf_counter()
        cold_findings, _ = lint_paths_cached(paths, cache_dir)
        cold = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm_findings, cache = lint_paths_cached(paths, cache_dir)
        warm = time.perf_counter() - t0
        assert warm_findings == cold_findings
        assert cache.misses == 0 and cache.hits > 0
        assert warm * 5 <= cold, f"warm {warm:.4f}s vs cold {cold:.4f}s"

    def test_edited_file_misses_alone(self, tmp_path):
        a = tmp_path / "a.py"
        b = tmp_path / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        cache_dir = str(tmp_path / "cache")
        lint_paths_cached([str(a), str(b)], cache_dir)
        a.write_text("x = 3\n")
        _, cache = lint_paths_cached([str(a), str(b)], cache_dir)
        assert cache.hits == 1 and cache.misses == 1

    def test_select_reads_a_different_namespace(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("x = 1\n")
        cache_dir = str(tmp_path / "cache")
        lint_paths_cached([str(f)], cache_dir)
        # A different ruleset must never serve the full-run entry.
        _, cache = lint_paths_cached([str(f)], cache_dir, select=["DET01"])
        assert cache.hits == 0 and cache.misses == 1

    def test_corrupt_entries_degrade_to_misses(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text(_LEAK_SOURCE)
        cache_dir = str(tmp_path / "cache")
        cold, _ = lint_paths_cached([str(f)], cache_dir)
        for entry in Path(cache_dir).rglob("*.json"):
            entry.write_text("not json")
        again, cache = lint_paths_cached([str(f)], cache_dir)
        assert cache.hits == 0 and cache.misses == 1
        assert again == cold

    def test_key_includes_path(self, tmp_path):
        # A renamed but byte-identical file must miss: the stored
        # findings carry the old path.
        assert LintCache.key_for("a.py\0x = 1\n") != LintCache.key_for(
            "b.py\0x = 1\n"
        )

    def test_cli_reports_hit_counts(self, tmp_path, capsys):
        fixture = str(FIXTURES / "lock01_violations.py")
        cache_dir = str(tmp_path / "cache")
        main(["--cache-dir", cache_dir, fixture])
        assert "0 hit(s), 1 miss(es)" in capsys.readouterr().err
        main(["--cache-dir", cache_dir, fixture])
        assert "1 hit(s), 0 miss(es)" in capsys.readouterr().err
