"""Analytic W-cycle estimator: structure and cross-validation vs execute."""

import pytest

from repro import Profiler, WCycleConfig, WCycleEstimator, WCycleSVD
from repro.errors import ConfigurationError


class TestBasics:
    def test_positive_time(self):
        report = WCycleEstimator(device="V100").estimate_batch([(64, 64)] * 10)
        assert report.total_time > 0
        assert report.total_flops > 0

    def test_estimate_time_shortcut(self):
        est = WCycleEstimator(device="V100")
        assert est.estimate_time([(64, 64)] * 10) == pytest.approx(
            est.estimate_batch([(64, 64)] * 10).total_time
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            WCycleEstimator(device="V100").estimate_batch([])

    def test_rejects_condition_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            WCycleEstimator(device="V100").estimate_batch(
                [(64, 64)], conditions=[1.0, 2.0]
            )

    def test_profiler_receives_launches(self):
        profiler = Profiler()
        WCycleEstimator(device="V100").estimate_batch(
            [(256, 256)] * 10, profiler=profiler
        )
        assert profiler.report.launch_count > 0


class TestStructure:
    def test_small_matrices_single_kernel(self):
        """Whole-SVD-in-SM group: one batched launch, no GEMMs."""
        report = WCycleEstimator(device="V100").estimate_batch([(16, 16)] * 50)
        assert set(report.by_kernel()) == {"batched_svd_sm"}

    def test_large_matrices_use_evd_path(self):
        report = WCycleEstimator(device="V100").estimate_batch([(512, 512)] * 50)
        kernels = set(report.by_kernel())
        assert "batched_evd_sm_parallel" in kernels
        assert "batched_gemm_gram" in kernels
        assert "batched_gemm_update" in kernels

    def test_transposes_wide_shapes(self):
        """A wide 32 x 1024 matrix is planned as its 1024 x 32 transpose:
        identical kernel structure and near-identical cost."""
        est = WCycleEstimator(device="V100")
        wide = est.estimate_batch([(32, 1024)] * 10)
        tall = est.estimate_batch([(1024, 32)] * 10)
        assert set(wide.by_kernel()) == set(tall.by_kernel())
        assert wide.total_time == pytest.approx(tall.total_time)

    def test_forced_recursion_goes_deeper(self):
        cfg = WCycleConfig(w1=48)
        shallow = WCycleEstimator(device="V100").estimate_batch([(512, 512)] * 10)
        deep = WCycleEstimator(cfg, device="V100").estimate_batch([(512, 512)] * 10)
        # Recursion at w=48 -> the EVD happens at level 2 with extra GEMMs.
        assert deep.launch_count >= shallow.launch_count

    def test_identical_shapes_grouped(self):
        """Identical matrices share launches: 100 copies produce the same
        launch structure as 10 copies, just bigger. (512-tall pairs stay in
        the EVD group at every width the tuner can pick, so the structure
        is batch-invariant for this shape.)"""
        est = WCycleEstimator(device="V100")
        r10 = est.estimate_batch([(512, 512)] * 10)
        r100 = est.estimate_batch([(512, 512)] * 100)
        assert set(r10.by_kernel()) == set(r100.by_kernel())


class TestTrends:
    def test_throughput_improves_with_batch(self):
        """Per-matrix cost falls (or at worst stays flat) with batch size."""
        est = WCycleEstimator(device="V100")
        per_matrix = [
            est.estimate_batch([(256, 256)] * bs).total_time / bs
            for bs in (1, 10, 100)
        ]
        assert per_matrix[1] <= per_matrix[0] * 1.05
        assert per_matrix[2] <= per_matrix[1] * 1.6

    def test_time_grows_with_size(self):
        est = WCycleEstimator(device="V100")
        times = [
            est.estimate_batch([(n, n)] * 50).total_time
            for n in (64, 256, 1024)
        ]
        assert times[0] < times[1] < times[2]

    def test_conditions_slow_convergence(self):
        est = WCycleEstimator(device="V100")
        easy = est.estimate_batch([(256, 256)] * 10, conditions=[1e1] * 10)
        hard = est.estimate_batch([(256, 256)] * 10, conditions=[1e15] * 10)
        assert hard.total_time > easy.total_time

    def test_faster_device_is_faster(self):
        shapes = [(512, 512)] * 100
        t_v100 = WCycleEstimator(device="V100").estimate_time(shapes)
        t_titan = WCycleEstimator(device="GTX-Titan-X").estimate_time(shapes)
        assert t_v100 < t_titan


class TestCrossValidation:
    """The estimator must mirror the executing driver's decisions."""

    def test_kernel_sets_match_execute(self, rng):
        # 96 divides evenly into 16-wide blocks, so no ragged final pair
        # perturbs the estimator's uniform-width approximation.
        shapes = [(224, 96)] * 3
        cfg = WCycleConfig(w1=16)
        est_report = WCycleEstimator(cfg, device="V100").estimate_batch(shapes)
        profiler = Profiler()
        WCycleSVD(cfg, device="V100").decompose_batch(
            [rng.standard_normal(s) for s in shapes], profiler=profiler
        )
        assert set(est_report.by_kernel()) == set(profiler.report.by_kernel())

    def test_ragged_blocks_add_svd_group_in_execute(self, rng):
        """With a ragged final block the executing driver may serve the
        narrow pair via the in-SM SVD kernel; the estimator's kernels are
        then a subset of the executed ones."""
        shapes = [(220, 90)]
        cfg = WCycleConfig(w1=16)
        est_report = WCycleEstimator(cfg, device="V100").estimate_batch(shapes)
        profiler = Profiler()
        WCycleSVD(cfg, device="V100").decompose_batch(
            [rng.standard_normal(s) for s in shapes], profiler=profiler
        )
        assert set(est_report.by_kernel()) <= set(profiler.report.by_kernel())

    def test_estimated_time_within_factor_of_execute(self, rng):
        """On sizes where both run, simulated totals agree within ~3x
        (sweep-count prediction is the only fuzzy input)."""
        shapes = [(96, 96)] * 5
        cfg = WCycleConfig(w1=16)
        est = WCycleEstimator(cfg, device="V100").estimate_time(shapes)
        profiler = Profiler()
        WCycleSVD(cfg, device="V100").decompose_batch(
            [rng.standard_normal(s) for s in shapes], profiler=profiler
        )
        executed = profiler.report.total_time
        assert est / executed < 3.5
        assert executed / est < 3.5
