"""Random matrix generators: exact spectra and conditions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.matrices import (
    default_rng,
    random_matrix,
    random_orthogonal,
    random_spd,
    random_with_condition,
    random_with_spectrum,
)


class TestDefaultRng:
    def test_passes_generator_through(self):
        gen = np.random.default_rng(3)
        assert default_rng(gen) is gen

    def test_seed_reproducible(self):
        a = default_rng(42).standard_normal(4)
        b = default_rng(42).standard_normal(4)
        np.testing.assert_array_equal(a, b)


class TestRandomMatrix:
    def test_shape(self):
        assert random_matrix(3, 5, rng=0).shape == (3, 5)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            random_matrix(0, 5)


class TestRandomOrthogonal:
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    def test_orthogonality(self, n):
        Q = random_orthogonal(n, rng=1)
        np.testing.assert_allclose(Q.T @ Q, np.eye(n), atol=1e-12)

    def test_determinant_signs_vary(self):
        # Haar sampling produces both orientation classes.
        dets = {
            round(np.linalg.det(random_orthogonal(4, rng=seed)))
            for seed in range(20)
        }
        assert dets == {-1, 1}


class TestRandomWithSpectrum:
    def test_exact_singular_values(self):
        spec = np.array([5.0, 2.0, 0.5])
        A = random_with_spectrum(6, 3, spec, rng=0)
        np.testing.assert_allclose(
            np.linalg.svd(A, compute_uv=False), spec, rtol=1e-12
        )

    def test_wide_matrix(self):
        spec = np.array([3.0, 1.0])
        A = random_with_spectrum(2, 7, spec, rng=0)
        assert A.shape == (2, 7)
        np.testing.assert_allclose(
            np.linalg.svd(A, compute_uv=False), spec, rtol=1e-12
        )

    def test_rejects_wrong_length(self):
        with pytest.raises(ConfigurationError, match="shape"):
            random_with_spectrum(4, 4, np.ones(3))

    def test_rejects_negative_values(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            random_with_spectrum(2, 2, np.array([1.0, -1.0]))

    def test_allows_zero_singular_values(self):
        A = random_with_spectrum(5, 3, np.array([2.0, 1.0, 0.0]), rng=0)
        assert np.linalg.matrix_rank(A) == 2


class TestRandomWithCondition:
    @pytest.mark.parametrize("mode", ["geometric", "linear", "cluster"])
    def test_condition_number(self, mode):
        A = random_with_condition(8, 8, 1e4, rng=0, mode=mode)
        s = np.linalg.svd(A, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(1e4, rel=1e-8)

    def test_rectangular(self):
        A = random_with_condition(10, 4, 100.0, rng=0)
        s = np.linalg.svd(A, compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(100.0, rel=1e-8)

    def test_rejects_condition_below_one(self):
        with pytest.raises(ConfigurationError):
            random_with_condition(3, 3, 0.5)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            random_with_condition(3, 3, 10.0, mode="exotic")

    def test_single_column(self):
        A = random_with_condition(5, 1, 100.0, rng=0)
        assert A.shape == (5, 1)


class TestRandomSpd:
    def test_symmetric_positive_definite(self):
        B = random_spd(6, condition=50.0, rng=0)
        np.testing.assert_allclose(B, B.T)
        assert np.linalg.eigvalsh(B).min() > 0

    def test_condition(self):
        B = random_spd(6, condition=50.0, rng=0)
        vals = np.linalg.eigvalsh(B)
        assert vals.max() / vals.min() == pytest.approx(50.0, rel=1e-8)

    def test_n_equal_one(self):
        assert random_spd(1).shape == (1, 1)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(2, 12),
    n=st.integers(2, 12),
    cond=st.floats(1.0, 1e8),
    seed=st.integers(0, 1000),
)
def test_condition_property(m, n, cond, seed):
    """Generated matrices hit the requested condition number exactly."""
    A = random_with_condition(m, n, cond, rng=seed)
    s = np.linalg.svd(A, compute_uv=False)
    assert s[0] / s[-1] == pytest.approx(cond, rel=1e-6)
