"""Profile export: Chrome trace and roofline classification."""

import json

import pytest

from repro import Profiler, WCycleSVD
from repro.errors import ConfigurationError
from repro.gpusim import V100
from repro.gpusim.counters import KernelStats, ProfileReport
from repro.gpusim.trace import (
    chrome_trace,
    ridge_intensity,
    roofline_points,
)


def _stats(kernel="k", flops=1e9, gm=1e6, time=1e-3):
    return KernelStats(
        kernel=kernel,
        blocks=10,
        threads_per_block=256,
        shared_bytes_per_block=0,
        flops=flops,
        gm_bytes=gm,
        gm_transactions=int(gm // 32),
        occupancy=0.5,
        time=time,
    )


class TestChromeTrace:
    def test_valid_json_with_all_launches(self):
        report = ProfileReport()
        report.add(_stats("a"))
        report.add(_stats("b"))
        doc = json.loads(chrome_trace(report))
        assert len(doc["traceEvents"]) == 2
        assert {e["name"] for e in doc["traceEvents"]} == {"a", "b"}

    def test_events_back_to_back(self):
        report = ProfileReport()
        report.add(_stats(time=1e-3))
        report.add(_stats(time=2e-3))
        events = json.loads(chrome_trace(report))["traceEvents"]
        assert events[0]["ts"] == 0
        assert events[1]["ts"] == pytest.approx(1e3)  # microseconds

    def test_rows_per_kernel(self):
        report = ProfileReport()
        report.add(_stats("a"))
        report.add(_stats("b"))
        report.add(_stats("a"))
        events = json.loads(chrome_trace(report))["traceEvents"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["a"] != tids["b"]

    def test_args_carried(self):
        report = ProfileReport()
        report.add(_stats())
        event = json.loads(chrome_trace(report))["traceEvents"][0]
        assert event["args"]["blocks"] == 10
        assert event["args"]["occupancy"] == 0.5

    def test_time_scale_validated(self):
        with pytest.raises(ConfigurationError):
            chrome_trace(ProfileReport(), time_scale=0)

    def test_real_run_traces(self, rng):
        profiler = Profiler()
        WCycleSVD(device="V100").decompose(
            rng.standard_normal((64, 48)), profiler=profiler
        )
        doc = json.loads(chrome_trace(profiler.report))
        assert len(doc["traceEvents"]) == profiler.report.launch_count


class TestRoofline:
    def test_ridge_point(self):
        assert ridge_intensity(V100) == pytest.approx(7.8e12 / 900e9)

    def test_compute_bound_classification(self):
        report = ProfileReport()
        # AI far right of the ridge, achieving ~13% of peak.
        report.add(_stats(flops=1e9, gm=1e3, time=1e-3))
        (point,) = roofline_points(report, V100)
        assert point.bound == "compute"
        assert not point.is_memory_bound

    def test_memory_bound_classification(self):
        # AI = 0.1 flops/byte, achieving near the bandwidth roof.
        report = ProfileReport()
        report.add(_stats(flops=9e7, gm=9e8, time=1.2e-3))
        (point,) = roofline_points(report, V100)
        assert point.bound == "memory"
        assert point.is_memory_bound

    def test_latency_bound_classification(self):
        # Tiny work stretched over a long time: under 1% of any roof.
        report = ProfileReport()
        report.add(_stats(flops=1e3, gm=1e3, time=1.0))
        (point,) = roofline_points(report, V100)
        assert point.bound == "latency"

    def test_zero_time_launches_skipped(self):
        report = ProfileReport()
        report.add(_stats(time=0.0))
        assert roofline_points(report, V100) == []
