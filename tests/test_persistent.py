"""Persistent worker arenas: slot leases, manifest dispatch, warm pools.

Covers the PR 7 tentpole from the bottom up: the :class:`Arena` lease
protocol (grow/lease/return/reclaim, double-release rejection, clean
unlink), the :class:`PersistentExecutor` (LPT manifests, batched IPC,
error semantics, respawn that re-attaches arenas and replays warm
plans), and the serving layer keeping replicas warm *between* fused
batches. The cross-backend bit-identity acceptance lives in
``tests/test_runtime.py`` (``persistent`` is parametrized there); the
fault-injection scenarios live in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.jacobi.batched import BatchedJacobiEngine
from repro.runtime import RuntimeConfig, get_executor
from repro.runtime.arena import (
    Arena,
    SlotRef,
    attach,
    resolve,
    stranded_segments,
)
from repro.runtime.persistent import PersistentExecutor, WorkerPoolBroken
from repro.runtime.resilient import base_executor
from repro.serve import ServeConfig, SVDServer


def _square(x):
    return x * x


def _sleep_in_worker(x):
    """Sleeps only inside a forked worker: the parent's serial retry
    rung returns immediately, so a deadline test converges."""
    if multiprocessing.parent_process() is not None:
        time.sleep(30.0)
    return x * 3


def _unpicklable_result(x):
    if x == 0:
        return lambda: None  # pickle rejects lambdas
    return x * 2


class _UnpicklableError(Exception):
    def __init__(self) -> None:
        super().__init__("boom")
        self.callback = lambda: None  # poisons the exception's __dict__


def _raise_unpicklable(x):
    raise _UnpicklableError()


def _shape_error(x):
    raise ShapeError(f"task {x} is malformed")


def _boom_on_even(x):
    if x % 2 == 0:
        raise ShapeError(f"even task {x}")
    return -x


class TestArenaLeases:
    def test_place_round_trip(self, rng):
        stack = rng.standard_normal((3, 8, 4))
        with Arena() as arena:
            ref = arena.place(stack)
            try:
                assert isinstance(ref, SlotRef)
                assert np.array_equal(arena.view(ref), stack)
                assert np.array_equal(resolve(ref), stack)
            finally:
                arena.release_lease(ref)
            assert arena.outstanding() == 0

    def test_reserve_then_write_then_view(self, rng):
        want = rng.standard_normal((2, 5, 5))
        with Arena() as arena:
            ref = arena.reserve((2, 5, 5), np.float64)
            try:
                resolve(ref)[...] = want
                assert np.array_equal(arena.view(ref), want)
            finally:
                arena.release_lease(ref)

    def test_slot_reuse_is_lifo(self):
        with Arena() as arena:
            a = arena.reserve((4,), np.float64)  # repro: noqa[SHM02]
            # straight-line release by design: reuse after return is the
            # behavior under test, so there is no exception window.
            arena.release_lease(a)
            b = arena.reserve((4,), np.float64)
            try:
                assert (b.segment, b.slot) == (a.segment, a.slot)
            finally:
                arena.release_lease(b)

    def test_double_release_rejected(self):
        with Arena() as arena:
            ref = arena.reserve((2, 2), np.float64)  # repro: noqa[SHM02]
            # the second release below is the behavior under test.
            arena.release_lease(ref)
            with pytest.raises(ConfigurationError, match="double release"):
                arena.release_lease(ref)

    def test_view_requires_outstanding_lease(self):
        with Arena() as arena:
            ref = arena.reserve((2, 2), np.float64)  # repro: noqa[SHM02]
            # released on purpose: view() must reject the stale ref.
            arena.release_lease(ref)
            with pytest.raises(ConfigurationError, match="not leased"):
                arena.view(ref)

    def test_oversized_reservation_grows_a_segment(self, rng):
        with Arena(slot_bytes=1 << 10, slots_per_segment=2) as arena:
            big = rng.standard_normal((64, 64))  # 32 KiB > 1 KiB slots
            ref = arena.place(big)
            try:
                stats = arena.stats()
                assert stats["grown_segments"] == 1
                assert stats["segments"] == 2
                assert np.array_equal(arena.view(ref), big)
            finally:
                arena.release_lease(ref)

    def test_ensure_pregrows_to_fit_count(self):
        with Arena(slot_bytes=1 << 10, slots_per_segment=2) as arena:
            arena.ensure(1 << 10, count=8)
            assert arena.stats()["grown_segments"] == 1
            # Sized ahead of time: leasing 8 slots grows nothing more.
            refs = [arena.reserve((128,), np.float64) for _ in range(8)]
            try:
                assert arena.stats()["grown_segments"] == 1
            finally:
                for ref in refs:
                    arena.release_lease(ref)

    def test_reclaim_returns_every_outstanding_lease(self):
        with Arena() as arena:
            for _ in range(3):
                arena.reserve((2, 2), np.float64)  # repro: noqa[SHM02]
                # deliberately dropped refs: reclaim_leases() is the
                # teardown janitor under test.
            assert arena.outstanding() == 3
            assert arena.reclaim_leases() == 3
            assert arena.outstanding() == 0
            stats = arena.stats()
            assert stats["leases"] == stats["returns"] == 3

    def test_spec_attach_is_idempotent(self):
        with Arena() as arena:
            spec = arena.spec()
            # Same process already has every segment mapped (creation
            # registers them), so attach() maps nothing new.
            assert attach(spec) == 0

    def test_close_unlinks_and_is_idempotent(self):
        arena = Arena()
        prefix = arena._prefix
        assert any(name.startswith(prefix) for name in stranded_segments())
        arena.close()
        arena.close()
        assert not any(name.startswith(prefix) for name in stranded_segments())
        with pytest.raises(ConfigurationError, match="closed"):
            arena.reserve((2, 2), np.float64)


class TestPersistentExecutor:
    def test_map_orders_results_under_costs(self):
        with PersistentExecutor(2) as ex:
            out = ex.map(_square, [1, 2, 3, 4, 5], costs=[5, 1, 4, 2, 3])
        assert out == [1, 4, 9, 16, 25]

    def test_map_single_item_runs_inline(self):
        with PersistentExecutor(2) as ex:
            assert ex.map(_square, [7]) == [49]
            # Inline fast path: no manifest was shipped for it.
            assert ex.dispatch_stats()["ipc_round_trips"] == 0

    def test_map_raises_earliest_task_error(self):
        with PersistentExecutor(2) as ex:
            with pytest.raises(ShapeError, match="even task 2"):
                ex.map(_boom_on_even, [1, 2, 3, 4])

    def test_submit_future_result_and_exception(self):
        with PersistentExecutor(2) as ex:
            assert ex.submit(_square, 9).result(timeout=30) == 81
            exc = ex.submit(_shape_error, 1).exception(timeout=30)
            assert isinstance(exc, ShapeError)

    def test_manifest_batching_one_round_trip_per_worker(self):
        with PersistentExecutor(2) as ex:
            ex.map(_square, list(range(16)))
            stats = ex.dispatch_stats()
            # 16 tasks travelled as 2 manifests (one per worker), not 16
            # pickled submissions — the whole point of the backend.
            assert stats["tasks"] == 16
            assert stats["ipc_round_trips"] == 2
            assert stats["batches"] == 2

    def test_warm_is_idempotent_and_replayed_on_respawn(self):
        from repro.jacobi.onesided_vector import OneSidedConfig

        with PersistentExecutor(2) as ex:
            ex.map(_square, [1, 2, 3, 4])  # spin the pool up
            before = ex.dispatch_stats()["control_msgs"]
            ex.warm("svd", OneSidedConfig(), 8)
            ex.warm("svd", OneSidedConfig(), 8)  # same key: no broadcast
            after = ex.dispatch_stats()["control_msgs"]
            assert after - before == 2  # one message per live worker
            ex.respawn()
            assert ex.map(_square, [5, 6]) == [25, 36]
            assert ex.dispatch_stats()["respawns"] == 1

    def test_respawn_preserves_arena_and_leases(self, rng):
        stack = rng.standard_normal((2, 6, 3))
        with PersistentExecutor(2) as ex:
            arena = ex.arena
            ref = arena.place(stack)
            try:
                ex.respawn()
                assert ex.arena is arena
                assert arena.outstanding() == 1
                # Fresh workers re-attach the same segments by name and
                # read the still-leased slot's bytes unchanged.
                assert np.array_equal(arena.view(ref), stack)
                assert ex.map(_square, [2, 3]) == [4, 9]
            finally:
                arena.release_lease(ref)

    def test_dead_worker_surfaces_as_pool_broken(self):
        with PersistentExecutor(2) as ex:
            ex.map(_square, [1, 2])  # spin up
            for w in ex._workers:
                w.proc.terminate()
                w.proc.join(timeout=5.0)
            with pytest.raises(WorkerPoolBroken):
                fut = ex.submit(_square, 3)
                fut.result(timeout=30)

    def test_deadline_terminates_zombie_workers_before_retry(self):
        """A timed-out manifest may still be *running* in its worker —
        ``fut.cancel()`` cannot stop it. The supervisor must terminate
        the pool before the retry round, or the zombie could read/write
        slots after their leases return to the free list and are
        re-leased to another batch (silent corruption)."""
        from repro.runtime.resilient import ResilientExecutor, RetryPolicy

        inner = PersistentExecutor(2)
        with ResilientExecutor(
            inner,
            RetryPolicy(max_retries=1, task_timeout=0.25, backoff_base=0.0),
        ) as ex:
            inner._ensure_workers()
            doomed = [w.proc for w in inner._workers]
            assert ex.map(_sleep_in_worker, [1, 2]) == [3, 6]
            assert "DeadlineExceeded" in {f.cause for f in ex.last_failures}
            assert inner.dispatch_stats()["respawns"] == 1
            for proc in doomed:
                proc.join(timeout=5.0)
                assert not proc.is_alive()

    def test_unpicklable_payload_costs_only_its_task(self):
        with PersistentExecutor(2) as ex:
            with pytest.raises(RuntimeError, match="unpicklable"):
                ex.map(_unpicklable_result, [0, 1])
            with pytest.raises(RuntimeError, match="unpicklable"):
                ex.map(_raise_unpicklable, [1, 2])
            # Both workers survived the bad payloads: the original pool
            # serves the next map and nothing was respawned.
            assert ex.map(_square, [3, 4]) == [9, 16]
            stats = ex.dispatch_stats()
            assert stats["spawns"] == 1
            assert stats["respawns"] == 0

    def test_unpicklable_result_recovered_on_serial_rung(self):
        """The placeholder error is retryable, and the in-process serial
        rung never pickles — so the ladder recovers the real result."""
        from repro.runtime.resilient import ResilientExecutor, RetryPolicy

        with ResilientExecutor(
            PersistentExecutor(2),
            RetryPolicy(max_retries=1, backoff_base=0.0),
        ) as ex:
            out = ex.map(_unpicklable_result, [0, 1])
            assert callable(out[0])
            assert out[1] == 2

    def test_close_strands_nothing(self):
        ex = PersistentExecutor(2)
        arena = ex.arena
        prefix = arena._prefix
        ex.map(_square, [1, 2, 3, 4])
        assert any(name.startswith(prefix) for name in stranded_segments())
        ex.close()
        assert not any(name.startswith(prefix) for name in stranded_segments())

    def test_engine_releases_output_leases_after_finalize(self, rng):
        matrices = [rng.standard_normal((12, 6)) for _ in range(8)]
        wrapped = get_executor(
            RuntimeConfig(
                backend="persistent", workers=2, min_shard=2,
                allow_oversubscribe=True,
            )
        )
        engine = BatchedJacobiEngine(executor=wrapped)
        try:
            ex = base_executor(wrapped)
            results = engine.svd_batch(matrices)
            assert len(results) == 8
            assert ex.arena.outstanding() == 0
            stats = ex.dispatch_stats()
            assert stats["arena_leases"] == stats["arena_returns"] > 0
        finally:
            wrapped.close()


class TestServeWarmReplicas:
    def test_workers_stay_warm_between_fused_batches(self, rng):
        server = SVDServer(
            ServeConfig(max_batch=4, max_wait_ms=0.0),
            runtime=RuntimeConfig(
                backend="persistent", workers=2, min_shard=1,
                allow_oversubscribe=True,
            ),
            start=False,
        )
        try:
            ex = base_executor(server._executor)
            reference = BatchedJacobiEngine()
            matrices = [rng.standard_normal((10, 5)) for _ in range(4)]
            futures = []
            for round_matrices in (matrices[:2], matrices[2:]):
                for m in round_matrices:
                    futures.append(server.submit(m))
                while server.poll():
                    pass
            served = [f.result(timeout=0) for f in futures]
            want = reference.svd_batch(matrices)
            for got, ref in zip(served, want):
                assert got.S.tobytes() == ref.S.tobytes()
            stats = ex.dispatch_stats()
            # One spawn serves every fused batch: replicas (and their
            # arena attachments + warm plans) persist between rounds.
            assert stats["spawns"] == 1
            assert stats["respawns"] == 0
            assert ex.arena.outstanding() == 0
            prefix = ex.arena._prefix
        finally:
            server.close()
        assert not any(n.startswith(prefix) for n in stranded_segments())
