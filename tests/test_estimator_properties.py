"""Property-based invariants of the analytic estimator and baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import WCycleConfig, WCycleEstimator
from repro.baselines import CuSolverModel, MagmaModel

sizes = st.integers(8, 300)
batches = st.integers(1, 60)


@settings(max_examples=25, deadline=None)
@given(n=sizes, batch=batches)
def test_estimate_positive_and_finite(n, batch):
    time = WCycleEstimator(device="V100").estimate_time([(n, n)] * batch)
    assert 0 < time < 1e4


@settings(max_examples=20, deadline=None)
@given(n=sizes, batch=st.integers(1, 30))
def test_estimate_monotone_in_batch_fixed_width(n, batch):
    """With the level width pinned, more matrices never cost less.

    (Auto mode may legitimately *drop* in total time when a bigger batch
    unlocks a better tailoring plan — that's the tuner working, so the
    strict monotonicity property is stated at fixed width.)
    """
    est = WCycleEstimator(WCycleConfig(w1=16), device="V100")
    t1 = est.estimate_time([(n, n)] * batch)
    t2 = est.estimate_time([(n, n)] * (batch * 2))
    assert t2 >= t1 * 0.999


@settings(max_examples=20, deadline=None)
@given(n=sizes, batch=st.integers(1, 30))
def test_estimate_roughly_monotone_in_batch_auto(n, batch):
    """Auto mode: the tuner's plan flips can swing total time either way
    (a bigger batch may unlock a structurally cheaper plan), but doubling
    the batch stays within a bounded band of the original cost. An
    exhaustive scan of the (n, batch) domain puts the true ratio in
    [0.57, 6.25]; the band leaves margin on both sides."""
    est = WCycleEstimator(device="V100")
    t1 = est.estimate_time([(n, n)] * batch)
    t2 = est.estimate_time([(n, n)] * (batch * 2))
    assert 0.4 * t1 <= t2 <= 8.0 * t1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(8, 150), batch=st.integers(1, 30))
def test_estimate_monotone_in_size(n, batch):
    """Quadrupling the matrix area never makes the batch much cheaper
    (plan flips across the size boundary get the same slack as above)."""
    est = WCycleEstimator(WCycleConfig(w1=16), device="V100")
    t1 = est.estimate_time([(n, n)] * batch)
    t2 = est.estimate_time([(2 * n, 2 * n)] * batch)
    assert t2 >= t1 * 0.999


@settings(max_examples=20, deadline=None)
@given(m=sizes, n=sizes, batch=st.integers(1, 20))
def test_transpose_invariance(m, n, batch):
    """An m x n batch costs the same as its n x m transpose."""
    est = WCycleEstimator(device="V100")
    a = est.estimate_time([(m, n)] * batch)
    b = est.estimate_time([(n, m)] * batch)
    assert a == pytest.approx(b, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(40, 200), batch=st.integers(5, 40))
def test_baselines_never_beat_wcycle_batched(n, batch):
    """The paper's headline, as a property over the model's whole domain:
    on batched workloads above the cuSOLVER API limit, W-cycle wins."""
    shapes = [(n, n)] * batch
    t_w = WCycleEstimator(device="V100").estimate_time(shapes)
    assert CuSolverModel("V100").estimate_time(shapes) > t_w
    assert MagmaModel("V100").estimate_time(shapes) > t_w


@settings(max_examples=15, deadline=None)
@given(n=st.integers(16, 200), batch=st.integers(1, 20), w1=st.integers(2, 24))
def test_forced_width_still_finite(n, batch, w1):
    """Any feasible forced width produces a finite plan."""
    est = WCycleEstimator(WCycleConfig(w1=w1), device="V100")
    assert est.estimate_time([(n, n)] * batch) > 0
