"""Bit-level determinism: repeated calls produce identical results.

The library's contract is that all randomness flows through explicit
seeds; nothing may depend on dict ordering, object identity, or wall
clock.
"""

import numpy as np

from repro import Profiler, WCycleEstimator, WCycleSVD
from repro.apps.assimilation import AssimilationExperiment
from repro.datasets import load_matrix, suitesparse_group_batch, TABLE6_GROUPS
from repro.jacobi import OneSidedConfig, OneSidedJacobiSVD


class TestSolverDeterminism:
    def test_wcycle_bit_identical(self, rng):
        A = rng.standard_normal((96, 80))
        r1 = WCycleSVD(device="V100").decompose(A)
        r2 = WCycleSVD(device="V100").decompose(A)
        np.testing.assert_array_equal(r1.U, r2.U)
        np.testing.assert_array_equal(r1.S, r2.S)
        np.testing.assert_array_equal(r1.V, r2.V)

    def test_same_solver_reused(self, rng):
        A = rng.standard_normal((48, 40))
        solver = WCycleSVD(device="V100")
        np.testing.assert_array_equal(
            solver.decompose(A).S, solver.decompose(A).S
        )

    def test_dynamic_ordering_deterministic(self, rng):
        A = rng.standard_normal((20, 14))
        cfg = OneSidedConfig(ordering="dynamic")
        s1 = OneSidedJacobiSVD(cfg).decompose(A).S
        s2 = OneSidedJacobiSVD(cfg).decompose(A).S
        np.testing.assert_array_equal(s1, s2)

    def test_rank_deficient_completion_deterministic(self, rng):
        A = np.outer(rng.standard_normal(10), rng.standard_normal(6))
        r1 = WCycleSVD(device="V100").decompose(A)
        r2 = WCycleSVD(device="V100").decompose(A)
        np.testing.assert_array_equal(r1.U, r2.U)


class TestCostDeterminism:
    def test_estimates_identical(self):
        shapes = [(256, 256)] * 20 + [(100, 60)] * 5
        t1 = WCycleEstimator(device="V100").estimate_time(shapes)
        t2 = WCycleEstimator(device="V100").estimate_time(shapes)
        assert t1 == t2

    def test_profiles_identical(self, rng):
        A = rng.standard_normal((64, 48))
        times = []
        for _ in range(2):
            profiler = Profiler()
            WCycleSVD(device="V100").decompose(A, profiler=profiler)
            times.append(
                tuple((s.kernel, s.time) for s in profiler.report.launches)
            )
        assert times[0] == times[1]


class TestDataDeterminism:
    def test_suitesparse_standins(self):
        np.testing.assert_array_equal(
            load_matrix("tols340"), load_matrix("tols340")
        )

    def test_workload_shapes(self):
        a = suitesparse_group_batch(TABLE6_GROUPS[2], rng=5)
        b = suitesparse_group_batch(TABLE6_GROUPS[2], rng=5)
        assert a == b

    def test_assimilation_experiment(self):
        kwargs = dict(
            nlat=6, nlon=6, n_observations=24, localization_radius=2.5,
            n_members=10, seed=4,
        )
        r1 = AssimilationExperiment(**kwargs).run(WCycleSVD(device="V100"))
        r2 = AssimilationExperiment(**kwargs).run(WCycleSVD(device="V100"))
        assert r1.rmse_after == r2.rmse_after
