"""Dynamic (greedy weighted) ordering and its solver integration."""

import numpy as np
import pytest

from tests.helpers import assert_valid_svd
from repro.errors import ConfigurationError
from repro.jacobi import OneSidedConfig, OneSidedJacobiSVD
from repro.orderings import DynamicOrdering


class TestStepGeneration:
    def test_pairs_disjoint(self, rng):
        W = rng.standard_normal((12, 8))
        step = DynamicOrdering().step_for(W)
        used = [i for pair in step for i in pair]
        assert len(used) == len(set(used))

    def test_heaviest_pair_first(self, rng):
        # Construct a matrix where columns 0 and 3 are nearly parallel.
        W = rng.standard_normal((16, 6))
        W[:, 3] = W[:, 0] + 1e-3 * rng.standard_normal(16)
        step = DynamicOrdering().step_for(W)
        assert step[0] == (0, 3)

    def test_orthogonal_matrix_empty_step(self, rng):
        Q = np.linalg.qr(rng.standard_normal((10, 6)))[0]
        assert DynamicOrdering().step_for(Q) == []

    def test_zero_columns_skipped(self, rng):
        W = rng.standard_normal((8, 4))
        W[:, 2] = 0.0
        step = DynamicOrdering().step_for(W)
        assert all(2 not in pair for pair in step)

    def test_steps_per_sweep_matches_round_robin(self):
        assert DynamicOrdering.steps_per_sweep(8) == 7
        assert DynamicOrdering.steps_per_sweep(9) == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicOrdering(skip_tol=0.0)
        with pytest.raises(ConfigurationError):
            DynamicOrdering.steps_per_sweep(1)


class TestSolverIntegration:
    def test_correct_factorization(self, rng):
        A = rng.standard_normal((18, 12))
        solver = OneSidedJacobiSVD(OneSidedConfig(ordering="dynamic"))
        assert_valid_svd(A, solver.decompose(A))

    def test_no_more_rotations_than_round_robin(self, rng):
        """The point of dynamic ordering: skip already-orthogonal pairs."""
        A = rng.standard_normal((24, 16))
        dynamic = OneSidedJacobiSVD(OneSidedConfig(ordering="dynamic"))
        static = OneSidedJacobiSVD()
        dynamic.decompose(A)
        static.decompose(A)
        assert dynamic.last_stats.rotations <= static.last_stats.rotations

    def test_structured_matrix_big_win(self, rng):
        """On a matrix that is mostly orthogonal already, dynamic ordering
        rotates only the coupled columns."""
        Q = np.linalg.qr(rng.standard_normal((20, 10)))[0] * np.arange(1.0, 11.0)
        A = Q.copy()
        A[:, 1] += 0.5 * A[:, 0]  # couple one pair
        dynamic = OneSidedJacobiSVD(OneSidedConfig(ordering="dynamic"))
        static = OneSidedJacobiSVD()
        res = dynamic.decompose(A)
        static.decompose(A)
        assert res.reconstruction_error(A) < 1e-10
        # Only the coupled pair (plus at most a couple of clean-up
        # rotations) should ever rotate — both schedules skip orthogonal
        # pairs, and dynamic never does worse.
        assert dynamic.last_stats.rotations <= static.last_stats.rotations
        assert dynamic.last_stats.rotations <= 5

    def test_rank_deficient(self, rng):
        A = np.outer(rng.standard_normal(10), rng.standard_normal(6))
        solver = OneSidedJacobiSVD(OneSidedConfig(ordering="dynamic"))
        res = solver.decompose(A)
        assert res.reconstruction_error(A) < 1e-10
