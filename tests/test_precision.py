"""Precision descriptors and precision-aware memory planning (§V-E)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim import (
    BF16,
    FP32,
    FP64,
    V100,
    Precision,
    get_precision,
    max_width_for_evd,
    max_width_for_svd,
    svd_shared_bytes,
)


class TestRegistry:
    def test_builtins(self):
        assert get_precision("fp64") is FP64
        assert get_precision("FP32") is FP32
        assert get_precision(BF16) is BF16

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown precision"):
            get_precision("fp8")

    def test_element_sizes(self):
        assert (FP64.element_bytes, FP32.element_bytes, BF16.element_bytes) == (
            8,
            4,
            2,
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Precision("bad", 0, 1.0, 1.0, 1e-8)
        with pytest.raises(ConfigurationError):
            Precision("bad", 4, 0.0, 1.0, 1e-8)

    def test_accuracy_floors_ordered(self):
        assert FP64.sqrt_eps < FP32.sqrt_eps < BF16.sqrt_eps


class TestPrecisionAwareResidency:
    def test_shared_bytes_scale_with_element_size(self):
        full = svd_shared_bytes(32, 16)
        half = svd_shared_bytes(32, 16, element_bytes=4)
        assert half == full // 2

    def test_wider_blocks_at_lower_precision(self):
        """§V-E: less memory per element => larger w fits in SM."""
        w64 = max_width_for_evd(V100)
        w32 = max_width_for_evd(V100, element_bytes=4)
        w16 = max_width_for_evd(V100, element_bytes=2)
        assert w64 < w32 < w16

    def test_svd_width_scales_too(self):
        assert max_width_for_svd(64, V100, element_bytes=2) > max_width_for_svd(
            64, V100
        )

    def test_element_bytes_validated(self):
        with pytest.raises(ConfigurationError):
            svd_shared_bytes(4, 4, element_bytes=0)
