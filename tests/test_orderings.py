"""Pivot-ordering schedules: coverage, disjointness, registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.orderings import (
    OddEvenOrdering,
    RingOrdering,
    RoundRobinOrdering,
    available_orderings,
    get_ordering,
    register_ordering,
    validate_sweep,
)

ALL_ORDERINGS = [RoundRobinOrdering, OddEvenOrdering, RingOrdering]


@pytest.mark.parametrize("cls", ALL_ORDERINGS)
class TestSweepValidity:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8, 16, 31])
    def test_valid_schedule(self, cls, n):
        validate_sweep(cls().sweep(n), n)

    def test_pairs_iterator_covers_everything(self, cls):
        pairs = set(cls().pairs(6))
        assert pairs == {(i, j) for i in range(6) for j in range(i + 1, 6)}

    def test_rotations_per_sweep(self, cls):
        assert cls().rotations_per_sweep(10) == 45

    def test_rejects_n_below_two(self, cls):
        with pytest.raises(ConfigurationError):
            cls().sweep(1)


class TestRoundRobin:
    def test_minimum_steps_even(self):
        # n - 1 steps of n/2 pairs is optimal for even n.
        sweep = RoundRobinOrdering().sweep(8)
        assert len(sweep) == 7
        assert all(len(step) == 4 for step in sweep)

    def test_odd_n_has_byes(self):
        sweep = RoundRobinOrdering().sweep(5)
        assert len(sweep) == 5
        assert all(len(step) == 2 for step in sweep)

    def test_n_two(self):
        assert RoundRobinOrdering().sweep(2) == [[(0, 1)]]


class TestOddEven:
    def test_steps_at_most_linear(self):
        for n in (4, 8, 12):
            assert len(OddEvenOrdering().sweep(n)) <= 2 * n


class TestValidateSweep:
    def test_detects_index_reuse_within_step(self):
        with pytest.raises(ConfigurationError, match="reused"):
            validate_sweep([[(0, 1), (1, 2)]], 3)

    def test_detects_duplicate_pair(self):
        with pytest.raises(ConfigurationError, match="twice"):
            validate_sweep([[(0, 1)], [(0, 1)], [(0, 2)], [(1, 2)]], 3)

    def test_detects_missing_pair(self):
        with pytest.raises(ConfigurationError, match="covers"):
            validate_sweep([[(0, 1)]], 3)

    def test_detects_out_of_range(self):
        with pytest.raises(ConfigurationError, match="invalid pair"):
            validate_sweep([[(0, 3)]], 3)

    def test_detects_swapped_order(self):
        with pytest.raises(ConfigurationError, match="invalid pair"):
            validate_sweep([[(1, 0)]], 2)


class TestRegistry:
    def test_available(self):
        names = available_orderings()
        assert {"round-robin", "odd-even", "ring"} <= set(names)

    def test_get_by_name(self):
        assert isinstance(get_ordering("ring"), RingOrdering)

    def test_get_passes_instance_through(self):
        inst = RoundRobinOrdering()
        assert get_ordering(inst) is inst

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown ordering"):
            get_ordering("spiral")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_ordering("round-robin", RoundRobinOrdering)

    def test_register_custom(self):
        class Custom(RoundRobinOrdering):
            name = "custom-test-ordering"

        try:
            register_ordering("custom-test-ordering", Custom)
            assert isinstance(get_ordering("custom-test-ordering"), Custom)
        finally:
            from repro.orderings import registry

            registry._REGISTRY.pop("custom-test-ordering", None)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 40),
    name=st.sampled_from(["round-robin", "odd-even", "ring"]),
)
def test_any_ordering_is_valid_sweep(n, name):
    """Property: every ordering yields a complete disjoint-step sweep."""
    validate_sweep(get_ordering(name).sweep(n), n)
