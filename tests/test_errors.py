"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    PlanError,
    ReproError,
    ResourceError,
    ShapeError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ConvergenceError,
            PlanError,
            ResourceError,
            ShapeError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_convergence_error_is_runtime_error(self):
        assert issubclass(ConvergenceError, RuntimeError)

    def test_resource_error_is_runtime_error(self):
        assert issubclass(ResourceError, RuntimeError)


class TestConvergenceError:
    def test_carries_sweeps_and_residual(self):
        err = ConvergenceError("nope", sweeps=7, residual=1.5e-3)
        assert err.sweeps == 7
        assert err.residual == pytest.approx(1.5e-3)

    def test_coerces_types(self):
        err = ConvergenceError("nope", sweeps=7.0, residual=1)
        assert isinstance(err.sweeps, int)
        assert isinstance(err.residual, float)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise ConvergenceError("x", sweeps=1, residual=0.0)
