"""Exception hierarchy contracts."""

import pickle

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DeadlineExceeded,
    FailureReport,
    NonFiniteError,
    PlanError,
    ReproError,
    ResourceError,
    SegmentLostError,
    ShapeError,
    TaskFailure,
    WorkerCrashError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ConvergenceError,
            DeadlineExceeded,
            NonFiniteError,
            PlanError,
            ResourceError,
            SegmentLostError,
            ShapeError,
            WorkerCrashError,
        ):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_convergence_error_is_runtime_error(self):
        assert issubclass(ConvergenceError, RuntimeError)

    def test_resource_error_is_runtime_error(self):
        assert issubclass(ResourceError, RuntimeError)


class TestConvergenceError:
    def test_carries_sweeps_and_residual(self):
        err = ConvergenceError("nope", sweeps=7, residual=1.5e-3)
        assert err.sweeps == 7
        assert err.residual == pytest.approx(1.5e-3)

    def test_coerces_types(self):
        err = ConvergenceError("nope", sweeps=7.0, residual=1)
        assert isinstance(err.sweeps, int)
        assert isinstance(err.residual, float)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise ConvergenceError("x", sweeps=1, residual=0.0)

    def test_batch_indices_default_none(self):
        assert ConvergenceError("x").batch_indices is None

    def test_batch_indices_coerced_to_int_tuple(self):
        err = ConvergenceError("x", batch_indices=[3.0, 7])
        assert err.batch_indices == (3, 7)
        assert all(isinstance(i, int) for i in err.batch_indices)


class TestInfrastructureFaults:
    def test_deadline_is_timeout_error(self):
        assert issubclass(DeadlineExceeded, TimeoutError)

    def test_nonfinite_is_arithmetic_error(self):
        assert issubclass(NonFiniteError, ArithmeticError)

    def test_nonfinite_carries_batch_indices(self):
        assert NonFiniteError("x", batch_indices=(2,)).batch_indices == (2,)

    @pytest.mark.parametrize(
        "exc",
        [
            ConvergenceError("boom", sweeps=3, residual=0.5, batch_indices=(1, 4)),
            NonFiniteError("nan", batch_indices=(0,)),
            WorkerCrashError("died"),
            DeadlineExceeded("late"),
            SegmentLostError("gone"),
        ],
    )
    def test_pickle_round_trip(self, exc):
        """Workers raise these across the pool boundary."""
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        assert clone.__dict__ == exc.__dict__


class TestFailureReport:
    def _report(self):
        report = FailureReport()
        report.add(index=3, stage="engine", cause="ConvergenceError",
                   message="m1", attempts=2, recovered=True)
        report.add(index=1, stage="engine", cause="ConvergenceError",
                   message="m2", attempts=3, recovered=False)
        report.add(index=-1, stage="executor", cause="WorkerCrashError",
                   message="m3", attempts=1, recovered=True)
        return report

    def test_empty_report_is_falsy(self):
        assert not FailureReport()
        assert len(FailureReport()) == 0

    def test_quarantined_sorted_and_excludes_executor_events(self):
        assert self._report().quarantined == (1, 3)

    def test_unrecovered_only_nan_slots(self):
        assert self._report().unrecovered == (1,)

    def test_for_index(self):
        assert [e.cause for e in self._report().for_index(-1)] == [
            "WorkerCrashError"
        ]

    def test_summary_mentions_every_event(self):
        text = self._report().summary()
        assert "3 failure event(s)" in text
        assert "QUARANTINED" in text
        assert "recovered" in text

    def test_extend_merges_entries(self):
        a, b = self._report(), self._report()
        a.extend(b)
        assert len(a) == 6

    def test_entries_are_frozen(self):
        entry = self._report().entries[0]
        assert isinstance(entry, TaskFailure)
        with pytest.raises(AttributeError):
            entry.index = 9

    def test_report_pickles(self):
        report = self._report()
        clone = pickle.loads(pickle.dumps(report))
        assert clone.entries == report.entries
