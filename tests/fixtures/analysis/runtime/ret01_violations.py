"""Seeded RET01 violations: unbounded retry loops around task dispatch.

Lint corpus only — never imported. The two loops below re-dispatch work
forever with neither an attempt budget nor a backoff; the bounded and
paced variants at the bottom are compliant and must stay finding-free.
"""

import time


def respin(pool, task):
    while True:
        future = pool.submit(task)
        if future.done():
            return future
        continue


def remap(executor, fn, items):
    outs = None
    while True:
        try:
            outs = executor.map(fn, items)
        except OSError:
            continue
        if outs is not None:
            return outs


def bounded(pool, task, max_attempts):
    attempt = 0
    while True:
        attempt += 1
        future = pool.submit(task)
        if future.done() or attempt >= max_attempts:
            return future


def paced(executor, fn, items, delay):
    while True:
        try:
            return executor.map(fn, items)
        except OSError:
            time.sleep(delay)
