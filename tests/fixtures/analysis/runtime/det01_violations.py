"""Seeded DET01 violations: unseeded entropy and wall-clock reads.

Lint corpus only — never imported. The file lives under a ``runtime``
path component on purpose: DET01 audits only hot-path modules.
"""

import random
import time

import numpy as np


def jitter_costs(costs):
    noise = np.random.rand(len(costs))
    return [c + n for c, n in zip(costs, noise)]


def fresh_generator():
    return np.random.default_rng()


def shuffle_shards(shards):
    random.shuffle(shards)
    return shards


def stamp(record):
    record["at"] = time.time()
    return record
