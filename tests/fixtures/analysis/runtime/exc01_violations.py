"""Seeded EXC01 violations: swallowed exceptions in runtime code.

Lint corpus only — never imported.
"""


def drain(queue):
    results = []
    while queue:
        try:
            results.append(queue.pop())
        except:
            break
    return results


def merge(parts):
    merged = {}
    for part in parts:
        try:
            merged.update(part)
        except Exception:
            continue
    return merged
