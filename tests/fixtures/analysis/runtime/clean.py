"""Suppression corpus: every seeded violation carries a ``repro: noqa``.

Lint corpus only — never imported. ``repro-lint`` on this file must
report nothing: the bracketed form suppresses one named rule, the bare
form suppresses everything on its line, and well-formed code needs no
annotation at all.
"""

import time

import numpy as np

from repro.runtime.shm import export_array


def stamped(record):
    record["at"] = time.time()  # repro: noqa[DET01] fixture timestamping only
    return record


def scratch(arr):
    seg, ref = export_array(arr)  # repro: noqa
    return ref


def well_formed(a, b):
    return np.einsum("bij,bjk->bik", a, b)
