"""Seeded LOCK01 violations: the pre-fix dispatch-counter race.

Lint corpus only — never imported. This is the shape of the real bug
the rule was built from: ``repro.runtime.executor`` once bumped its
telemetry dict on the submit path without the counter lock while
``dispatch_stats`` read it under ``self._counts_lock`` — concurrent
submitters lost updates. The locked accessors elect the lock as the
dict's guard; the bare read-modify-write in ``submit`` is the finding.
"""

import threading


class Executor:
    def __init__(self):
        self._counts_lock = threading.Lock()
        self._dispatch_counts = {"submitted": 0, "completed": 0}

    def submit(self, task):
        self._dispatch_counts["submitted"] = (
            self._dispatch_counts["submitted"] + 1
        )
        return task

    def complete(self):
        with self._counts_lock:
            self._dispatch_counts["completed"] += 1

    def dispatch_stats(self):
        with self._counts_lock:
            return dict(self._dispatch_counts)
