"""Seeded SHAPE01 violations: einsum subscript/operand mismatches.

Lint corpus only — never imported.
"""

import numpy as np


def operand_count_mismatch(a):
    return np.einsum("bij,bjk->bik", a)


def unknown_output_label(a, b):
    return np.einsum("ij,jk->iz", a, b)


def duplicate_output_label(a, b):
    return np.einsum("ij,jk->ii", a, b)


def rank_mismatch():
    ident = np.eye(4)
    return np.einsum("bij,bik->jk", ident, ident)
