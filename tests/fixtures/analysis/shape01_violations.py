"""Seeded SHAPE01 violations: einsum subscript/operand mismatches.

Lint corpus only — never imported.
"""

import numpy as np


def operand_count_mismatch(a):
    return np.einsum("bij,bjk->bik", a)


def unknown_output_label(a, b):
    return np.einsum("ij,jk->iz", a, b)


def duplicate_output_label(a, b):
    return np.einsum("ij,jk->ii", a, b)


def rank_mismatch():
    ident = np.eye(4)
    return np.einsum("bij,bik->jk", ident, ident)


def rotation_stack_operand_shortfall(stack, rot):
    # Fused-executor style multi-operand contraction: three input terms
    # named, only two operands passed.
    return np.einsum("pcbm,pcdb,pd->pdbm", stack, rot)


def rotation_stack_rank_mismatch():
    stack = np.zeros((8, 2, 16, 3))
    blocks = np.zeros((8, 2, 2))
    # `pcdb` demands a rank-4 rotation stack; `blocks` is rank 3.
    return np.einsum("pcbm,pcdb->pdbm", stack, blocks)
