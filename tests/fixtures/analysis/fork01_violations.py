"""Seeded FORK01 violations: forking with concurrency state alive.

Lint corpus only — never imported. ``fork(2)`` copies one thread: a
held lock arrives locked forever, a live helper thread simply does not
exist in the child, an open pool's workers vanish mid-flight.
"""

import multiprocessing
import os
import threading
from concurrent.futures import ThreadPoolExecutor

_lock = threading.Lock()


def forks_while_module_lock_held():
    with _lock:
        pid = os.fork()
    return pid


def forks_with_live_pump_thread(conn):
    pump = threading.Thread(target=conn.recv, daemon=True)
    pump.start()
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=conn.send, args=(1,), daemon=True)
    proc.start()
    pump.join()
    return proc


def forks_under_open_pool(items):
    pool = ThreadPoolExecutor(max_workers=2)
    out = list(pool.map(str, items))
    pid = os.fork()
    pool.shutdown()
    return pid, out
