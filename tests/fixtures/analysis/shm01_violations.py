"""Seeded SHM01 violations: shared-memory ownership protocol breaks.

Lint corpus only — never imported.
"""

from repro.runtime.shm import export_array, import_array, release


def leaks_segment(arr):
    seg, ref = export_array(arr)
    return ref


def releases_outside_finally(ref):
    seg, view = import_array(ref)
    total = view.sum()
    release(seg)
    return total


def uses_view_after_release(ref):
    seg, view = import_array(ref)
    release(seg)
    return view.sum()
