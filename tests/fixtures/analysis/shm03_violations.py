"""Seeded SHM03 violations: path-sensitive lifecycle breaks.

Lint corpus only — never imported. Each function releases its resource
on *some* path — the class of bug the lexical SHM01/SHM02 rules could
not see. The flow-sensitive engine walks the CFG's exception and
branch edges and reports the path that leaks.
"""


def releases_on_happy_path_only(arena, stack):
    ref = arena.place(stack)
    view = arena.view(ref)
    out = view.copy() * 2.0
    arena.release_lease(ref)
    return out


def releases_on_one_branch_only(arena, stack, fallback):
    ref = arena.place(stack)
    if fallback:
        out = None
    else:
        out = arena.view(ref).copy()
        arena.release_lease(ref)
    return out


def early_return_skips_release(arena, fill, n):
    ref = arena.reserve((n, n), "float64")
    filled = fill(arena.view(ref))
    if filled is None:
        return None
    arena.release_lease(ref)
    return filled
