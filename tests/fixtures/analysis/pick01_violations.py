"""Seeded PICK01 violations: unpicklable tasks on a process pool.

Lint corpus only — never imported.
"""

from repro.runtime import ProcessExecutor


def square_all(xs):
    with ProcessExecutor(2) as ex:
        return ex.map(lambda x: x * x, xs)


def nested_task(xs):
    def work(x):
        return x + 1

    with ProcessExecutor(2) as ex:
        return ex.map(work, xs)
