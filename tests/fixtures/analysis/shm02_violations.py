"""Seeded SHM02 violations: arena slot-lease lifecycle breaks.

Lint corpus only — never imported.
"""


def leaks_lease(arena, stack):
    ref = arena.place(stack)
    return stack.sum()


def releases_outside_finally(arena, shape):
    ref = arena.reserve(shape, "float64")
    out = arena.view(ref).copy()
    arena.release_lease(ref)
    return out


def uses_view_after_release(arena, stack):
    ref = arena.place(stack)
    try:
        window = arena.view(ref)
    finally:
        arena.release_lease(ref)
        total = window.sum()
    return total
