"""Tiled low-rank image codec (the paper's §I motivating application)."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.apps.compression import TiledSVDCodec, psnr
from repro.baselines import lapack_svd
from repro.errors import ConfigurationError


class _LapackBatch:
    """Minimal decompose_batch solver for fast tests."""

    def decompose_batch(self, matrices):
        return [lapack_svd(a) for a in matrices]


@pytest.fixture
def image(rng):
    y, x = np.mgrid[0:48, 0:48] / 48.0
    img = 0.5 + 0.3 * np.sin(4 * x) * np.cos(3 * y) + 0.05 * rng.standard_normal((48, 48))
    return np.clip(img, 0.0, 1.0)


class TestPsnr:
    def test_identical_is_infinite(self, image):
        assert psnr(image, image) == float("inf")

    def test_noisier_is_lower(self, rng, image):
        little = image + 0.01 * rng.standard_normal(image.shape)
        lots = image + 0.1 * rng.standard_normal(image.shape)
        assert psnr(image, little) > psnr(image, lots)

    def test_shape_mismatch(self, image):
        with pytest.raises(ConfigurationError):
            psnr(image, image[:-1])


class TestCodec:
    def test_tiles_cover_image(self, image):
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        tiles = codec.tiles_of(image)
        assert len(tiles) == 9
        assert all(t.shape == (16, 16) for t in tiles)

    def test_ragged_tiles(self, rng):
        img = rng.uniform(size=(20, 35))
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        tiles = codec.tiles_of(img)
        assert sum(t.size for t in tiles) == img.size

    def test_roundtrip_full_rank_is_exact(self, image):
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        compressed = codec.encode(image, rank=16)
        np.testing.assert_allclose(compressed.decode(), image, atol=1e-10)

    def test_roundtrip_ragged_exact(self, rng):
        img = rng.uniform(size=(20, 35))
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        compressed = codec.encode(img, rank=16)
        np.testing.assert_allclose(compressed.decode(), img, atol=1e-10)

    def test_low_rank_compresses(self, image):
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        compressed = codec.encode(image, rank=3)
        assert compressed.compression_ratio > 1.5
        assert psnr(image, compressed.decode()) > 15.0

    def test_rate_distortion_monotone(self, image):
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        curve = codec.rate_distortion(image, [1, 4, 8, 16])
        psnrs = [p for _, _, p in curve]
        ratios = [r for _, r, _ in curve]
        assert psnrs == sorted(psnrs)
        assert ratios == sorted(ratios, reverse=True)

    def test_wcycle_solver_end_to_end(self, image):
        codec = TiledSVDCodec(WCycleSVD(device="V100"), tile=16)
        compressed = codec.encode(image, rank=6)
        assert psnr(image, compressed.decode()) > 20.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TiledSVDCodec(_LapackBatch(), tile=1)
        codec = TiledSVDCodec(_LapackBatch(), tile=8)
        with pytest.raises(ConfigurationError):
            codec.encode(np.zeros((8, 8)) + 1.0, rank=0)

    def test_stored_floats_accounting(self, image):
        codec = TiledSVDCodec(_LapackBatch(), tile=16)
        compressed = codec.encode(image, rank=2)
        # 9 tiles x rank 2 x (16 + 1 + 16) floats.
        assert compressed.stored_floats == 9 * 2 * 33
