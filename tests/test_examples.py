"""Every example script must stay runnable end to end.

Run as subprocesses so the scripts are exercised exactly the way a user
runs them (fresh interpreter, `__main__` guard, their own imports).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"
    assert "Traceback" not in result.stderr


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "data_assimilation",
        "image_compression",
        "autotuning_tour",
        "convergence_study",
        "array_processing",
        "profile_and_trace",
        "serving_demo",
    } <= names
