"""Input-validation helpers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.utils.validation import (
    as_matrix,
    check_batch,
    check_positive,
    check_square_symmetric,
)


class TestAsMatrix:
    def test_passes_through_contiguous_float64(self, rng):
        A = np.ascontiguousarray(rng.standard_normal((3, 4)))
        out = as_matrix(A)
        assert out is A  # no copy when nothing to convert

    def test_converts_dtype(self):
        out = as_matrix(np.ones((2, 2), dtype=np.float32))
        assert out.dtype == np.float64

    def test_converts_fortran_order(self, rng):
        A = np.asfortranarray(rng.standard_normal((3, 3)))
        out = as_matrix(A)
        assert out.flags["C_CONTIGUOUS"]

    def test_accepts_lists(self):
        out = as_matrix([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)

    @pytest.mark.parametrize("bad", [np.zeros(3), np.zeros((2, 2, 2))])
    def test_rejects_wrong_ndim(self, bad):
        with pytest.raises(ShapeError, match="2-D"):
            as_matrix(bad)

    def test_rejects_empty(self):
        with pytest.raises(ShapeError, match="non-empty"):
            as_matrix(np.zeros((0, 3)))

    def test_rejects_complex(self):
        with pytest.raises(ShapeError, match="real"):
            as_matrix(np.ones((2, 2), dtype=complex))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_nonfinite(self, bad):
        A = np.ones((2, 2))
        A[0, 1] = bad
        with pytest.raises(ShapeError, match="non-finite"):
            as_matrix(A)

    def test_uses_name_in_message(self):
        with pytest.raises(ShapeError, match="panel"):
            as_matrix(np.zeros(2), name="panel")


class TestCheckSquareSymmetric:
    def test_accepts_symmetric(self, symmetric_matrix):
        out = check_square_symmetric(symmetric_matrix)
        assert out.shape == symmetric_matrix.shape

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError, match="square"):
            check_square_symmetric(np.ones((2, 3)))

    def test_rejects_asymmetric(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ShapeError, match="symmetric"):
            check_square_symmetric(A)

    def test_tolerance_is_relative(self):
        A = np.eye(3) * 1e12
        A[0, 1] = 1.0  # tiny relative to the scale
        A[1, 0] = 0.0
        out = check_square_symmetric(A, tol=1e-10)
        assert out.shape == (3, 3)


class TestCheckBatch:
    def test_validates_each(self, rng):
        out = check_batch([rng.standard_normal((2, 2)) for _ in range(3)])
        assert len(out) == 3

    def test_rejects_empty_batch(self):
        with pytest.raises(ShapeError, match="at least one"):
            check_batch([])

    def test_error_names_offending_index(self, rng):
        good = rng.standard_normal((2, 2))
        with pytest.raises(ShapeError, match=r"matrices\[1\]"):
            check_batch([good, np.zeros(3)])

    def test_mixed_sizes_allowed(self, rng):
        out = check_batch(
            [rng.standard_normal((2, 2)), rng.standard_normal((5, 3))]
        )
        assert out[1].shape == (5, 3)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, name="x") == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ShapeError):
            check_positive(bad, name="x")
