"""The benchmark harness's formatting and persistence."""

import json

from benchmarks.harness import fmt, record_table


class TestFmt:
    def test_integers_verbatim(self):
        assert fmt(42) == "42"

    def test_strings_verbatim(self):
        assert fmt("8x32") == "8x32"

    def test_moderate_floats_compact(self):
        assert fmt(3.14159) == "3.142"

    def test_tiny_floats_scientific(self):
        assert fmt(1.5e-6) == "1.500e-06"

    def test_huge_floats_scientific(self):
        assert fmt(123456.0) == "1.235e+05"

    def test_zero(self):
        assert fmt(0.0) == "0"


class TestRecordTable:
    def test_writes_text_and_json(self, tmp_path, monkeypatch):
        monkeypatch.setattr("benchmarks.harness.RESULTS_DIR", tmp_path)
        text = record_table(
            "unit_test_table",
            "A title",
            ["col_a", "col_b"],
            [(1, 2.5), (3, 4.0)],
            notes="a note",
        )
        assert "A title" in text
        assert "a note" in text
        assert (tmp_path / "unit_test_table.txt").exists()
        doc = json.loads((tmp_path / "unit_test_table.json").read_text())
        assert doc["headers"] == ["col_a", "col_b"]
        assert doc["rows"] == [[1, 2.5], [3, 4.0]]

    def test_sidecar_carries_meta_fingerprint(self, tmp_path, monkeypatch):
        # Figure/table sidecars are repro-perf check sources, so they
        # carry the same unified meta block as the BENCH writers.
        from repro.perfci import SCHEMA_VERSION, HostFingerprint

        monkeypatch.setattr("benchmarks.harness.RESULTS_DIR", tmp_path)
        record_table(
            "unit_test_meta",
            "t",
            ["a"],
            [(1,)],
            unit="simulated seconds",
        )
        doc = json.loads((tmp_path / "unit_test_meta.json").read_text())
        meta = doc["meta"]
        assert meta["benchmark"] == "unit_test_meta"
        assert meta["unit"] == "simulated seconds"
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["host"] == HostFingerprint.current().as_dict()

    def test_columns_aligned(self, tmp_path, monkeypatch):
        monkeypatch.setattr("benchmarks.harness.RESULTS_DIR", tmp_path)
        text = record_table(
            "unit_test_align",
            "t",
            ["a", "long_header"],
            [("xxxxxxxx", 1)],
        )
        lines = text.splitlines()
        # Header row and data row have the separator at the same offset.
        assert lines[1].index("long_header") == lines[3].index("1")

    def test_empty_rows_ok(self, tmp_path, monkeypatch):
        monkeypatch.setattr("benchmarks.harness.RESULTS_DIR", tmp_path)
        text = record_table("unit_test_empty", "t", ["a"], [])
        assert "t" in text
