"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_shape_square(self):
        args = build_parser().parse_args(["svd", "--shape", "64"])
        assert args.shape == (64, 64)

    def test_shape_rectangular(self):
        args = build_parser().parse_args(["svd", "--shape", "48x32"])
        assert args.shape == (48, 32)

    def test_bad_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--shape", "lots"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("V100", "P100", "A100", "Vega20"):
            assert name in out

    def test_svd(self, capsys):
        code = main(["svd", "--shape", "12x8", "--batch", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max reconstruction error" in out
        assert "batched_svd_sm" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "--shape", "64", "--batch", "5"]) == 0
        out = capsys.readouterr().out
        assert "W-cycle SVD" in out
        assert "cuSOLVER" in out
        assert "MAGMA" in out

    def test_plan(self, capsys):
        assert main(["plan", "--shape", "256", "--batch", "100"]) == 0
        out = capsys.readouterr().out
        assert "plan 4" in out  # the paper's worked example
        assert "bf16" in out


class TestRuntimeFlags:
    def test_defaults(self):
        # The --backend default honours the runtime's env override, so
        # the CI rerun under REPRO_RUNTIME_BACKEND=persistent drives the
        # CLI through the persistent pool too.
        args = build_parser().parse_args(["svd"])
        assert args.workers == 1
        expected = (
            os.environ.get("REPRO_RUNTIME_BACKEND", "").strip() or "serial"
        )
        assert args.backend == expected

    def test_env_override_sets_backend_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_BACKEND", "threads")
        args = build_parser().parse_args(["svd"])
        assert args.backend == "threads"
        args = build_parser().parse_args(["svd", "--backend", "serial"])
        assert args.backend == "serial"  # explicit flag beats the env

    def test_bad_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--backend", "gpu"])

    def test_env_override_rejects_unknown_backend(self, monkeypatch):
        # argparse never validates a *default* against choices, so a typo
        # in the env var must fail at parser build as a clean usage error
        # (not deep inside RuntimeConfig long after startup).
        monkeypatch.setenv("REPRO_RUNTIME_BACKEND", "persistant")
        with pytest.raises(SystemExit, match="persistant"):
            build_parser()

    def test_serve_cli_env_override_rejects_unknown_backend(
        self, monkeypatch
    ):
        from repro.serve.cli import build_parser as serve_parser

        monkeypatch.setenv("REPRO_RUNTIME_BACKEND", "persistant")
        with pytest.raises(SystemExit, match="persistant"):
            serve_parser()

    def test_svd_threads_backend(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 4)
        code = main(
            ["svd", "--shape", "12x8", "--batch", "3",
             "--workers", "2", "--backend", "threads"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "threads, 2 worker(s)" in out
        assert "max reconstruction error" in out

    def test_estimate_backend_reported(self, capsys):
        assert main(["estimate", "--shape", "32", "--batch", "4"]) == 0
        assert "W-cycle SVD" in capsys.readouterr().out

    def test_workers_beyond_cpu_count_rejected(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 2)
        code = main(["svd", "--workers", "3", "--backend", "threads"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "workers=3 exceeds" in err
        assert "[1, 2]" in err

    def test_serial_backend_with_many_workers_rejected(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 8)
        code = main(["estimate", "--workers", "2", "--backend", "serial"])
        assert code == 2
        err = capsys.readouterr().err
        assert "requires a parallel backend" in err


class TestResilienceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["svd"])
        assert args.max_retries is None
        assert args.task_timeout is None
        assert args.on_failure == "raise"

    def test_bad_on_failure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--on-failure", "ignore"])

    def test_negative_max_retries_rejected(self, capsys):
        code = main(["svd", "--max-retries", "-1"])
        assert code == 2
        assert "max_retries" in capsys.readouterr().err

    def test_svd_quarantine_clean_run(self, capsys):
        code = main(
            ["svd", "--shape", "12x8", "--batch", "3", "--seed", "1",
             "--on-failure", "quarantine"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max reconstruction error" in out
        # a clean quarantine run still prints the (empty) failure summary
        assert "0 failure event(s)" in out

    def test_svd_with_retry_budget(self, capsys, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 4)
        code = main(
            ["svd", "--shape", "12x8", "--batch", "3",
             "--workers", "2", "--backend", "threads",
             "--max-retries", "1", "--task-timeout", "30"]
        )
        assert code == 0
        assert "max reconstruction error" in capsys.readouterr().out


class TestPerfSubcommand:
    def test_perf_list_delegates_to_repro_perf(self, capsys):
        # `python -m repro perf ...` is the same parser as `repro-perf`.
        assert main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        assert "engine.64x64x32.speedup" in out
        assert "check(s)" in out

    def test_perf_check_runs_on_repo_root(self, capsys, tmp_path):
        # An empty tree: every check skips, gate stays green.
        assert main(["perf", "check", "--root", str(tmp_path)]) == 0
        assert "missing-source" in capsys.readouterr().out

    def test_perf_without_subcommand_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["perf"])
