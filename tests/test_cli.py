"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_shape_square(self):
        args = build_parser().parse_args(["svd", "--shape", "64"])
        assert args.shape == (64, 64)

    def test_shape_rectangular(self):
        args = build_parser().parse_args(["svd", "--shape", "48x32"])
        assert args.shape == (48, 32)

    def test_bad_shape(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["svd", "--shape", "lots"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for name in ("V100", "P100", "A100", "Vega20"):
            assert name in out

    def test_svd(self, capsys):
        code = main(["svd", "--shape", "12x8", "--batch", "3", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max reconstruction error" in out
        assert "batched_svd_sm" in out

    def test_estimate(self, capsys):
        assert main(["estimate", "--shape", "64", "--batch", "5"]) == 0
        out = capsys.readouterr().out
        assert "W-cycle SVD" in out
        assert "cuSOLVER" in out
        assert "MAGMA" in out

    def test_plan(self, capsys):
        assert main(["plan", "--shape", "256", "--batch", "100"]) == 0
        out = capsys.readouterr().out
        assert "plan 4" in out  # the paper's worked example
        assert "bf16" in out
