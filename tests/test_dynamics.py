"""Ocean dynamics and cyclic data assimilation."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.apps.assimilation import (
    AdvectionDiffusion,
    AssimilationExperiment,
    smooth_random_field,
)
from repro.errors import ConfigurationError


class TestAdvectionDiffusion:
    @pytest.fixture
    def model(self):
        return AdvectionDiffusion(nlat=8, nlon=12)

    def test_conserves_mean(self, model):
        """Advection and diffusion with periodic/reflective walls conserve
        the field mean."""
        field = smooth_random_field(8, 12, rng=0)
        stepped = model.step(field)
        assert stepped.mean() == pytest.approx(field.mean(), abs=1e-12)

    def test_diffusion_smooths(self):
        model = AdvectionDiffusion(nlat=8, nlon=12, zonal_velocity=0.0)
        rng = np.random.default_rng(1)
        field = rng.standard_normal(96)
        stepped = model.step_ensemble(field[:, None], steps=10)[:, 0]
        assert stepped.var() < field.var()

    def test_pure_advection_translates(self):
        model = AdvectionDiffusion(
            nlat=4, nlon=10, zonal_velocity=1.0, diffusion=0.0
        )
        field = np.zeros((4, 10))
        field[:, 3] = 1.0
        stepped = model.step(field.ravel()).reshape(4, 10)
        np.testing.assert_allclose(stepped[:, 4], 1.0)
        assert stepped[:, 3].max() == pytest.approx(0.0)

    def test_fractional_advection_interpolates(self):
        model = AdvectionDiffusion(
            nlat=2, nlon=8, zonal_velocity=0.5, diffusion=0.0
        )
        field = np.zeros((2, 8))
        field[:, 2] = 1.0
        stepped = model.step(field.ravel()).reshape(2, 8)
        assert stepped[0, 2] == pytest.approx(0.5)
        assert stepped[0, 3] == pytest.approx(0.5)

    def test_ensemble_columns_independent(self, model):
        rng = np.random.default_rng(2)
        states = rng.standard_normal((96, 3))
        together = model.step(states)
        for k in range(3):
            np.testing.assert_allclose(together[:, k], model.step(states[:, k]))

    def test_shape_checked(self, model):
        with pytest.raises(ConfigurationError, match="points"):
            model.step(np.zeros(7))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nlat": 1, "nlon": 8},
            {"nlat": 4, "nlon": 4, "diffusion": 0.3},
            {"nlat": 4, "nlon": 4, "zonal_velocity": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdvectionDiffusion(**kwargs)

    def test_steps_validated(self, model):
        with pytest.raises(ConfigurationError):
            model.step_ensemble(np.zeros((96, 2)), steps=-1)


class TestCyclicAssimilation:
    def test_analysis_beats_free_run(self):
        """The headline property of a working filter: the assimilating
        ensemble tracks the moving truth better than the free run."""
        experiment = AssimilationExperiment(
            nlat=8,
            nlon=8,
            n_observations=48,
            localization_radius=3.0,
            n_members=16,
            seed=8,
        )
        history = experiment.run_cyclic(
            WCycleSVD(device="V100"), cycles=3, forecast_steps=2
        )
        assert len(history) == 3
        free_final, analysis_final = history[-1]
        assert analysis_final < free_final

    def test_every_cycle_analysis_not_worse(self):
        experiment = AssimilationExperiment(
            nlat=6,
            nlon=6,
            n_observations=30,
            localization_radius=2.5,
            n_members=16,
            seed=9,
        )
        history = experiment.run_cyclic(
            WCycleSVD(device="V100"), cycles=3, forecast_steps=1
        )
        for free_rmse, analysis_rmse in history:
            assert analysis_rmse <= free_rmse * 1.05

    def test_cycles_validated(self):
        experiment = AssimilationExperiment(nlat=4, nlon=4, n_observations=8,
                                            localization_radius=2.0)
        with pytest.raises(ConfigurationError):
            experiment.run_cyclic(WCycleSVD(device="V100"), cycles=0)
