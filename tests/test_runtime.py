"""Parallel execution runtime: executors, scheduling, shm, bit-identity.

The headline contract (ISSUE PR 2): ``serial``, ``threads``, and
``processes`` backends must produce byte-identical factors AND identical
simulated-GPU accounting on a ragged batch. Everything the profiler
records is computed host-side from batch shapes, so worker count and
shard boundaries must be invisible in every observable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import Profiler, WCycleEstimator, WCycleSVD
from repro.errors import ConfigurationError
from repro.runtime import (
    BACKENDS,
    ProcessExecutor,
    RuntimeConfig,
    SerialExecutor,
    ThreadExecutor,
    base_executor,
    evd_stack_cost,
    export_array,
    get_executor,
    import_array,
    release,
    shard_count,
    split_shards,
    svd_stack_cost,
    wcycle_matrix_cost,
)
from repro.runtime.executor import _submission_order


class TestRuntimeConfig:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.backend == "serial"
        assert cfg.workers == 1
        assert cfg.min_shard == 4

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="cuda")

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="threads", workers=0)

    def test_rejects_nonpositive_min_shard(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(min_shard=0)

    def test_all_backends_resolvable(self):
        for backend in BACKENDS:
            ex = get_executor(RuntimeConfig(backend=backend, workers=1))
            assert ex.backend == backend
            ex.close()


class TestSubmissionOrder:
    def test_no_costs_keeps_index_order(self):
        assert _submission_order(4, None) == [0, 1, 2, 3]

    def test_descending_cost(self):
        assert _submission_order(4, [1.0, 8.0, 2.0, 4.0]) == [1, 3, 2, 0]

    def test_stable_tie_break_on_index(self):
        assert _submission_order(4, [5.0, 9.0, 5.0, 5.0]) == [1, 0, 2, 3]

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            _submission_order(3, [1.0])


class TestShardPlanning:
    def test_capped_by_workers(self):
        assert shard_count(100, 4, min_shard=4) == 4

    def test_capped_by_min_shard(self):
        # 10 matrices / min_shard 4 -> at most 2 shards, even with 8 workers.
        assert shard_count(10, 8, min_shard=4) == 2

    def test_tiny_bucket_single_shard(self):
        assert shard_count(3, 8, min_shard=4) == 1

    def test_invalid_args_raise(self):
        with pytest.raises(ConfigurationError):
            shard_count(0, 2)
        with pytest.raises(ConfigurationError):
            shard_count(5, 0)

    def test_split_covers_in_order(self):
        chunks = split_shards(range(10), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]  # array_split convention
        assert [i for c in chunks for i in c] == list(range(10))

    def test_split_contiguous(self):
        for chunk in split_shards(range(23), 5):
            assert list(chunk) == list(range(chunk[0], chunk[0] + len(chunk)))

    def test_split_never_empty(self):
        chunks = split_shards(range(2), 5)
        assert len(chunks) == 2
        assert all(chunks)

    def test_split_rejects_bad_shards(self):
        with pytest.raises(ConfigurationError):
            split_shards(range(4), 0)


class TestSharedMemory:
    def test_round_trip(self, rng):
        arr = rng.standard_normal((5, 12, 8))
        seg, ref = export_array(arr)
        try:
            other, view = import_array(ref)
            try:
                assert view.dtype == arr.dtype
                assert np.array_equal(view, arr)
            finally:
                release(other)
        finally:
            release(seg, unlink=True)

    def test_transfer_ownership_returns_no_segment(self, rng):
        arr = rng.standard_normal((3, 4))
        seg, ref = export_array(arr, transfer_ownership=True)
        assert seg is None
        # The receiver adopts the segment: attach, verify, unlink.
        adopted, view = import_array(ref)
        try:
            assert np.array_equal(view, arr)
        finally:
            release(adopted, unlink=True)

    def test_release_is_idempotent(self, rng):
        # Straight-line by design: the double release *is* the behavior
        # under test, so there is no exception window to protect. The
        # sanitizer (when on) deliberately rejects double releases, so the
        # un-sanitized contract is tested with auditing paused.
        from repro.runtime import sanitize

        with sanitize.paused():
            seg, _ = export_array(rng.standard_normal((2, 2)))  # repro: noqa[SHM01]
            release(seg, unlink=True)
            release(seg, unlink=True)
            release(None)


class TestExecutors:
    def test_get_executor_default_is_serial(self):
        # base_executor: under an env-armed fault plan (the chaos-smoke CI
        # job), get_executor wraps everything in a ResilientExecutor. An
        # env backend override (the persistent tier-1 CI rerun) swaps the
        # default backend; honor it here rather than monkeypatching it
        # away, so the test validates whichever default CI selected.
        expected = os.environ.get("REPRO_RUNTIME_BACKEND", "").strip() or "serial"
        ex = get_executor(None)
        try:
            assert base_executor(ex).backend == expected
            if expected == "serial":
                assert isinstance(base_executor(ex), SerialExecutor)
        finally:
            if expected != "serial":
                ex.close()

    def test_env_override_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNTIME_BACKEND", "persistant")
        with pytest.raises(ConfigurationError, match="REPRO_RUNTIME_BACKEND"):
            get_executor(None)

    def test_get_executor_passthrough(self):
        ex = ThreadExecutor(2)
        assert get_executor(ex) is ex
        ex.close()

    def test_get_executor_from_name(self, monkeypatch):
        monkeypatch.setattr("repro.runtime.executor.os.cpu_count", lambda: 4)
        ex = get_executor("threads", workers=3)
        inner = base_executor(ex)
        assert isinstance(inner, ThreadExecutor)
        assert inner.workers == 3
        ex.close()

    def test_get_executor_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            get_executor(42)

    def test_map_empty(self):
        assert SerialExecutor().map(lambda x: x, []) == []

    def test_map_preserves_item_order_despite_costs(self):
        with ThreadExecutor(4) as ex:
            out = ex.map(lambda x: x * x, [1, 2, 3, 4], costs=[1, 9, 2, 8])
        assert out == [1, 4, 9, 16]

    def test_nested_map_runs_inline(self):
        """A task calling map() again must not resubmit to the pool."""
        with ThreadExecutor(2) as ex:

            def outer(i):
                assert ex.active
                return sum(ex.map(lambda j: i * 10 + j, [0, 1]))

            assert not ex.active
            assert ex.map(outer, [1, 2]) == [21, 41]
            assert not ex.active

    def test_single_item_map_does_not_claim_pool(self):
        """One-item maps run inline but leave the pool free for deeper
        fan-out — `active` stays False inside the task."""
        with ThreadExecutor(2) as ex:
            flags = ex.map(lambda _: ex.active, ["only"])
        assert flags == [False]

    def test_process_map(self):
        with ProcessExecutor(2) as ex:
            assert ex.map(abs, [-1, -2, 3]) == [1, 2, 3]

    def test_close_is_idempotent(self):
        ex = ThreadExecutor(2)
        ex.map(lambda x: x, [1, 2])
        ex.close()
        ex.close()

    def test_dispatch_counts_are_thread_safe(self):
        """The serve broker and a background caller may drive the same
        executor concurrently; the ledger must not lose increments."""
        import threading

        with ThreadExecutor(2) as ex:
            def hammer():
                for _ in range(10_000):
                    ex._count(tasks=1)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert ex.dispatch_stats()["tasks"] == 40_000


class TestCostModel:
    def test_svd_stack_cost_scales_with_count(self):
        assert svd_stack_cost((16, 8), 10) == 10 * svd_stack_cost((16, 8), 1)

    def test_evd_cost_cubic(self):
        assert evd_stack_cost(8, 1) == 512.0

    def test_wcycle_cost_orientation_invariant(self):
        assert wcycle_matrix_cost(96, 80) == wcycle_matrix_cost(80, 96)


def _ragged_batch(seed: int = 7) -> list[np.ndarray]:
    """120 matrices: many SM-resident shapes plus W-cycle-sized ones."""
    rng = np.random.default_rng(seed)
    shapes = (
        [(16, 8)] * 40
        + [(12, 12)] * 30
        + [(6, 20)] * 20
        + [(24, 16)] * 24
        + [(96, 80), (80, 64), (64, 48), (48, 64), (32, 32), (8, 8)]
    )
    assert len(shapes) == 120
    return [rng.standard_normal(s) for s in shapes]


def _solve(batch, runtime):
    profiler = Profiler()
    with WCycleSVD(device="V100", runtime=runtime) as solver:
        results = solver.decompose_batch(batch, profiler=profiler)
        rotations = dict(solver.last_level_rotations)
    return results, profiler.report, rotations


class TestCrossBackendIdentity:
    """ISSUE PR 2 acceptance: parallel runs are bit-identical to serial —
    factors AND simulated-GPU accounting — on a ragged 120-matrix batch."""

    @pytest.fixture(scope="class")
    def batch(self):
        return _ragged_batch()

    @pytest.fixture(scope="class")
    def reference(self, batch):
        return _solve(batch, RuntimeConfig())

    @pytest.mark.parametrize("backend", ["threads", "processes", "persistent"])
    def test_factors_byte_identical(self, batch, reference, backend):
        ref_results, ref_report, ref_rotations = reference
        runtime = RuntimeConfig(
            backend=backend, workers=4, min_shard=2, allow_oversubscribe=True
        )
        results, report, rotations = _solve(batch, runtime)
        for got, want in zip(results, ref_results):
            assert got.U.tobytes() == want.U.tobytes()
            assert got.S.tobytes() == want.S.tobytes()
            assert got.V.tobytes() == want.V.tobytes()
        assert rotations == ref_rotations
        # Launch-for-launch identical simulated accounting, not just totals.
        assert len(report.launches) == len(ref_report.launches)
        for got, want in zip(report.launches, ref_report.launches):
            assert got == want
        assert report.total_time == ref_report.total_time

    def test_serial_run_is_reproducible(self, batch, reference):
        ref_results, ref_report, _ = reference
        results, report, _ = _solve(batch, RuntimeConfig())
        for got, want in zip(results, ref_results):
            assert got.S.tobytes() == want.S.tobytes()
        assert len(report.launches) == len(ref_report.launches)


class TestEstimatorIdentity:
    @pytest.mark.parametrize("backend", ["threads", "processes", "persistent"])
    def test_estimate_identical_across_backends(self, backend):
        shapes = [(64, 48)] * 30 + [(128, 96)] * 10 + [(16, 16)] * 50
        serial = WCycleEstimator(device="V100")
        try:
            want = serial.estimate_batch(shapes)
        finally:
            serial.close()
        runtime = RuntimeConfig(
            backend=backend, workers=4, allow_oversubscribe=True
        )
        parallel = WCycleEstimator(device="V100", runtime=runtime)
        try:
            got = parallel.estimate_batch(shapes)
        finally:
            parallel.close()
        assert got.total_time == want.total_time
        assert len(got.launches) == len(want.launches)
        for a, b in zip(got.launches, want.launches):
            assert a == b
