"""Equivalence of the batch-vectorized Jacobi engine with per-matrix solvers.

The engine's contract is that stacking the batch axis changes *nothing*
numerically: every matrix gets the same rotations, the same sweep counts,
and therefore (through the shape+sweep-based cost model) the same simulated
kernel statistics as a per-matrix solver loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import V100
from repro.gpusim.evd_kernel import BatchedEVDKernel, SMEVDKernelConfig
from repro.gpusim.svd_kernel import BatchedSVDKernel
from repro.jacobi.batched import BatchedJacobiEngine
from repro.jacobi.onesided_vector import OneSidedConfig, OneSidedJacobiSVD
from repro.jacobi.parallel_evd import ParallelJacobiEVD
from repro.jacobi.twosided_evd import TwoSidedConfig, TwoSidedJacobiEVD
from repro.core.wcycle import WCycleSVD

from tests.helpers import assert_valid_svd

TOL = 1e-12


def ragged_batch(rng) -> list[np.ndarray]:
    """Square / tall / wide / rank-deficient / repeated-shape matrices."""
    deficient = rng.standard_normal((12, 3)) @ rng.standard_normal((3, 6))
    return [
        rng.standard_normal((8, 8)),       # square
        rng.standard_normal((16, 8)),      # tall
        rng.standard_normal((6, 14)),      # wide
        deficient,                          # rank 3 of 6
        rng.standard_normal((16, 8)),      # repeats the tall bucket
        rng.standard_normal((8, 8)),       # repeats the square bucket
    ]


def assert_svd_matches(res, ref) -> None:
    assert np.allclose(res.U, ref.U, rtol=0.0, atol=TOL)
    assert np.allclose(res.S, ref.S, rtol=0.0, atol=TOL)
    assert np.allclose(res.V, ref.V, rtol=0.0, atol=TOL)
    assert res.trace.sweeps == ref.trace.sweeps
    ours = [(r.off_norm, r.rotations) for r in res.trace.records]
    theirs = [(r.off_norm, r.rotations) for r in ref.trace.records]
    assert ours == theirs


class TestSVDEquivalence:
    @pytest.mark.parametrize("cache", [True, False])
    @pytest.mark.parametrize("transpose", [True, False])
    def test_matches_scalar_solver_on_ragged_batch(self, rng, cache, transpose):
        config = OneSidedConfig(
            cache_inner_products=cache, transpose_wide=transpose
        )
        batch = ragged_batch(rng)
        results = BatchedJacobiEngine(config).svd_batch(batch)
        solver = OneSidedJacobiSVD(config)
        for a, res in zip(batch, results):
            assert_svd_matches(res, solver.decompose(a))

    def test_results_are_valid_svds(self, rng):
        batch = [b for b in ragged_batch(rng) if np.linalg.matrix_rank(b) == min(b.shape)]
        for a, res in zip(batch, BatchedJacobiEngine().svd_batch(batch)):
            assert_valid_svd(a, res)

    def test_batch_membership_does_not_change_results(self, rng):
        """A matrix factorizes identically alone and inside a big bucket."""
        a = rng.standard_normal((12, 6))
        rest = [rng.standard_normal((12, 6)) for _ in range(7)]
        engine = BatchedJacobiEngine()
        alone = engine.svd_batch([a])[0]
        together = engine.svd_batch([a, *rest])[0]
        assert np.array_equal(alone.U, together.U)
        assert np.array_equal(alone.S, together.S)
        assert np.array_equal(alone.V, together.V)

    def test_single_column_and_zero_matrix(self, rng):
        batch = [rng.standard_normal((5, 1)), np.zeros((4, 3))]
        solver = OneSidedJacobiSVD()
        for a, res in zip(batch, BatchedJacobiEngine().svd_batch(batch)):
            assert_svd_matches(res, solver.decompose(a))

    def test_dynamic_ordering_falls_back_to_scalar_loop(self, rng):
        config = OneSidedConfig(ordering="dynamic")
        batch = [rng.standard_normal((10, 6)) for _ in range(3)]
        results = BatchedJacobiEngine(config).svd_batch(batch)
        solver = OneSidedJacobiSVD(config)
        for a, res in zip(batch, results):
            assert_svd_matches(res, solver.decompose(a))


class TestEVDEquivalence:
    def _symmetric_batch(self, rng) -> list[np.ndarray]:
        out = []
        for k in (6, 9, 6, 12, 1):
            M = rng.standard_normal((k, k))
            out.append((M + M.T) / 2.0)
        out.append(np.zeros((5, 5)))
        return out

    def test_matches_parallel_solver(self, rng):
        batch = self._symmetric_batch(rng)
        results = BatchedJacobiEngine().evd_batch(batch)
        solver = ParallelJacobiEVD()
        for B, res in zip(batch, results):
            ref = solver.decompose(B)
            assert np.allclose(res.J, ref.J, rtol=0.0, atol=TOL)
            assert np.allclose(res.L, ref.L, rtol=0.0, atol=TOL)
            assert res.trace.sweeps == ref.trace.sweeps

    def test_sequential_variant_falls_back(self, rng):
        batch = self._symmetric_batch(rng)
        engine = BatchedJacobiEngine(parallel_evd=False)
        solver = TwoSidedJacobiEVD()
        for B, res in zip(batch, engine.evd_batch(batch)):
            ref = solver.decompose(B)
            assert np.allclose(res.J, ref.J, rtol=0.0, atol=TOL)
            assert np.allclose(res.L, ref.L, rtol=0.0, atol=TOL)


class TestKernelStatsUnchanged:
    """The cost model prices shapes + observed sweeps; since the engine
    reproduces per-matrix sweep counts exactly, kernel statistics must be
    identical to the seed's per-matrix-loop implementation."""

    def test_svd_kernel_sweeps_match_solver_loop(self, rng):
        kernel = BatchedSVDKernel(V100)
        batch = [rng.standard_normal((16, 8)) for _ in range(6)]
        results, stats = kernel.run(batch)
        cfg = kernel.config
        solver = OneSidedJacobiSVD(
            OneSidedConfig(
                tol=cfg.tol,
                max_sweeps=cfg.max_sweeps,
                ordering=cfg.ordering,
                cache_inner_products=cfg.cache_inner_products,
                transpose_wide=cfg.transpose_wide,
            )
        )
        for a, res in zip(batch, results):
            assert_svd_matches(res, solver.decompose(a))
        assert stats.blocks == len(batch)

    def test_svd_kernel_stats_deterministic(self, rng):
        batch = [rng.standard_normal((12, 6)) for _ in range(4)]
        s1 = BatchedSVDKernel(V100).run(batch)[1]
        s2 = BatchedSVDKernel(V100).run(batch)[1]
        assert s1 == s2

    def test_evd_kernel_sweeps_match_solver_loop(self, rng):
        kernel = BatchedEVDKernel(V100, SMEVDKernelConfig())
        batch = []
        for k in (8, 12, 8):
            M = rng.standard_normal((k, k))
            batch.append((M + M.T) / 2.0)
        results, stats = kernel.run(batch)
        solver = ParallelJacobiEVD(
            TwoSidedConfig(
                tol=kernel.config.tol,
                max_sweeps=kernel.config.max_sweeps,
                ordering=kernel.config.ordering,
            )
        )
        for B, res in zip(batch, results):
            ref = solver.decompose(B)
            assert res.trace.sweeps == ref.trace.sweeps
            assert np.allclose(res.L, ref.L, rtol=0.0, atol=TOL)
        assert stats.blocks == len(batch)


class TestWCycleCaching:
    def test_kernels_constructed_once(self, rng):
        solver = WCycleSVD(device="V100")
        batch = [rng.standard_normal((96, 64))]
        solver.decompose_batch(batch)
        svd_kernel = solver._svd_kernel()
        evd_kernel = solver._evd_kernel()
        solver.decompose_batch(batch)
        assert solver._svd_kernel() is svd_kernel
        assert solver._evd_kernel() is evd_kernel

    def test_level_plans_memoized_per_geometry(self, rng):
        solver = WCycleSVD(device="V100")
        a = rng.standard_normal((96, 64))
        solver.decompose_batch([a])
        keys = set(solver._plan_cache)
        assert keys  # the 96x64 matrix goes through the level path
        plans = {k: solver._plan_cache[k] for k in keys}
        gemms = dict(solver._gemm_cache)
        solver.decompose_batch([a])
        # Same geometry: no new entries, and the cached objects are reused.
        assert set(solver._plan_cache) == keys
        for k in keys:
            assert solver._plan_cache[k] is plans[k]
        for k, g in gemms.items():
            assert solver._gemm_cache[k] is g

    def test_repeat_solve_is_bit_identical(self, rng):
        solver = WCycleSVD(device="V100")
        batch = [rng.standard_normal((96, 64)), rng.standard_normal((64, 48))]
        first = solver.decompose_batch(batch)
        second = solver.decompose_batch(batch)
        for r1, r2 in zip(first.results, second.results):
            assert np.array_equal(r1.U, r2.U)
            assert np.array_equal(r1.S, r2.S)
            assert np.array_equal(r1.V, r2.V)

    def test_cached_driver_produces_valid_factorizations(self, rng):
        solver = WCycleSVD(device="V100")
        for _ in range(2):
            a = rng.standard_normal((80, 56))
            assert_valid_svd(a, solver.decompose(a))
