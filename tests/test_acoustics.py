"""Underwater acoustic subspace detection (paper ref [2] application)."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.apps.acoustics import (
    ArraySpec,
    DetectionResult,
    SubspaceDetector,
    simulate_snapshots,
)
from repro.baselines import lapack_svd
from repro.errors import ConfigurationError


class _LapackBatch:
    def decompose_batch(self, matrices):
        return [lapack_svd(a) for a in matrices]


@pytest.fixture
def array():
    return ArraySpec(n_sensors=16)


class TestArraySpec:
    def test_steering_unit_norm(self, array):
        for bearing in (-60.0, 0.0, 30.0, 89.0):
            v = array.steering_vector(bearing)
            assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_broadside_is_uniform(self, array):
        v = array.steering_vector(0.0)
        assert np.allclose(v, v[0])

    def test_distinct_bearings_distinct_vectors(self, array):
        a = array.steering_vector(10.0)
        b = array.steering_vector(45.0)
        assert abs(a @ b) < 0.99

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArraySpec(n_sensors=1)
        with pytest.raises(ConfigurationError):
            ArraySpec(n_sensors=8, spacing_wavelengths=0.9)


class TestSimulation:
    def test_snapshot_shape(self, array):
        data = simulate_snapshots(array, [20.0], n_snapshots=100, rng=0)
        assert data.shape == (16, 100)

    def test_source_raises_power(self, array):
        quiet = simulate_snapshots(array, [], n_snapshots=200, rng=0)
        loud = simulate_snapshots(
            array, [20.0], n_snapshots=200, snr_db=20.0, rng=0
        )
        assert loud.var() > 2.0 * quiet.var()

    def test_needs_enough_snapshots(self, array):
        with pytest.raises(ConfigurationError, match="snapshots"):
            simulate_snapshots(array, [0.0], n_snapshots=4)


class TestDetector:
    def _bins(self, array, bearings, n_bins=6, snr_db=15.0):
        return [
            simulate_snapshots(
                array, bearings, n_snapshots=300, snr_db=snr_db, rng=100 + b
            )
            for b in range(n_bins)
        ]

    def test_detects_single_source_bearing(self, array):
        detector = SubspaceDetector(array, _LapackBatch())
        result = detector.detect(self._bins(array, [25.0]))
        for bin_index in range(len(result.spectra)):
            bearings = result.detected_bearings(bin_index)
            assert len(bearings) >= 1
            assert abs(abs(bearings[0]) - 25.0) < 5.0  # cosine array: +-25

    def test_quiet_ocean_detects_nothing(self, array):
        detector = SubspaceDetector(array, _LapackBatch())
        result = detector.detect(self._bins(array, [], snr_db=0.0))
        assert max(result.n_sources) == 0

    def test_more_sources_higher_subspace(self, array):
        detector = SubspaceDetector(array, _LapackBatch())
        one = detector.detect(self._bins(array, [20.0], snr_db=20.0))
        two = detector.detect(self._bins(array, [-40.0, 20.0], snr_db=20.0))
        assert np.mean(two.n_sources) > np.mean(one.n_sources)

    def test_wcycle_solver_end_to_end(self, array):
        detector = SubspaceDetector(array, WCycleSVD(device="V100"))
        result = detector.detect(self._bins(array, [30.0], n_bins=3))
        assert isinstance(result, DetectionResult)
        bearings = result.detected_bearings(0)
        assert len(bearings) >= 1

    def test_sensor_count_checked(self, array):
        detector = SubspaceDetector(array, _LapackBatch())
        with pytest.raises(ConfigurationError, match="sensors"):
            detector.covariances([np.zeros((5, 50))])

    def test_config_validation(self, array):
        with pytest.raises(ConfigurationError):
            SubspaceDetector(array, _LapackBatch(), grid_deg=0)
        with pytest.raises(ConfigurationError):
            SubspaceDetector(array, _LapackBatch(), noise_factor=1.0)
