"""Library logging conventions."""

import logging


from repro import WCycleSVD
from repro.gpusim import V100
from repro.tuning import AutoTuner
from repro.utils.logging import format_event, get_logger


class TestLoggerNamespace:
    def test_children_under_repro(self):
        log = get_logger("core.wcycle")
        assert log.name == "repro.core.wcycle"
        # Setting the level on the "repro" logger governs all children.
        logging.getLogger("repro").setLevel(logging.CRITICAL)
        try:
            assert not log.isEnabledFor(logging.DEBUG)
        finally:
            logging.getLogger("repro").setLevel(logging.NOTSET)

    def test_no_handlers_installed_by_library(self):
        # Library etiquette: importing repro must not configure handlers.
        assert logging.getLogger("repro").handlers == []


class TestDecisionLogging:
    def test_wcycle_logs_width_schedule(self, rng, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            WCycleSVD(device="V100").decompose(rng.standard_normal((96, 96)))
        messages = " ".join(r.message for r in caplog.records)
        assert "widths" in messages
        assert "whole-SVD-in-SM" in messages

    def test_tuner_logs_selected_plan(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            AutoTuner(V100).select([(256, 256)] * 100)
        messages = " ".join(r.message for r in caplog.records)
        assert "clears threshold" in messages

    def test_tuner_logs_fallback(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            AutoTuner(V100).select([(64, 64)])
        messages = " ".join(r.message for r in caplog.records)
        assert "falling back" in messages

    def test_silent_by_default(self, rng, capsys):
        WCycleSVD(device="V100").decompose(rng.standard_normal((16, 16)))
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""


class TestStructuredEvents:
    def test_format_event_renders_key_value_pairs(self):
        line = format_event(
            "serve.flush",
            {
                "shape": (16, 8),
                "fill": 4,
                "cause": "wait",
                "deadline": None,
                "wait_s": 0.00123456789,
            },
        )
        assert line == (
            "event=serve.flush shape=16x8 fill=4 cause=wait "
            "deadline=- wait_s=0.00123457"
        )

    def test_format_event_quotes_whitespace(self):
        line = format_event("x", {"msg": "two words"})
        assert line == 'event=x msg="two words"'

    def test_event_emits_through_stdlib_logging(self, caplog):
        log = get_logger("serve.test")
        with caplog.at_level(logging.DEBUG, logger="repro"):
            log.event("serve.reject", pending=12, capacity=12)
        messages = [r.message for r in caplog.records]
        assert "event=serve.reject pending=12 capacity=12" in messages

    def test_structured_logger_delegates_stdlib_api(self):
        log = get_logger("serve.delegate")
        assert log.name == "repro.serve.delegate"
        assert log.handlers == []
        assert log.isEnabledFor(logging.CRITICAL)
