"""repro.analysis: lint framework, the eight rules, CLI, fixture corpus.

The fixture corpus under ``tests/fixtures/analysis/`` holds seeded
violations (one file per rule, plus a fully ``noqa``-annotated clean
file) and a golden JSON report. Directory walks never descend into
``fixtures`` — the corpus is linted here by explicit file path only.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"

RULE_IDS = (
    "DET01",
    "EXC01",
    "FORK01",
    "LOCK01",
    "PICK01",
    "RET01",
    "SHAPE01",
    "SHM03",
)

#: retired rule id -> the rule that superseded it
ALIASES = {"SHM01": "SHM03", "SHM02": "SHM03"}

#: fixture file -> (rule exercised, expected finding count)
CORPUS = {
    "runtime/det01_violations.py": ("DET01", 4),
    "runtime/exc01_violations.py": ("EXC01", 2),
    "runtime/ret01_violations.py": ("RET01", 2),
    "fork01_violations.py": ("FORK01", 3),
    "lock01_violations.py": ("LOCK01", 2),
    "pick01_violations.py": ("PICK01", 2),
    "shape01_violations.py": ("SHAPE01", 7),
    # The legacy SHM01/SHM02 corpora now exercise the flow-sensitive
    # successor (shm01 dropped from 4 to 3: the old rule double-counted
    # a function that the CFG proves has a single leaking path).
    "shm01_violations.py": ("SHM03", 3),
    "shm02_violations.py": ("SHM03", 3),
    "shm03_violations.py": ("SHM03", 3),
}

#: the corpus in the order the golden report was generated
CORPUS_ORDER = [
    "fork01_violations.py",
    "lock01_violations.py",
    "pick01_violations.py",
    "shape01_violations.py",
    "shm01_violations.py",
    "shm02_violations.py",
    "shm03_violations.py",
    "runtime/clean.py",
    "runtime/det01_violations.py",
    "runtime/exc01_violations.py",
    "runtime/ret01_violations.py",
]


class TestRegistry:
    def test_all_rules_registered_in_id_order(self):
        assert tuple(r.id for r in all_rules()) == RULE_IDS

    def test_get_rule(self):
        assert get_rule("SHM03").id == "SHM03"

    def test_get_rule_unknown(self):
        with pytest.raises(KeyError, match="unknown rule"):
            get_rule("NOPE99")

    @pytest.mark.parametrize("old,canonical", sorted(ALIASES.items()))
    def test_retired_ids_resolve_to_successor(self, old, canonical):
        assert get_rule(old).id == canonical

    def test_alias_table_is_exported(self):
        from repro.analysis.framework import rule_aliases

        assert rule_aliases() == ALIASES


class TestFixtureCorpus:
    @pytest.mark.parametrize("relpath", sorted(CORPUS))
    def test_rule_catches_its_fixture(self, relpath):
        rule_id, count = CORPUS[relpath]
        findings = lint_file(
            str(FIXTURES / relpath), rules=[get_rule(rule_id)]
        )
        assert len(findings) == count
        assert all(f.rule == rule_id for f in findings)

    @pytest.mark.parametrize("relpath", sorted(CORPUS))
    def test_fixture_trips_only_its_rule(self, relpath):
        """Each seeded file is a single-rule corpus: no collateral noise."""
        rule_id, count = CORPUS[relpath]
        findings = lint_file(str(FIXTURES / relpath))
        assert {f.rule for f in findings} == {rule_id}
        assert len(findings) == count

    def test_clean_fixture_is_fully_suppressed(self):
        assert lint_file(str(FIXTURES / "runtime" / "clean.py")) == []

    def test_walks_never_descend_into_fixtures(self):
        findings = lint_paths([str(REPO_ROOT / "tests")])
        assert not any("fixtures" in f.path for f in findings)


class TestSuppression:
    def test_bracketed_noqa_suppresses_named_rule(self):
        src = "import time\n\ndef f():\n    return time.time()  # repro: noqa[DET01] why\n"
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_bracketed_noqa_leaves_other_rules(self):
        src = "import time\n\ndef f():\n    return time.time()  # repro: noqa[EXC01]\n"
        findings = lint_source(src, filename="src/repro/runtime/x.py")
        assert [f.rule for f in findings] == ["DET01"]

    def test_bare_noqa_suppresses_everything(self):
        src = "import time\n\ndef f():\n    return time.time()  # repro: noqa\n"
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_path_scoping_keeps_cold_paths_quiet(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, filename="benchmarks/harness.py") == []
        assert lint_source(src, filename="src/repro/runtime/x.py") != []

    def test_retired_alias_keeps_suppressing_successor(self):
        src = (
            "def f(arena, x):\n"
            "    ref = arena.place(x)  # repro: noqa[SHM01] drained by pool\n"
        )
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_bare_beats_bracketed_on_the_same_line(self):
        tail_first = "    return time.time()  # repro: noqa[EXC01] # repro: noqa\n"
        bare_first = "    return time.time()  # repro: noqa # repro: noqa[EXC01]\n"
        for line in (tail_first, bare_first):
            src = "import time\n\ndef f():\n" + line
            assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_bracketed_markers_accumulate(self):
        src = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa[DET01] # repro: noqa[EXC01]\n"
        )
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_noqa_on_continuation_line_covers_the_statement(self):
        src = (
            "import time\n"
            "\n"
            "def f():\n"
            "    return time.time() + (\n"
            "        0  # repro: noqa[DET01] covers the whole statement\n"
            "    )\n"
        )
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_noqa_on_first_line_covers_later_physical_lines(self):
        src = (
            "import time\n"
            "\n"
            "def f():\n"
            "    return (  # repro: noqa[DET01]\n"
            "        time.time()\n"
            "    )\n"
        )
        assert lint_source(src, filename="src/repro/runtime/x.py") == []

    def test_noqa_on_finally_header_does_not_cover_the_block(self):
        src = (
            "import time\n"
            "\n"
            "def f():\n"
            "    try:\n"
            "        pass\n"
            "    finally:  # repro: noqa[DET01]\n"
            "        t = time.time()\n"
            "    return t\n"
        )
        findings = lint_source(src, filename="src/repro/runtime/x.py")
        assert [f.rule for f in findings] == ["DET01"]

    def test_standalone_comment_covers_only_its_own_line(self):
        src = (
            "import time\n"
            "\n"
            "def f():\n"
            "    # repro: noqa[DET01]\n"
            "    return time.time()\n"
        )
        findings = lint_source(src, filename="src/repro/runtime/x.py")
        assert [f.rule for f in findings] == ["DET01"]


class TestFramework:
    def test_parse_error_surfaces_as_parse_finding(self):
        findings = lint_source("def broken(:\n", filename="x.py")
        assert [f.rule for f in findings] == ["PARSE"]

    def test_finding_render_is_editor_clickable(self):
        f = Finding(rule="DET01", path="a/b.py", line=3, col=4, message="m")
        assert f.render() == "a/b.py:3:5: DET01 m"

    def test_findings_sorted_by_location(self):
        findings = lint_file(str(FIXTURES / "shm01_violations.py"))
        assert findings == sorted(findings, key=Finding.sort_key)


class TestRepoIsClean:
    def test_src_and_tests_lint_clean(self):
        """The acceptance gate: the analyzer finds nothing in the tree."""
        findings = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
        assert [f.render() for f in findings] == []


class TestCli:
    def test_exit_zero_on_clean_tree(self, capsys):
        assert main([str(REPO_ROOT / "src" / "repro" / "analysis")]) == 0
        assert capsys.readouterr().out == ""

    def test_exit_one_with_text_findings(self, capsys):
        code = main([str(FIXTURES / "runtime" / "det01_violations.py")])
        captured = capsys.readouterr()
        assert code == 1
        assert "DET01" in captured.out
        assert "finding(s)" in captured.err

    def test_select_restricts_rules(self, capsys):
        code = main(
            ["--select", "EXC01", str(FIXTURES / "runtime" / "det01_violations.py")]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "NOPE99", "src"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_parse_failure_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad)]) == 2
        assert "PARSE" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_json_report_matches_golden(self, capsys, monkeypatch):
        """The golden report pins paths, locations, and messages for the
        whole corpus. When a rule's output legitimately changes,
        regenerate with::

            python -m repro.analysis --format json \
                $(files in CORPUS_ORDER) > tests/fixtures/analysis/expected.json
        """
        monkeypatch.chdir(REPO_ROOT)
        args = ["--format", "json"] + [
            str(Path("tests/fixtures/analysis") / rel) for rel in CORPUS_ORDER
        ]
        code = main(args)
        got = json.loads(capsys.readouterr().out)
        want = json.loads((FIXTURES / "expected.json").read_text())
        assert code == 1
        assert got == want
