"""The serving broker: admission, flush timing, fan-out, bit-identity.

Deterministic tests drive a non-started server (``start=False``) with an
injected fake clock and :meth:`SVDServer.poll` — flush behavior is a
pure function of the clock, so there is not a single sleep here.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FailureReport,
    NonFiniteError,
    ServerClosed,
    ServerOverloaded,
    ShapeError,
)
from repro.jacobi.batched import BatchedJacobiEngine
from repro.jacobi.onesided_vector import OneSidedConfig
from repro.serve import (
    ServeConfig,
    SVDClient,
    SVDServer,
    positions_to_request_ids,
    remap_fused_failure,
    report_by_request,
)


class FakeClock:
    """Injected monotonic clock: advances only when told to."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def manual_server(clock, **knobs):
    """A non-started server driven by poll() under the fake clock."""
    return SVDServer(ServeConfig(**knobs), clock=clock, start=False)


class RecordingEngine(BatchedJacobiEngine):
    """Real engine that records the fused dispatch order."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.fused = []

    def svd_batch(self, matrices, *, on_failure=None):
        self.fused.append([m.shape for m in matrices])
        return super().svd_batch(matrices, on_failure=on_failure)


class TestConfig:
    def test_rejects_bad_knobs(self):
        for bad in (
            dict(max_batch=0),
            dict(max_wait_ms=-1),
            dict(deadline_slack_ms=-1),
            dict(max_pending=0),
            dict(stats_window=0),
        ):
            with pytest.raises(ConfigurationError):
                ServeConfig(**bad)

    def test_engine_and_runtime_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            SVDServer(
                engine=BatchedJacobiEngine(), runtime="serial", start=False
            )

    def test_engine_must_look_like_a_solver(self):
        with pytest.raises(ConfigurationError):
            SVDServer(engine=object(), start=False)


class TestAdmission:
    def test_validation_fails_in_the_caller(self, clock):
        server = manual_server(clock)
        with pytest.raises(ShapeError):
            server.submit(np.zeros(5))  # 1-D
        assert server.pending == 0

    def test_bad_deadline_rejected(self, clock):
        server = manual_server(clock)
        with pytest.raises(ConfigurationError):
            server.submit(np.zeros((4, 2)), deadline_ms=0)

    def test_backpressure_raises_server_overloaded(self, clock):
        server = manual_server(clock, max_pending=2, max_batch=16)
        server.submit(np.zeros((4, 2)))
        server.submit(np.zeros((4, 2)))
        with pytest.raises(ServerOverloaded) as info:
            server.submit(np.zeros((4, 2)))
        assert info.value.pending == 2
        assert info.value.capacity == 2
        stats = server.stats()
        assert stats.rejected == 1
        assert stats.submitted == 2

    def test_rejected_submit_frees_no_slot(self, clock, rng):
        server = manual_server(clock, max_pending=1, max_wait_ms=0.0)
        server.submit(rng.standard_normal((4, 2)))
        with pytest.raises(ServerOverloaded):
            server.submit(rng.standard_normal((4, 2)))
        # Dispatching drains the queue; admission works again.
        assert server.poll() == 1
        server.submit(rng.standard_normal((4, 2)))

    def test_closed_server_refuses_submits(self, clock):
        server = manual_server(clock)
        server.close()
        with pytest.raises(ServerClosed):
            server.submit(np.zeros((4, 2)))


class TestFlushTiming:
    def test_max_wait_flush_under_fake_clock(self, clock, rng):
        server = manual_server(clock, max_batch=16, max_wait_ms=5.0)
        f1 = server.submit(rng.standard_normal((8, 4)))
        f2 = server.submit(rng.standard_normal((8, 4)))
        # Not due yet: nothing dispatches no matter how often we poll.
        clock.advance(0.004)
        assert server.poll() == 0
        assert not f1.done()
        # Crossing max_wait flushes the bucket as one fused batch.
        clock.advance(0.002)
        assert server.poll() == 1
        assert f1.done() and f2.done()
        stats = server.stats()
        assert stats.flush_causes == {"wait": 1}
        assert stats.batch_fill == {2: 1}

    def test_fill_flush_needs_no_clock_advance(self, clock, rng):
        server = manual_server(clock, max_batch=2, max_wait_ms=1e6)
        server.submit(rng.standard_normal((8, 4)))
        server.submit(rng.standard_normal((8, 4)))
        assert server.poll() == 1
        assert server.stats().flush_causes == {"fill": 1}

    def test_deadline_pressure_flush(self, clock, rng):
        server = manual_server(
            clock, max_batch=16, max_wait_ms=1e6, deadline_slack_ms=2.0
        )
        future = server.submit(
            rng.standard_normal((8, 4)), deadline_ms=10.0
        )
        clock.advance(0.005)
        assert server.poll() == 0
        # 10ms deadline - 2ms slack: due at +8ms.
        clock.advance(0.004)
        assert server.poll() == 1
        assert future.done()
        assert server.stats().flush_causes == {"deadline": 1}

    def test_latency_measures_the_injected_clock(self, clock, rng):
        server = manual_server(clock, max_batch=16, max_wait_ms=5.0)
        server.submit(rng.standard_normal((8, 4)))
        clock.advance(0.006)
        assert server.poll() == 1
        stats = server.stats()
        assert stats.latency_p50 == pytest.approx(0.006)
        assert stats.latency_max == pytest.approx(0.006)

    def test_stats_reset_leaves_an_empty_window_not_a_crash(
        self, clock, rng
    ):
        # Regression: a snapshot taken right after reset_stats() — the
        # window empty, zero completions — must degrade every quantile
        # to NaN exactly like the pre-first-completion state, and the
        # summary string must render, not raise.
        server = manual_server(clock, max_batch=16, max_wait_ms=5.0)
        server.submit(rng.standard_normal((8, 4)))
        clock.advance(0.006)
        server.poll()
        assert server.stats().window == 1
        server.reset_stats()
        stats = server.stats()
        assert stats.window == 0
        assert stats.submitted == 0
        assert stats.completed == 0
        assert stats.batches == 0
        for value in (
            stats.latency_p50,
            stats.latency_p95,
            stats.latency_p99,
            stats.latency_max,
            stats.mean_fill,
        ):
            assert np.isnan(value)
        assert "latency" in stats.summary()
        # The next completion repopulates the fresh window.
        server.submit(rng.standard_normal((8, 4)))
        clock.advance(0.006)
        server.poll()
        stats = server.stats()
        assert stats.window == 1
        assert stats.latency_p50 == pytest.approx(0.006)


class TestOrderingThroughDispatch:
    def test_priority_then_edf_orders_the_fused_stack(self, clock):
        captured = []
        inner = BatchedJacobiEngine()

        class CapturingEngine:
            last_failures = FailureReport()

            def svd_batch(self, matrices, *, on_failure=None):
                # All matrices share a shape (one bucket); entry [0,0]
                # encodes the submit index, exposing the fused order.
                captured.extend(float(m[0, 0]) for m in matrices)
                results = inner.svd_batch(matrices, on_failure=on_failure)
                self.last_failures = inner.last_failures
                return results

        server = SVDServer(
            ServeConfig(max_batch=16, max_wait_ms=0.0),
            engine=CapturingEngine(),
            clock=clock,
            start=False,
        )
        mats = [np.eye(8, 4) * (i + 1) for i in range(4)]
        server.submit(mats[0], priority=0)
        server.submit(mats[1], priority=5)
        server.submit(mats[2], priority=0, deadline_ms=50.0)
        server.submit(mats[3], priority=5, deadline_ms=50.0)
        assert server.poll() == 1
        # priority 5 first (deadline-bearing before deadline-free),
        # then priority 0 likewise.
        assert captured == [4.0, 2.0, 3.0, 1.0]


class TestBitIdentity:
    def test_served_results_match_standalone_solves(self, clock, rng):
        mats = [rng.standard_normal((16, 8)) for _ in range(6)]
        server = manual_server(clock, max_batch=4, max_wait_ms=0.0)
        futures = [server.submit(a) for a in mats]
        while server.pending:
            server.poll()
        served = [f.result(timeout=0) for f in futures]
        reference = BatchedJacobiEngine().svd_batch(mats)
        for got, want in zip(served, reference):
            assert np.array_equal(got.U, want.U)
            assert np.array_equal(got.S, want.S)
            assert np.array_equal(got.V, want.V)

    def test_mixed_shapes_fuse_per_bucket_and_stay_identical(
        self, clock, rng
    ):
        shapes = [(16, 8), (12, 12), (16, 8), (12, 12), (16, 8)]
        mats = [rng.standard_normal(s) for s in shapes]
        engine = RecordingEngine()
        server = SVDServer(
            ServeConfig(max_batch=8, max_wait_ms=0.0),
            engine=engine,
            clock=clock,
            start=False,
        )
        futures = [server.submit(a) for a in mats]
        while server.pending:
            server.poll()
        # One fused batch per shape bucket, never mixed.
        assert sorted(len(call) for call in engine.fused) == [2, 3]
        for call in engine.fused:
            assert len(set(call)) == 1
        reference = BatchedJacobiEngine().svd_batch(mats)
        for future, want in zip(futures, reference):
            got = future.result(timeout=0)
            assert np.array_equal(got.S, want.S)


class TestFailureFanOut:
    def test_positions_translate_to_request_ids(self):
        assert positions_to_request_ids((0, 2), (10, 11, 12)) == (10, 12)
        assert positions_to_request_ids(None, (10, 11)) == (10, 11)
        with pytest.raises(IndexError):
            positions_to_request_ids((3,), (10, 11))

    def test_remap_rewrites_batch_indices(self):
        exc = ConvergenceError(
            "no convergence", sweeps=5, residual=1.0, batch_indices=(1,)
        )
        mapped = remap_fused_failure(exc, (40, 41, 42))
        assert isinstance(mapped, ConvergenceError)
        assert mapped.batch_indices == (41,)
        assert "41" in str(mapped)
        assert mapped.sweeps == 5

    def test_remap_implicates_whole_batch_without_indices(self):
        exc = NonFiniteError("NaN appeared")
        mapped = remap_fused_failure(exc, (7, 9))
        assert mapped.batch_indices == (7, 9)

    def test_remap_passes_infrastructure_errors_through(self):
        exc = RuntimeError("worker crashed")
        assert remap_fused_failure(exc, (1, 2)) is exc

    def test_report_groups_by_request_id(self):
        report = FailureReport()
        report.add(
            index=1, stage="svd", cause="ConvergenceError",
            message="m", attempts=1, recovered=False,
        )
        report.add(
            index=-1, stage="executor", cause="WorkerCrashError",
            message="m", attempts=2, recovered=True,
        )
        grouped = report_by_request(report, (30, 31))
        assert set(grouped) == {31, -1}

    def test_unconverged_request_fails_by_id_not_position(
        self, clock, rng
    ):
        # The regression this guards: after priority reordering, the
        # failing request's position in the fused stack differs from its
        # id — the exception must name the id.
        engine = BatchedJacobiEngine(
            svd_config=OneSidedConfig(max_sweeps=1)
        )
        server = SVDServer(
            ServeConfig(max_batch=16, max_wait_ms=0.0),
            engine=engine,
            clock=clock,
            start=False,
        )
        easy = np.diag(np.arange(1.0, 5.0))  # converges in one sweep
        hard = rng.standard_normal((4, 4))
        f_hard = server.submit(hard, priority=0)  # id 0
        f_easy1 = server.submit(easy, priority=5)  # id 1 -> position 0
        f_easy2 = server.submit(easy, priority=5)  # id 2 -> position 1
        # id 0 dispatches at position 2: id != position.
        assert server.poll() == 1
        assert np.isfinite(f_easy1.result(timeout=0).S).all()
        assert np.isfinite(f_easy2.result(timeout=0).S).all()
        with pytest.raises(ConvergenceError) as info:
            f_hard.result(timeout=0)
        assert info.value.batch_indices == (0,)
        assert "request 0" in str(info.value)
        stats = server.stats()
        assert stats.failed == 1
        assert stats.completed == 2
        assert stats.quarantined == 1

    def test_healthy_neighbors_stay_bit_identical(self, clock, rng):
        engine = BatchedJacobiEngine(
            svd_config=OneSidedConfig(max_sweeps=1)
        )
        server = SVDServer(
            ServeConfig(max_batch=16, max_wait_ms=0.0),
            engine=engine,
            clock=clock,
            start=False,
        )
        easy = np.diag(np.arange(1.0, 5.0))
        hard = rng.standard_normal((4, 4))
        f_easy = server.submit(easy)
        server.submit(hard)
        server.poll()
        reference = BatchedJacobiEngine(
            svd_config=OneSidedConfig(max_sweeps=1)
        ).svd_batch([easy])[0]
        got = f_easy.result(timeout=0)
        assert np.array_equal(got.S, reference.S)


class TestLifecycle:
    def test_drain_resolves_everything(self, rng):
        with SVDServer(ServeConfig(max_batch=8, max_wait_ms=1.0)) as server:
            futures = [
                server.submit(rng.standard_normal((8, 4)))
                for _ in range(5)
            ]
            server.drain()
            assert all(f.done() for f in futures)
        assert server.stats().completed == 5

    def test_close_without_drain_fails_queued_futures(self, clock, rng):
        server = manual_server(clock, max_batch=16, max_wait_ms=1e6)
        future = server.submit(rng.standard_normal((8, 4)))
        server.close(drain=False)
        with pytest.raises(ServerClosed):
            future.result(timeout=0)
        stats = server.stats()
        assert stats.failed == 1
        assert stats.pending == 0
        assert stats.inflight == 0

    def test_close_is_idempotent(self, clock):
        server = manual_server(clock)
        server.close()
        server.close()

    def test_background_thread_end_to_end(self, rng):
        # The one test that exercises the real dispatch thread + real
        # clock: submit from the caller, block on the future.
        with SVDServer(ServeConfig(max_batch=4, max_wait_ms=0.5)) as server:
            client = SVDClient(server)
            result = client.solve(rng.standard_normal((8, 4)))
        assert result.S.shape == (4,)

    def test_client_solve_batch_fuses(self, rng):
        mats = [rng.standard_normal((8, 4)) for _ in range(8)]
        with SVDServer(ServeConfig(max_batch=8, max_wait_ms=5.0)) as server:
            results = SVDClient(server).solve_batch(mats)
            stats = server.stats()
        assert len(results) == 8
        assert stats.completed == 8
        # All eight shared one bucket; they fused rather than going
        # one-at-a-time (at most a few batches, not eight).
        assert stats.batches < 8


class TestWCycleDispatch:
    def test_wcycle_engine_duck_types(self, clock, rng):
        from repro import WCycleSVD

        mats = [rng.standard_normal((16, 8)) for _ in range(3)]
        with WCycleSVD(device="V100") as wcycle:
            server = SVDServer(
                ServeConfig(max_batch=8, max_wait_ms=0.0),
                engine=wcycle,
                clock=clock,
                start=False,
            )
            futures = [server.submit(a) for a in mats]
            while server.pending:
                server.poll()
            served = [f.result(timeout=0) for f in futures]
            reference = wcycle.decompose_batch(mats)
        for got, want in zip(served, reference):
            assert np.array_equal(got.S, want.S)
