"""Batched GEMM kernel and tailoring segment planning (paper §IV-D1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim import V100, Profiler
from repro.gpusim.gemm import (
    BatchedGemm,
    GemmTask,
    TilingSpec,
    gram_traffic_bytes,
    plan_segments,
    update_traffic_bytes,
)


class TestPlanSegments:
    def test_exact_division(self):
        blocks, rows = plan_segments([256, 256], 64)
        assert blocks == 8
        assert rows == [64] * 8

    def test_residual_packing(self):
        # Residuals accumulate until they exceed 1.2 * delta.
        blocks, rows = plan_segments([70, 70, 70], 64)
        # Each contributes one full plate + 6 residual rows; residuals sum
        # to 18 < 76.8 so they share one block.
        assert blocks == 4
        assert rows == [64, 64, 64, 18]

    def test_residual_overflow_starts_new_block(self):
        # 50-row residuals: 50, 100 (> 1.2*64 = 76.8 after the second).
        blocks, rows = plan_segments([50, 50, 50], 64)
        assert sum(rows) == 150
        assert all(r <= 150 for r in rows)
        assert blocks == 2

    def test_delta_larger_than_matrix(self):
        blocks, rows = plan_segments([40], 64)
        assert blocks == 1
        assert rows == [40]

    def test_rejects_bad_delta(self):
        with pytest.raises(ConfigurationError):
            plan_segments([10], 0)

    def test_rejects_bad_height(self):
        with pytest.raises(ConfigurationError):
            plan_segments([0], 8)

    def test_rows_conserved(self):
        for delta in (8, 32, 100):
            heights = [100, 37, 256, 19]
            _, rows = plan_segments(heights, delta)
            assert sum(rows) == sum(heights)


class TestTrafficModels:
    def test_single_segment_gram(self):
        task = GemmTask(m=64, k=16)
        bytes_ = gram_traffic_bytes(task, 1)
        assert bytes_ == 8 * (64 * 16 + 16 * 16)

    def test_tailored_gram_costs_more_traffic(self):
        """Smaller plates raise TLP but pay partial-sum traffic (Eq. 9)."""
        task = GemmTask(m=256, k=32)
        assert gram_traffic_bytes(task, 4) > gram_traffic_bytes(task, 1)

    def test_update_traffic_scales_with_segments(self):
        task = GemmTask(m=256, k=32)
        assert update_traffic_bytes(task, 8) > update_traffic_bytes(task, 1)

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            GemmTask(m=0, k=4)


class TestTilingSpec:
    def test_valid(self):
        TilingSpec(delta=64, width=32, threads=256)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta": 0, "width": 32},
            {"delta": 64, "width": 0},
            {"delta": 64, "width": 32, "threads": 16},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TilingSpec(**kwargs)


class TestBatchedGemmMath:
    def _gemm(self, delta=64):
        return BatchedGemm(V100, TilingSpec(delta=delta, width=16))

    def test_gram_products_correct(self, rng):
        panels = [rng.standard_normal((40, 8)) for _ in range(3)]
        grams, stats = self._gemm().gram(panels)
        for p, B in zip(panels, grams):
            np.testing.assert_allclose(B, p.T @ p, atol=1e-12)
            np.testing.assert_array_equal(B, B.T)
        assert stats.kernel == "batched_gemm_gram"

    def test_update_products_correct(self, rng):
        panels = [rng.standard_normal((40, 8)) for _ in range(3)]
        rotations = [np.linalg.qr(rng.standard_normal((8, 8)))[0] for _ in range(3)]
        updated, stats = self._gemm().update(panels, rotations)
        for p, J, out in zip(panels, rotations, updated):
            np.testing.assert_allclose(out, p @ J, atol=1e-12)
        assert stats.kernel == "batched_gemm_update"

    def test_update_length_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            self._gemm().update([rng.standard_normal((4, 2))], [])

    def test_profiler_integration(self, rng):
        profiler = Profiler()
        panels = [rng.standard_normal((16, 4))]
        self._gemm().gram(panels, profiler=profiler)
        self._gemm().update(panels, [np.eye(4)], profiler=profiler)
        assert profiler.report.launch_count == 2


class TestBatchedGemmCosts:
    def test_flops_counted(self):
        gemm = BatchedGemm(V100, TilingSpec(delta=256, width=32))
        stats = gemm.simulate_gram([GemmTask(256, 32)] * 10)
        assert stats.flops == pytest.approx(10 * 2 * 256 * 32 * 32)

    def test_smaller_delta_more_blocks(self):
        tasks = [GemmTask(256, 32)] * 10
        wide = BatchedGemm(V100, TilingSpec(delta=256, width=32))
        narrow = BatchedGemm(V100, TilingSpec(delta=32, width=32))
        assert (
            narrow.simulate_gram(tasks).blocks
            > wide.simulate_gram(tasks).blocks
        )

    def test_tailoring_raises_small_batch_occupancy(self):
        """The point of the strategy (paper Challenge 2)."""
        tasks = [GemmTask(512, 48)] * 4
        wide = BatchedGemm(V100, TilingSpec(delta=512, width=48))
        narrow = BatchedGemm(V100, TilingSpec(delta=64, width=48))
        assert (
            narrow.simulate_gram(tasks).occupancy
            > wide.simulate_gram(tasks).occupancy
        )

    def test_rejects_empty(self):
        gemm = BatchedGemm(V100, TilingSpec(delta=8, width=8))
        with pytest.raises(ConfigurationError):
            gemm.simulate_gram([])

    def test_tensor_core_flag_set(self):
        # GEMM launches are eligible for tensor cores; verify via A100 time.
        from repro.gpusim import A100

        tasks = [GemmTask(256, 32)] * 200
        t_v = BatchedGemm(V100, TilingSpec(delta=64, width=32)).simulate_gram(tasks)
        t_a = BatchedGemm(A100, TilingSpec(delta=64, width=32)).simulate_gram(tasks)
        assert t_a.time < t_v.time
