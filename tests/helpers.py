"""Shared assertion helpers."""

from __future__ import annotations

import numpy as np


def assert_valid_svd(A: np.ndarray, result, tol: float = 1e-10) -> None:
    """Assert U/S/V form a correct thin SVD of A."""
    m, n = A.shape
    r = min(m, n)
    assert result.U.shape == (m, r)
    assert result.S.shape == (r,)
    assert result.V.shape == (n, r)
    # Descending non-negative singular values.
    assert (result.S >= 0).all()
    assert (np.diff(result.S) <= 1e-12 * (result.S[0] + 1)).all()
    # Orthonormal factors.
    assert np.abs(result.U.T @ result.U - np.eye(r)).max() < 1e-10
    assert np.abs(result.V.T @ result.V - np.eye(r)).max() < 1e-10
    # Reconstruction and agreement with LAPACK.
    assert result.reconstruction_error(A) < tol
    ref = np.linalg.svd(A, compute_uv=False)
    scale = max(1.0, float(ref[0]))
    assert np.abs(result.S - ref).max() < 1e-8 * scale
