"""Simulated batched EVD kernel (paper §IV-C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ResourceError
from repro.gpusim import V100, Profiler
from repro.gpusim.evd_kernel import (
    BatchedEVDKernel,
    SMEVDKernelConfig,
    evd_sweep_cost,
)


def _sym_batch(rng, k, count):
    out = []
    for _ in range(count):
        M = rng.standard_normal((k, k))
        out.append((M + M.T) / 2.0)
    return out


class TestRun:
    @pytest.mark.parametrize("parallel", [True, False])
    def test_results_correct(self, rng, parallel):
        batch = _sym_batch(rng, 10, 4)
        kernel = BatchedEVDKernel(
            V100, SMEVDKernelConfig(parallel_update=parallel)
        )
        results, stats = kernel.run(batch)
        for B, res in zip(batch, results):
            np.testing.assert_allclose(
                res.L, np.sort(np.linalg.eigvalsh(B))[::-1], atol=1e-9
            )
        assert stats.blocks == 4

    def test_kernel_name_reflects_variant(self):
        par = BatchedEVDKernel(V100)
        seq = BatchedEVDKernel(V100, SMEVDKernelConfig(parallel_update=False))
        assert par.name.endswith("parallel")
        assert seq.name.endswith("sequential")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            BatchedEVDKernel(V100).run([])

    def test_rejects_oversized(self, rng):
        with pytest.raises(ResourceError):
            BatchedEVDKernel(V100).run(_sym_batch(rng, 64, 1))

    def test_boundary_size_fits(self, rng):
        """k = 48 (w = 24) is the largest EVD the paper fits in 48 KB."""
        batch = _sym_batch(rng, 48, 1)
        results, _ = BatchedEVDKernel(V100).run(batch)
        assert results[0].reconstruction_error(batch[0]) < 1e-10

    def test_profiler_records(self, rng):
        profiler = Profiler()
        BatchedEVDKernel(V100).run(_sym_batch(rng, 8, 2), profiler=profiler)
        assert profiler.report.launch_count == 1


class TestEstimate:
    def test_parallel_faster_than_sequential(self):
        """Paper Fig. 10(b): the parallel update wins by a wide margin."""
        sizes = [32] * 100
        par = BatchedEVDKernel(V100).estimate(sizes)
        seq = BatchedEVDKernel(
            V100, SMEVDKernelConfig(parallel_update=False)
        ).estimate(sizes)
        assert seq.time > 3.0 * par.time

    def test_scales_with_size(self):
        kernel = BatchedEVDKernel(V100)
        t16 = kernel.estimate([16] * 10).time
        t48 = kernel.estimate([48] * 10).time
        assert t48 > t16

    def test_threads_autosized(self):
        cfg = SMEVDKernelConfig()
        assert cfg.resolve_threads(48, 1024) == 576
        assert cfg.resolve_threads(8, 1024) == 64
        assert cfg.resolve_threads(200, 1024) == 1024

    def test_threads_override(self):
        cfg = SMEVDKernelConfig(threads_per_block=256)
        assert cfg.resolve_threads(48, 1024) == 256

    def test_rejects_tiny_thread_override(self):
        with pytest.raises(ConfigurationError):
            SMEVDKernelConfig(threads_per_block=16)


class TestSweepCost:
    def test_parallel_cost_formula(self):
        flops, gm = evd_sweep_cost(4, parallel=True)
        # 3 steps x (9 * 16 elements + 6 * 4 * 2 J-columns).
        assert flops == pytest.approx(3 * (9 * 16 + 6 * 4 * 2))
        assert gm == 0.0

    def test_sequential_cost_formula(self):
        flops, _ = evd_sweep_cost(4, parallel=False)
        assert flops == pytest.approx(6 * (8 * 4 + 6 * 4))

    def test_trivial_size(self):
        flops, _ = evd_sweep_cost(1, parallel=True)
        assert flops > 0
