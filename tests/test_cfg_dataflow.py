"""Unit tests for the flow-sensitive engine: CFG lowering + dataflow.

These pin the graph shapes and propagation semantics the SHM03 / LOCK01 /
FORK01 rules rely on: branch joins, loop fixpoints, ``finally`` inlining
on both exit kinds, ``with`` enter/exit bracketing, ``while True`` exit
pruning, catch-all handler dispatch, and the exception-edge pre/post
state conventions.
"""

from __future__ import annotations

import ast

import pytest

from repro.analysis.cfg import (
    WithEnter,
    WithExit,
    build_cfg,
    function_cfgs,
    instr_exprs,
)
from repro.analysis.dataflow import Analysis, Env, Solution, solve


def _cfg(source: str):
    """CFG of the first function in ``source``."""
    tree = ast.parse(source)
    fn = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


class _Binds(Analysis):
    """Toy may-analysis: ``v:x -> {L<lineno>}`` for each ``x = ...``."""

    def transfer(self, instr, state):
        if isinstance(instr, ast.Assign):
            for target in instr.targets:
                if isinstance(target, ast.Name):
                    state = state.set(
                        f"v:{target.id}", frozenset({f"L{instr.lineno}"})
                    )
        return state


def _solve(source: str) -> Solution:
    return solve(_cfg(source), _Binds())


class TestEnv:
    def test_set_is_strong_update(self):
        env = Env().set("k", frozenset({"a"})).set("k", frozenset({"b"}))
        assert env["k"] == frozenset({"b"})

    def test_set_empty_deletes(self):
        env = Env({"k": frozenset({"a"})}).set("k", frozenset())
        assert "k" not in env

    def test_add_is_weak_update(self):
        env = Env().add("k", "a").add("k", "b")
        assert env["k"] == frozenset({"a", "b"})

    def test_join_is_pointwise_union(self):
        a = Env({"k": frozenset({"x"}), "only-a": frozenset({"1"})})
        b = Env({"k": frozenset({"y"})})
        joined = a.join(b)
        assert joined["k"] == frozenset({"x", "y"})
        assert joined["only-a"] == frozenset({"1"})

    def test_map_values_drops_emptied_keys(self):
        env = Env({"keep": frozenset({"a"}), "drop": frozenset({"b"})})
        out = env.map_values(
            lambda k, v: v if k == "keep" else frozenset()
        )
        assert dict(out) == {"keep": frozenset({"a"})}

    def test_value_equality_and_hash(self):
        a = Env({"k": frozenset({"t"})})
        b = Env().add("k", "t")
        assert a == b
        assert hash(a) == hash(b)

    def test_updates_are_persistent(self):
        base = Env({"k": frozenset({"a"})})
        base.add("k", "b")
        assert base["k"] == frozenset({"a"})


class TestCfgShapes:
    def test_branch_rejoins_at_endif(self):
        sol = _solve(
            "def f(c):\n"
            "    if c:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            "    return x\n"
        )
        # The may-join sees both branch bindings.
        assert sol.exit_state().get("v:x") == frozenset({"L3", "L5"})

    def test_branch_without_else_keeps_fallthrough(self):
        sol = _solve(
            "def f(c):\n"
            "    x = 0\n"
            "    if c:\n"
            "        x = 1\n"
            "    return x\n"
        )
        assert sol.exit_state().get("v:x") == frozenset({"L2", "L4"})

    def test_loop_reaches_fixpoint(self):
        sol = _solve(
            "def f(xs):\n"
            "    x = 0\n"
            "    for i in xs:\n"
            "        x = 1\n"
            "    return x\n"
        )
        assert sol.exit_state().get("v:x") == frozenset({"L2", "L4"})

    def test_while_true_has_no_fallthrough_exit(self):
        cfg = _cfg(
            "def f(q):\n"
            "    while True:\n"
            "        x = q.get()\n"
        )
        sol = solve(cfg, _Binds())
        # The only way out of ``while True`` is break/return/raise; with
        # none present, the normal exit is never reached.
        assert cfg.exit.id not in sol.block_in
        assert sol.exit_state() == Env()

    def test_break_escapes_while_true(self):
        sol = _solve(
            "def f(q):\n"
            "    while True:\n"
            "        x = q.get()\n"
            "        if x:\n"
            "            break\n"
            "    return x\n"
        )
        assert sol.exit_state().get("v:x") == frozenset({"L3"})

    def test_return_value_flows_only_to_exit(self):
        cfg = _cfg(
            "def f():\n"
            "    raise ValueError(1)\n"
        )
        sol = solve(cfg, _Binds())
        assert cfg.exit.id not in sol.block_in
        assert cfg.raise_exit.id in sol.block_in

    def test_dead_code_is_lowered_but_unlinked(self):
        cfg = _cfg(
            "def f():\n"
            "    return 1\n"
            "    x = 2\n"
        )
        sol = solve(cfg, _Binds())
        dead = [b for b in cfg.blocks if b.label == "unreachable"]
        assert dead, "dead statements should still get blocks"
        assert all(b.id not in sol.block_in for b in dead)
        assert sol.exit_state() == Env()


class TestExceptionEdges:
    def test_exception_edge_carries_pre_state(self):
        sol = _solve(
            "def f():\n"
            "    x = 1\n"
            "    y = work()\n"
        )
        # ``y = work()`` raising never bound y; x was already bound on
        # some raising path.
        raised = sol.raise_state()
        assert raised.get("v:x") == frozenset({"L2"})
        assert "v:y" not in raised

    def test_exception_state_override_survives_unwind(self):
        class Releases(_Binds):
            def exception_state(self, instr, pre, post):
                return post  # the effect survives even if it raises

        sol = solve(
            _cfg("def f():\n    x = 1\n"), Releases()
        )
        assert sol.raise_state().get("v:x") == frozenset({"L2"})

    def test_finally_runs_on_both_exit_kinds(self):
        sol = _solve(
            "def f():\n"
            "    try:\n"
            "        x = work()\n"
            "    finally:\n"
            "        y = cleanup()\n"
            "    return x\n"
        )
        assert sol.exit_state().get("v:y") == frozenset({"L5"})
        assert sol.raise_state().get("v:y") == frozenset({"L5"})

    def test_catch_all_handler_kills_the_unmatched_edge(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        x = work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        sol = solve(cfg, _Binds())
        assert cfg.raise_exit.id not in sol.block_in

    def test_narrow_handler_keeps_the_unmatched_edge(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        x = work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        sol = solve(cfg, _Binds())
        assert cfg.raise_exit.id in sol.block_in

    def test_catch_all_inside_tuple_counts(self):
        cfg = _cfg(
            "def f():\n"
            "    try:\n"
            "        x = work()\n"
            "    except (ValueError, BaseException):\n"
            "        pass\n"
        )
        sol = solve(cfg, _Binds())
        assert cfg.raise_exit.id not in sol.block_in

    def test_handler_binding_is_exempt_from_raising(self):
        assert not Analysis().can_raise(
            ast.ExceptHandler(type=None, name="e", body=[])
        )

    def test_with_markers_are_exempt_from_raising(self):
        cfg = _cfg("def f(lk):\n    with lk:\n        pass\n")
        markers = [
            i
            for b in cfg.blocks
            for i in b.instrs
            if isinstance(i, (WithEnter, WithExit))
        ]
        assert markers
        assert not any(Analysis().can_raise(m) for m in markers)


class TestWithLowering:
    def test_with_brackets_body_with_enter_and_exits(self):
        cfg = _cfg(
            "def f(lk):\n"
            "    with lk:\n"
            "        x = 1\n"
        )
        enters = sum(
            isinstance(i, WithEnter) for b in cfg.blocks for i in b.instrs
        )
        exits = sum(
            isinstance(i, WithExit) for b in cfg.blocks for i in b.instrs
        )
        assert enters == 1
        # One __exit__ on the normal path, one on the exceptional unwind.
        assert exits == 2

    def test_early_return_crosses_the_exit(self):
        cfg = _cfg(
            "def f(lk):\n"
            "    with lk:\n"
            "        return 1\n"
        )
        # The return is routed through a with-exit copy before reaching
        # the function exit.
        exit_preds = [
            b
            for b in cfg.blocks
            if cfg.exit in b.succ
            and any(isinstance(i, WithExit) for i in b.instrs)
        ]
        assert exit_preds


class TestInstrExprs:
    def test_for_head_yields_only_the_iterable(self):
        stmt = ast.parse("for i in items:\n    body()\n").body[0]
        assert list(instr_exprs(stmt)) == [stmt.iter]

    def test_if_head_yields_only_the_test(self):
        stmt = ast.parse("if cond():\n    body()\n").body[0]
        assert list(instr_exprs(stmt)) == [stmt.test]

    def test_try_head_yields_nothing(self):
        stmt = ast.parse(
            "try:\n    body()\nexcept Exception:\n    pass\n"
        ).body[0]
        assert list(instr_exprs(stmt)) == []

    def test_nested_def_is_opaque(self):
        stmt = ast.parse("def g():\n    return body()\n").body[0]
        assert list(instr_exprs(stmt)) == []

    def test_with_markers_yield_the_context_expr(self):
        cfg = _cfg("def f(lk):\n    with lk:\n        pass\n")
        enter = next(
            i
            for b in cfg.blocks
            for i in b.instrs
            if isinstance(i, WithEnter)
        )
        assert list(instr_exprs(enter)) == [enter.item.context_expr]

    def test_plain_statement_yields_itself(self):
        stmt = ast.parse("x = f()\n").body[0]
        assert list(instr_exprs(stmt)) == [stmt]


class TestSolver:
    def test_replay_yields_final_pre_post_states(self):
        cfg = _cfg("def f():\n    x = 1\n    y = 2\n")
        sol = solve(cfg, _Binds())
        body = next(b for b in cfg.blocks if b.label == "entry")
        steps = list(sol.replay(body))
        assert len(steps) == 2
        (_, pre0, post0), (_, pre1, post1) = steps
        assert "v:x" not in pre0 and post0.get("v:x")
        assert pre1 == post0 and post1.get("v:y")

    def test_divergence_backstop_raises(self):
        class Unbounded(Analysis):
            def transfer(self, instr, state):
                return state.add("k", f"t{len(state.get('k'))}")

        cfg = _cfg("def f(c):\n    while c:\n        x = 1\n")
        with pytest.raises(RuntimeError, match="did not converge"):
            solve(cfg, Unbounded(), max_iterations=50)

    def test_function_cfgs_covers_nested_defs(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        )
        names = sorted(c.fn.name for c in function_cfgs(tree))
        assert names == ["inner", "outer"]
