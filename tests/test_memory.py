"""Shared-memory residency accounting (paper Observations 1-2)."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim import (
    V100,
    evd_fits_in_sm,
    evd_shared_bytes,
    max_width_for_evd,
    max_width_for_svd,
    svd_fits_in_sm,
    svd_shared_bytes,
)


class TestSvdBytes:
    def test_formula(self):
        # matrix + two length-n caches, in doubles.
        assert svd_shared_bytes(10, 4) == 8 * (40 + 8)

    def test_orientation_invariant(self):
        # The kernel factors the taller orientation; footprint follows.
        assert svd_shared_bytes(4, 10) == svd_shared_bytes(10, 4)

    def test_rejects_bad_dims(self):
        with pytest.raises(ConfigurationError):
            svd_shared_bytes(0, 4)


class TestEvdBytes:
    def test_formula(self):
        # B and J plus two small vectors.
        assert evd_shared_bytes(4) == 8 * (2 * 16 + 8)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            evd_shared_bytes(0)


class TestResidencyChecks:
    def test_observation2_pair_fits(self):
        """The 32 x 1024 example: a 32 x 96 joined pair is SVD-able in SM."""
        assert svd_fits_in_sm(32, 96, V100)

    def test_observation2_evd_width_limit(self):
        """w = 24 (k = 48) fits in 48 KB; w = 32 (k = 64) does not."""
        assert evd_fits_in_sm(48, V100)
        assert not evd_fits_in_sm(64, V100)

    def test_big_matrix_does_not_fit(self):
        assert not svd_fits_in_sm(512, 512, V100)

    def test_small_matrix_fits(self):
        assert svd_fits_in_sm(32, 32, V100)


class TestMaxWidths:
    def test_evd_width_near_paper_value(self):
        """The paper reports 24; the unpadded model admits slightly more.

        The candidate-table quantization {48, 24, 16, 8} makes 24 the
        effective limit either way.
        """
        w = max_width_for_evd(V100)
        assert 24 <= w <= 28

    def test_svd_width_tall_matrix(self):
        # 512-tall pairs: only a handful of columns fit.
        w = max_width_for_svd(512, V100)
        assert 1 <= w <= 6
        assert svd_fits_in_sm(512, 2 * w, V100)
        assert not svd_fits_in_sm(512, 2 * (w + 1), V100)

    def test_svd_width_short_matrix(self):
        # 32-tall pairs admit very wide blocks (Observation 2).
        assert max_width_for_svd(32, V100) >= 48

    def test_zero_when_nothing_fits(self):
        assert max_width_for_svd(100_000, V100) == 0
