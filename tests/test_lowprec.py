"""Low-precision W-cycle planner (§V-E future work)."""

import pytest

from repro.core import LowPrecisionPlanner
from repro.errors import ConfigurationError
from repro.gpusim import FP64


class TestPlanner:
    @pytest.fixture
    def planner(self):
        return LowPrecisionPlanner("A100")

    def test_fp64_is_the_reference(self, planner):
        plan = planner.plan(1024, 1024, "fp64")
        assert plan.precision is FP64
        assert plan.relative_sweep_cost == pytest.approx(1.0)

    def test_lower_precision_widens_blocks(self, planner):
        plans = {p.precision.name: p for p in planner.compare(1024, 1024)}
        assert plans["fp64"].max_width < plans["fp32"].max_width
        assert plans["fp32"].max_width < plans["bf16"].max_width

    def test_lower_precision_cheaper_sweeps(self, planner):
        plans = {p.precision.name: p for p in planner.compare(1024, 1024)}
        assert plans["fp32"].relative_sweep_cost < 1.0
        assert plans["bf16"].relative_sweep_cost < 1.0

    def test_accuracy_floor_reported(self, planner):
        plans = planner.compare(512, 512)
        floors = [p.accuracy_floor for p in plans]
        assert floors == sorted(floors)

    def test_width_schedule_uses_precision_cap(self, planner):
        """The level schedule must terminate against the precision's own
        EVD capacity, not FP64's."""
        plan = planner.plan(2048, 2048, "fp32")
        from repro.gpusim import V100, max_width_for_evd

        cap = max_width_for_evd(planner.device, element_bytes=4)
        assert plan.widths[-1] <= cap

    def test_small_matrix_clamps_width(self, planner):
        plan = planner.plan(16, 16, "bf16")
        assert plan.max_width <= 8

    def test_rejects_tiny_matrix(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan(1, 8, "fp32")

    def test_no_tensor_cores_uses_vector_rate(self):
        """On V100 (no DP tensor cores) the GEMM gain is the vector rate."""
        v100 = LowPrecisionPlanner("V100").plan(1024, 1024, "bf16")
        a100 = LowPrecisionPlanner("A100").plan(1024, 1024, "bf16")
        assert a100.relative_sweep_cost < v100.relative_sweep_cost
