"""The replica cluster: routing, health machine, draining, failover.

Deterministic tests drive a non-started cluster (``start=False``) with
an injected fake clock — replica servers dispatch on
:meth:`SVDCluster.poll`, health probes run on
:meth:`SVDCluster.poll_health`, and probation timing is a pure function
of the clock. Router-level unit tests swap real servers for a
hand-driven fake via ``server_factory``, so inner futures resolve and
fail exactly when the test says so.
"""

import concurrent.futures

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    ReplicaDeadError,
    ServerClosed,
    ServerOverloaded,
    WorkerCrashError,
)
from repro.jacobi.batched import BatchedJacobiEngine
from repro.jacobi.onesided_vector import OneSidedConfig
from repro.runtime.executor import get_executor
from repro.serve import (
    ClusterConfig,
    LoadSpec,
    ServeConfig,
    SVDClient,
    SVDCluster,
    SVDServer,
    run_closed_loop,
)
from repro.serve.cluster import _HashRing


class FakeClock:
    """Injected monotonic clock: advances only when told to."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def manual_cluster(clock, *, replicas=2, serve=None, **knobs):
    """A non-started cluster of real serial-backend replicas."""
    config = ClusterConfig(
        replicas=replicas,
        serve=serve or ServeConfig(max_batch=8, max_wait_ms=0.0),
        **knobs,
    )
    return SVDCluster(config, runtime="serial", clock=clock, start=False)


class FakeReplicaServer:
    """Hand-driven stand-in for one replica's ``SVDServer``.

    ``submit`` parks a plain future the test resolves or fails itself,
    so router behavior — callbacks, epochs, failover — is exercised
    without any engine in the loop. ``alive`` scripts the health probe.
    """

    def __init__(self):
        self.alive = True
        self.submitted = []
        self.futures = []
        self.closed = False
        self.drained = False

    def submit(self, matrix, *, priority=0, deadline_ms=None):
        fut = concurrent.futures.Future()
        self.submitted.append(matrix)
        self.futures.append(fut)
        return fut

    def ping(self):
        return self.alive and not self.closed

    def drain(self):
        self.drained = True

    def close(self, *, drain=True):
        self.closed = True

    def stats(self):
        return None

    def reset_stats(self):
        pass

    @property
    def pending(self):
        return 0


def fake_cluster(clock, *, replicas=2, **knobs):
    """A manual cluster whose replicas are :class:`FakeReplicaServer`."""
    fakes = {}

    def factory(name, clk, start):
        fake = FakeReplicaServer()
        fakes[name] = fake
        return fake

    config = ClusterConfig(replicas=replicas, **knobs)
    cluster = SVDCluster(
        config, server_factory=factory, clock=clock, start=False
    )
    return cluster, fakes


class TestConfig:
    def test_rejects_bad_knobs(self):
        for bad in (
            dict(replicas=0),
            dict(virtual_nodes=0),
            dict(tie_candidates=0),
            dict(probe_interval_ms=0),
            dict(fail_degraded=0),
            dict(fail_dead=1, fail_degraded=2),
            dict(probation_ms=-1),
            dict(probation_successes=0),
            dict(max_failovers=-1),
        ):
            with pytest.raises(ConfigurationError):
                ClusterConfig(**bad)

    def test_live_executor_rejected_as_runtime(self, clock):
        executor = get_executor("serial")
        try:
            with pytest.raises(ConfigurationError):
                SVDCluster(runtime=executor, clock=clock, start=False)
        finally:
            executor.close()


class TestRing:
    def test_candidates_cover_all_replicas_deterministically(self):
        ring = _HashRing(["a", "b", "c"], virtual_nodes=8)
        first = ring.candidates((16, 8))
        assert sorted(first) == ["a", "b", "c"]
        assert ring.candidates((16, 8)) == first

    def test_different_shapes_spread_over_the_ring(self):
        ring = _HashRing([f"r{i}" for i in range(4)], virtual_nodes=16)
        homes = {
            ring.candidates((m, n))[0]
            for m, n in [(8, 4), (16, 8), (24, 12), (32, 16), (48, 24),
                         (64, 32), (10, 10), (20, 20)]
        }
        assert len(homes) > 1


class TestRouting:
    def test_same_shape_concentrates_and_ties_break_by_load(self, clock):
        cluster = manual_cluster(clock, replicas=3, tie_candidates=2)
        try:
            for _ in range(6):
                cluster.submit(np.eye(6, 4))
            routed = {
                r.name: r.routed for r in cluster.stats().replicas
            }
            # One shape bucket: traffic alternates between the bucket's
            # two tie candidates (least-loaded), never the third.
            assert sorted(routed.values()) == [0, 3, 3]
        finally:
            cluster.close()

    def test_validation_fails_in_the_caller(self, clock):
        cluster = manual_cluster(clock)
        try:
            with pytest.raises(Exception):
                cluster.submit(np.zeros(5))  # 1-D
            with pytest.raises(ConfigurationError):
                cluster.submit(np.eye(4), deadline_ms=0)
        finally:
            cluster.close()

    def test_overload_spills_to_other_replicas_then_rejects(self, clock):
        cluster = manual_cluster(
            clock,
            replicas=2,
            tie_candidates=1,
            serve=ServeConfig(max_batch=8, max_wait_ms=0.0, max_pending=1),
        )
        try:
            cluster.submit(np.eye(6, 4))
            cluster.submit(np.eye(6, 4))  # home full -> spills
            assert cluster.router.overload_reroutes == 1
            with pytest.raises(ServerOverloaded) as info:
                cluster.submit(np.eye(6, 4))  # both full
            assert len(info.value.replicas) == 2
            assert info.value.capacity == 2
            assert cluster.stats().router.rejected == 1
            # Resolve the backlog so close() doesn't have to.
            cluster.poll()
        finally:
            cluster.close()

    def test_submit_after_close_raises(self, clock):
        cluster = manual_cluster(clock)
        cluster.close()
        with pytest.raises(ServerClosed):
            cluster.submit(np.eye(4))

    def test_no_live_replicas_raises_replica_dead(self, clock):
        cluster, fakes = fake_cluster(clock, replicas=2, revive=False)
        try:
            cluster.manager.kill("replica-0")
            cluster.manager.kill("replica-1")
            with pytest.raises(ReplicaDeadError):
                cluster.submit(np.eye(4))
        finally:
            cluster.close()


class TestHealthMachine:
    def test_probe_failures_walk_healthy_degraded_dead(self, clock):
        cluster, fakes = fake_cluster(
            clock, replicas=2, fail_degraded=1, fail_dead=3, revive=False
        )
        try:
            victim = fakes["replica-0"]
            victim.alive = False
            assert cluster.poll_health()["replica-0"] == "degraded"
            assert cluster.poll_health()["replica-0"] == "degraded"
            assert cluster.poll_health()["replica-0"] == "dead"
            assert cluster.replica_states()["replica-1"] == "healthy"
        finally:
            cluster.close()

    def test_flaky_probe_resets_the_breaker(self, clock):
        cluster, fakes = fake_cluster(
            clock, replicas=1, fail_degraded=2, fail_dead=3, revive=False
        )
        try:
            flaky = fakes["replica-0"]
            flaky.alive = False
            cluster.poll_health()
            flaky.alive = True
            cluster.poll_health()  # success wipes the failure streak
            flaky.alive = False
            cluster.poll_health()
            cluster.poll_health()
            # Two fresh failures: degraded, not dead.
            assert cluster.replica_states()["replica-0"] == "degraded"
        finally:
            cluster.close()

    def test_degraded_replica_takes_traffic_only_as_last_resort(
        self, clock
    ):
        cluster, fakes = fake_cluster(
            clock, replicas=2, fail_degraded=1, fail_dead=5, revive=False
        )
        try:
            fakes["replica-0"].alive = False
            cluster.poll_health()
            assert cluster.replica_states()["replica-0"] == "degraded"
            for _ in range(4):
                cluster.submit(np.eye(6, 4))
            routed = {r.name: r.routed for r in cluster.stats().replicas}
            assert routed["replica-0"] == 0
            assert routed["replica-1"] == 4
        finally:
            cluster.close()

    def test_probation_readmits_then_promotes(self, clock):
        cluster, fakes = fake_cluster(
            clock,
            replicas=2,
            fail_dead=1,
            probation_ms=100.0,
            probation_successes=2,
        )
        try:
            fakes["replica-0"].alive = False
            assert cluster.poll_health()["replica-0"] == "dead"
            clock.advance(0.05)
            assert cluster.poll_health()["replica-0"] == "dead"
            clock.advance(0.06)  # probation elapsed
            assert cluster.poll_health()["replica-0"] == "degraded"
            assert cluster.poll_health()["replica-0"] == "degraded"
            assert cluster.poll_health()["replica-0"] == "healthy"
            snap = cluster.stats()
            assert snap.revivals == 1
            revived = {r.name: r for r in snap.replicas}["replica-0"]
            assert revived.generation == 1
        finally:
            cluster.close()

    def test_revive_false_keeps_the_dead_dead(self, clock):
        cluster, fakes = fake_cluster(
            clock, replicas=2, fail_dead=1, probation_ms=0.0, revive=False
        )
        try:
            fakes["replica-0"].alive = False
            cluster.poll_health()
            clock.advance(10.0)
            assert cluster.poll_health()["replica-0"] == "dead"
        finally:
            cluster.close()


class TestDraining:
    def test_drain_completes_inflight_then_retires(self, clock, rng):
        cluster = manual_cluster(clock, replicas=2, tie_candidates=1)
        try:
            mats = [rng.standard_normal((6, 4)) for _ in range(4)]
            futures = [cluster.submit(m) for m in mats]
            target = next(
                r.name
                for r in cluster.stats().replicas
                if r.inflight > 0
            )
            # drain() on a manual server resolves its queue inline; every
            # future the draining replica held must resolve.
            cluster.drain_replica(target)
            states = cluster.replica_states()
            assert states[target] == "retired"
            drained_results = 0
            for matrix, future in zip(mats, futures):
                if future.done():
                    reference = BatchedJacobiEngine().svd_batch([matrix])[0]
                    assert np.array_equal(
                        future.result(timeout=0).S, reference.S
                    )
                    drained_results += 1
            assert drained_results > 0
            # Zero rejections during/after the drain: traffic reroutes.
            after = cluster.submit(rng.standard_normal((6, 4)))
            cluster.poll()
            assert after.result(timeout=5) is not None
            assert cluster.stats().router.rejected == 0
            assert cluster.stats().drains == 1
        finally:
            cluster.close()

    def test_cannot_drain_the_last_routable_replica(self, clock):
        cluster = manual_cluster(clock, replicas=2)
        try:
            cluster.drain_replica("replica-0")
            with pytest.raises(ConfigurationError):
                cluster.drain_replica("replica-1")
        finally:
            cluster.close()

    def test_cannot_drain_a_dead_replica(self, clock):
        cluster, fakes = fake_cluster(clock, replicas=2, revive=False)
        try:
            cluster.manager.kill("replica-0")
            with pytest.raises(ConfigurationError):
                cluster.drain_replica("replica-0")
        finally:
            cluster.close()


class TestFailover:
    def test_kill_reroutes_and_results_stay_bit_identical(
        self, clock, rng
    ):
        cluster = manual_cluster(clock, replicas=3, tie_candidates=1)
        try:
            mats = [rng.standard_normal((6, 4)) for _ in range(4)]
            futures = [cluster.submit(m) for m in mats]
            victim = next(
                r.name
                for r in cluster.stats().replicas
                if r.inflight > 0
            )
            cluster.kill_replica(victim)
            cluster.poll()  # survivors dispatch the failed-over batch
            references = BatchedJacobiEngine().svd_batch(mats)
            for reference, future in zip(references, futures):
                got = future.result(timeout=10)
                assert np.array_equal(got.S, reference.S)
                assert np.array_equal(got.U, reference.U)
                assert np.array_equal(got.V, reference.V)
            snap = cluster.stats()
            assert snap.kills == 1
            assert snap.failovers == len(mats)
            assert snap.router.completed == len(mats)
            assert snap.router.failed == 0
        finally:
            cluster.close()

    def test_infra_failure_fails_over_convergence_does_not(self, clock):
        cluster, fakes = fake_cluster(
            clock, replicas=2, revive=False, fail_dead=5
        )
        try:
            f_infra = cluster.submit(np.eye(6, 4))
            f_conv = cluster.submit(np.eye(8, 2))
            by_matrix = {}
            for fake in fakes.values():
                for matrix, inner in zip(fake.submitted, fake.futures):
                    by_matrix[matrix.shape] = inner
            by_matrix[(6, 4)].set_exception(WorkerCrashError("boom"))
            by_matrix[(8, 2)].set_exception(
                ConvergenceError("did not converge")
            )
            # Convergence is deterministic: delivered, never retried.
            with pytest.raises(ConvergenceError):
                f_conv.result(timeout=0)
            # The crash failed over: a second inner submit exists and
            # the outer future is still open.
            assert not f_infra.done()
            assert cluster.router.failovers == 1
            retried = [
                fake for fake in fakes.values()
                if any(m.shape == (6, 4) for m in fake.submitted)
            ]
            total = sum(
                sum(1 for m in fake.submitted if m.shape == (6, 4))
                for fake in fakes.values()
            )
            assert total == 2 and retried
            # Resolve the retry; the outer future resolves exactly once.
            for fake in fakes.values():
                for matrix, inner in zip(fake.submitted, fake.futures):
                    if matrix.shape == (6, 4) and not inner.done():
                        inner.set_result("retried-result")
            assert f_infra.result(timeout=0) == "retried-result"
        finally:
            cluster.close()

    def test_failover_budget_exhausts_to_the_caller(self, clock):
        cluster, fakes = fake_cluster(
            clock, replicas=2, max_failovers=1, revive=False, fail_dead=9
        )
        try:
            future = cluster.submit(np.eye(6, 4))
            for _ in range(2):  # initial + one failover
                inner = next(
                    fut
                    for fake in fakes.values()
                    for fut in fake.futures
                    if not fut.done()
                )
                inner.set_exception(WorkerCrashError("boom"))
            with pytest.raises(WorkerCrashError):
                future.result(timeout=0)
            assert cluster.router.failovers == 1
        finally:
            cluster.close()

    def test_stale_completion_after_kill_is_discarded(self, clock):
        cluster, fakes = fake_cluster(clock, replicas=2, revive=False)
        try:
            future = cluster.submit(np.eye(6, 4))
            holder = next(
                name for name, fake in fakes.items() if fake.futures
            )
            zombie = fakes[holder].futures[0]
            cluster.manager.kill(holder)
            # The kill already failed the request over; now the dead
            # replica "finishes" its batch. Exactly-once means the late
            # result is discarded, not delivered.
            zombie.set_result("zombie-result")
            assert not future.done()
            survivor = next(
                fake for name, fake in fakes.items() if name != holder
            )
            survivor.futures[0].set_result("failover-result")
            assert future.result(timeout=0) == "failover-result"
        finally:
            cluster.close()

    def test_unconverged_request_on_a_real_cluster_names_its_id(
        self, clock, rng
    ):
        def factory(name, clk, start):
            return SVDServer(
                ServeConfig(max_batch=8, max_wait_ms=0.0),
                engine=BatchedJacobiEngine(
                    svd_config=OneSidedConfig(max_sweeps=1)
                ),
                clock=clk,
                start=start,
            )

        config = ClusterConfig(replicas=2, revive=False)
        cluster = SVDCluster(
            config, server_factory=factory, clock=clock, start=False
        )
        try:
            hard = rng.standard_normal((4, 4))
            future = cluster.submit(hard)
            cluster.poll()
            with pytest.raises(ConvergenceError):
                future.result(timeout=5)
            # Not a failover: deterministic failures ride straight out.
            assert cluster.stats().failovers == 0
        finally:
            cluster.close()


class TestStatsAndSurface:
    def test_cluster_stats_round_trips_as_dict(self, clock):
        cluster = manual_cluster(clock, replicas=2)
        try:
            cluster.submit(np.eye(6, 4))
            cluster.poll()
            payload = cluster.stats().as_dict()
            assert set(payload["replicas"]) == {"replica-0", "replica-1"}
            assert payload["router"]["submitted"] == 1
            assert payload["failovers"] == 0
            import json

            json.dumps(payload)  # JSON-ready, NaNs aside
        finally:
            cluster.close()

    def test_reset_stats_leaves_nan_quantiles_not_a_crash(self, clock):
        cluster = manual_cluster(clock, replicas=2)
        try:
            cluster.submit(np.eye(6, 4))
            cluster.poll()
            assert cluster.stats().router.window == 1
            cluster.reset_stats()
            snap = cluster.stats()
            assert snap.router.window == 0
            assert np.isnan(snap.router.latency_p50)
            assert np.isnan(snap.router.latency_max)
            for replica in snap.replicas:
                assert replica.server.window == 0
                assert np.isnan(replica.server.latency_p99)
            # The summary must also survive an empty window.
            assert "latency" in snap.router.summary()
        finally:
            cluster.close()

    def test_client_and_loadgen_drive_a_cluster_unchanged(self, rng):
        config = ClusterConfig(
            replicas=2,
            serve=ServeConfig(max_batch=8, max_wait_ms=1.0),
        )
        with SVDCluster(config, runtime="serial") as cluster:
            result = SVDClient(cluster).solve(rng.standard_normal((6, 4)))
            assert result.S.shape == (4,)
            report = run_closed_loop(
                cluster,
                LoadSpec(requests=12, concurrency=4, shapes=((6, 4),)),
            )
            assert report.completed + report.failed == report.requests
            assert report.failed == 0
            assert report.server_stats.router.completed >= 12
