"""TLP / arithmetic-intensity models (paper Eqs. 8-9) and their paper
worked-example values."""

import pytest

from repro.errors import ConfigurationError
from repro.tuning.performance_model import (
    arithmetic_intensity_gram,
    arithmetic_intensity_update,
    thread_level_parallelism,
)


class TestTLP:
    def test_paper_worked_example_plan1(self):
        """100 matrices of 256x256 under (w=48, delta=256, T=256): the paper
        reports f1 = 68,267."""
        tlp = thread_level_parallelism([(256, 256)] * 100, 48, 256, 256)
        assert tlp == pytest.approx(68_267, rel=2e-5)

    def test_paper_worked_example_plan4(self):
        """Same batch under (w=16, delta=128, T=256): f1 = 409,600."""
        tlp = thread_level_parallelism([(256, 256)] * 100, 16, 128, 256)
        assert tlp == pytest.approx(409_600)

    def test_decreases_with_width(self):
        shapes = [(128, 128)] * 10
        assert thread_level_parallelism(
            shapes, 8, 64, 256
        ) > thread_level_parallelism(shapes, 24, 64, 256)

    def test_decreases_with_delta(self):
        shapes = [(128, 128)] * 10
        assert thread_level_parallelism(
            shapes, 16, 32, 256
        ) > thread_level_parallelism(shapes, 16, 128, 256)

    def test_scales_with_batch(self):
        one = thread_level_parallelism([(64, 64)], 8, 32, 256)
        ten = thread_level_parallelism([(64, 64)] * 10, 8, 32, 256)
        assert ten == pytest.approx(10 * one)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            thread_level_parallelism([(64, 64)], 0, 32, 256)
        with pytest.raises(ConfigurationError):
            thread_level_parallelism([(0, 64)], 8, 32, 256)


class TestArithmeticIntensity:
    def test_gram_linear_in_width(self):
        """AI_1 = Load_width * 2w (Eq. 9)."""
        assert arithmetic_intensity_gram(24) == pytest.approx(4 * 48)
        assert arithmetic_intensity_gram(48) == 2 * arithmetic_intensity_gram(24)

    def test_update_harmonic_form(self):
        """AI_2 = Load_width * 2w*delta / (2w + delta)."""
        ai = arithmetic_intensity_update(16, 128)
        assert ai == pytest.approx(4 * (32 * 128) / (32 + 128))

    def test_update_below_gram(self):
        # The update GEMM streams J too, so its AI is always lower.
        for w, d in [(8, 64), (16, 128), (24, 256)]:
            assert arithmetic_intensity_update(w, d) < arithmetic_intensity_gram(w)

    def test_update_monotone_in_delta(self):
        assert arithmetic_intensity_update(16, 256) > arithmetic_intensity_update(
            16, 32
        )

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            arithmetic_intensity_gram(0)
        with pytest.raises(ConfigurationError):
            arithmetic_intensity_update(8, 0)
