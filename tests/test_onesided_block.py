"""Block one-sided Jacobi SVD (paper Algorithm 1) and Theorem 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import assert_valid_svd
from repro.errors import ConfigurationError
from repro.jacobi import BlockJacobiConfig, BlockJacobiSVD
from repro.jacobi.onesided_block import column_blocks


class TestColumnBlocks:
    def test_even_split(self):
        assert column_blocks(8, 2) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_ragged_tail(self):
        assert column_blocks(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_width_larger_than_n(self):
        assert column_blocks(3, 8) == [(0, 3)]

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            column_blocks(4, 0)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            column_blocks(0, 2)

    def test_blocks_partition_everything(self):
        blocks = column_blocks(17, 5)
        covered = [c for a, b in blocks for c in range(a, b)]
        assert covered == list(range(17))


class TestConfig:
    @pytest.mark.parametrize("source", ["gram-evd", "direct-svd"])
    def test_valid_sources(self, source):
        BlockJacobiConfig(rotation_source=source)

    def test_invalid_source(self):
        with pytest.raises(ConfigurationError, match="rotation_source"):
            BlockJacobiConfig(rotation_source="magic")

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            BlockJacobiConfig(width=0)


class TestCorrectness:
    @pytest.mark.parametrize("source", ["gram-evd", "direct-svd"])
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
    def test_matches_lapack(self, rng, source, width):
        A = rng.standard_normal((16, 12))
        cfg = BlockJacobiConfig(width=width, rotation_source=source)
        assert_valid_svd(A, BlockJacobiSVD(cfg).decompose(A))

    def test_width_exceeding_half_n_degenerates_gracefully(self, rng):
        A = rng.standard_normal((10, 6))
        res = BlockJacobiSVD(BlockJacobiConfig(width=6)).decompose(A)
        assert_valid_svd(A, res)

    def test_ragged_blocks(self, rng):
        A = rng.standard_normal((14, 11))  # 11 = 3 blocks of 4, 4, 3
        res = BlockJacobiSVD(BlockJacobiConfig(width=4)).decompose(A)
        assert_valid_svd(A, res)

    @pytest.mark.parametrize("source", ["gram-evd", "direct-svd"])
    def test_wide_matrix(self, rng, source):
        A = rng.standard_normal((6, 14))
        cfg = BlockJacobiConfig(width=3, rotation_source=source)
        assert_valid_svd(A, BlockJacobiSVD(cfg).decompose(A))

    def test_sequential_evd_variant(self, rng):
        A = rng.standard_normal((12, 8))
        cfg = BlockJacobiConfig(width=2, parallel_evd=False)
        assert_valid_svd(A, BlockJacobiSVD(cfg).decompose(A))

    def test_rank_deficient(self, rng):
        U = rng.standard_normal((12, 2))
        V = rng.standard_normal((8, 2))
        A = U @ V.T
        res = BlockJacobiSVD(BlockJacobiConfig(width=2)).decompose(A)
        assert res.reconstruction_error(A) < 1e-10
        assert (res.S[2:] < 1e-10).all()


class TestTheorem1:
    """SVD of A_ij and EVD of B_ij yield the same rotation subspace."""

    @pytest.mark.parametrize("width", [2, 4])
    def test_gram_and_direct_agree_on_singular_values(self, rng, width):
        A = rng.standard_normal((18, 12))
        s_gram = BlockJacobiSVD(
            BlockJacobiConfig(width=width, rotation_source="gram-evd")
        ).decompose(A).S
        s_direct = BlockJacobiSVD(
            BlockJacobiConfig(width=width, rotation_source="direct-svd")
        ).decompose(A).S
        np.testing.assert_allclose(s_gram, s_direct, atol=1e-9)

    def test_rotation_for_pair_is_orthogonal(self, rng):
        solver = BlockJacobiSVD(BlockJacobiConfig(width=2))
        Aij = rng.standard_normal((10, 4))
        J = solver.rotation_for_pair(Aij)
        np.testing.assert_allclose(J.T @ J, np.eye(4), atol=1e-12)

    def test_rotation_orthogonalizes_pair(self, rng):
        from repro.jacobi.convergence import gram_offdiagonal_cosine

        for source in ("gram-evd", "direct-svd"):
            solver = BlockJacobiSVD(
                BlockJacobiConfig(width=2, rotation_source=source)
            )
            Aij = rng.standard_normal((10, 4))
            rotated = Aij @ solver.rotation_for_pair(Aij)
            assert gram_offdiagonal_cosine(rotated) < 1e-10

    def test_rotation_for_short_wide_pair(self, rng):
        """m < 2w: thin SVD must be completed to a square rotation."""
        solver = BlockJacobiSVD(
            BlockJacobiConfig(width=3, rotation_source="direct-svd")
        )
        Aij = rng.standard_normal((4, 6))
        J = solver.rotation_for_pair(Aij)
        assert J.shape == (6, 6)
        np.testing.assert_allclose(J.T @ J, np.eye(6), atol=1e-10)


class TestStats:
    def test_counts_populated(self, rng):
        A = rng.standard_normal((12, 8))
        solver = BlockJacobiSVD(BlockJacobiConfig(width=2))
        solver.decompose(A)
        stats = solver.last_stats
        assert stats.block_rotations > 0
        assert stats.update_gemms == stats.block_rotations
        assert stats.gram_gemms == stats.inner_evd_calls

    def test_direct_source_skips_gram(self, rng):
        A = rng.standard_normal((12, 8))
        solver = BlockJacobiSVD(
            BlockJacobiConfig(width=2, rotation_source="direct-svd")
        )
        solver.decompose(A)
        assert solver.last_stats.gram_gemms == 0
        assert solver.last_stats.inner_svd_calls > 0

    def test_wider_blocks_need_fewer_rotations(self, rng):
        """Paper Fig. 2: rotations per sweep fall as w grows."""
        A = rng.standard_normal((20, 16))
        counts = {}
        for width in (1, 2, 4):
            solver = BlockJacobiSVD(BlockJacobiConfig(width=width))
            res = solver.decompose(A)
            counts[width] = res.trace.records[0].rotations
        assert counts[4] < counts[2] < counts[1]


@settings(max_examples=15, deadline=None)
@given(
    width=st.integers(1, 5),
    seed=st.integers(0, 10_000),
    source=st.sampled_from(["gram-evd", "direct-svd"]),
)
def test_block_jacobi_property(width, seed, source):
    """Property: block Jacobi matches LAPACK for any width/source."""
    A = np.random.default_rng(seed).standard_normal((12, 10))
    cfg = BlockJacobiConfig(width=width, rotation_source=source)
    res = BlockJacobiSVD(cfg).decompose(A)
    ref = np.linalg.svd(A, compute_uv=False)
    assert np.abs(res.S - ref).max() < 1e-8 * max(1.0, ref[0])
