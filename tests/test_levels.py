"""Level planning: classification, width schedules, w1 selection."""

import pytest

from repro.core.levels import (
    Group,
    classify_pair,
    feasible_level_width,
    select_w1,
    width_schedule,
)
from repro.errors import ConfigurationError
from repro.gpusim import V100, max_width_for_evd


class TestClassifyPair:
    def test_small_pair_is_svd_group(self):
        assert classify_pair(32, 64, V100).group is Group.SVD_IN_SM

    def test_observation2_wide_matrix_pair(self):
        """32 x 96 pair (w = 48 on a 32-tall matrix): SVD in SM."""
        assert classify_pair(32, 96, V100).group is Group.SVD_IN_SM

    def test_tall_pair_is_evd_group(self):
        """512 x 48 pair: SVD too big, 48 x 48 Gram EVD fits."""
        assert classify_pair(512, 48, V100).group is Group.EVD_IN_SM

    def test_huge_pair_recurses(self):
        """512 x 96 pair: neither fits -> group three."""
        assert classify_pair(512, 96, V100).group is Group.RECURSE

    def test_pair_shape_recorded(self):
        decision = classify_pair(100, 32, V100)
        assert decision.pair_shape == (100, 32)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            classify_pair(0, 8, V100)

    def test_cache_scoped_by_device(self):
        """Regression: the memo key includes the device.

        Vega20's 64 KB shared memory admits a 64 x 96 pair in SM where the
        V100's 48 KB forces recursion; a cache that dropped the device from
        its key would return whichever device asked first for both.
        """
        from repro.gpusim import get_device

        vega = get_device("Vega20")
        assert classify_pair(64, 96, V100).group is Group.RECURSE
        assert classify_pair(64, 96, vega).group is Group.SVD_IN_SM
        # Order independence: re-query the first device after the second.
        assert classify_pair(64, 96, V100).group is Group.RECURSE


class TestWidthSchedule:
    def test_descending_widths(self):
        widths = width_schedule(1024, V100, w1=48)
        assert widths == sorted(widths, reverse=True)
        assert widths[0] == 48

    def test_terminates_at_evd_feasible_width(self):
        widths = width_schedule(2048, V100, w1=48)
        assert widths[-1] <= max_width_for_evd(V100)

    def test_single_level_when_w1_small(self):
        assert width_schedule(512, V100, w1=16) == [16]

    def test_w1_clamped_to_half_n(self):
        widths = width_schedule(20, V100, w1=48)
        assert widths[0] == 10

    def test_custom_shrink(self):
        widths = width_schedule(4096, V100, w1=48, shrink=3)
        assert widths[1] == 16

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            width_schedule(1, V100)

    def test_rejects_bad_shrink(self):
        with pytest.raises(ConfigurationError):
            width_schedule(64, V100, shrink=1)


class TestFeasibleWidth:
    def test_short_matrix_gets_wide_blocks(self):
        """Observation 2: a 32-tall matrix admits w = 48 via the SVD path."""
        assert feasible_level_width(32, V100) >= 48

    def test_tall_matrix_capped_by_evd(self):
        assert feasible_level_width(1024, V100) == max_width_for_evd(V100)


class TestSelectW1:
    def test_size_oblivious_pairing(self):
        """The paper's motivating pair: 32 x 1024 gets a wider w than
        1024 x 1024 in the same batch."""
        w_short = select_w1(32, 1024, V100, count=100)
        w_tall = select_w1(1024, 1024, V100, count=100)
        assert w_short >= w_tall

    def test_without_tailoring_uses_widest_feasible_table_width(self):
        assert select_w1(32, 1024, V100, count=1, tailoring=False) == 48
        assert select_w1(1024, 1024, V100, count=1, tailoring=False) == 24

    def test_never_exceeds_half_n(self):
        assert select_w1(512, 16, V100, count=1) <= 8

    def test_small_batch_prefers_parallelism(self):
        """Few matrices -> the tuner trades width for TLP."""
        w_small = select_w1(512, 512, V100, count=1)
        w_large = select_w1(512, 512, V100, count=2000)
        assert w_small <= w_large

    def test_tiny_matrix_does_not_crash(self):
        assert select_w1(4, 4, V100, count=10) >= 1
