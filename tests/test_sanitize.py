"""repro.runtime.sanitize: dynamic shm ownership + canonical-merge audit.

These tests install the sanitizer explicitly (rather than via
``REPRO_SANITIZE=1``) so they run in the plain tier-1 suite too; the
fixture restores whatever state the session started with.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import WCycleSVD
from repro.runtime import RuntimeConfig, sanitize, shm
from repro.runtime.sanitize import SanitizeError


@pytest.fixture
def sanitizer():
    """Sanitizer on, with a clean table; prior state restored afterwards."""
    was_enabled = sanitize.enabled()
    sanitize.install()
    sanitize.reset()
    yield
    if was_enabled:
        sanitize.reset()  # drop segments this test deliberately leaked
    else:
        sanitize.uninstall()


class TestEnvGate:
    def test_truthy_values(self):
        for value in ("1", "true", "YES", " on "):
            assert sanitize.env_requested({"REPRO_SANITIZE": value})

    def test_falsy_values(self):
        for env in ({}, {"REPRO_SANITIZE": ""}, {"REPRO_SANITIZE": "0"}):
            assert not sanitize.env_requested(env)


class TestOwnershipAudit:
    def test_install_uninstall_toggle(self, sanitizer):
        assert sanitize.enabled()

    def test_double_release_raises(self, sanitizer, rng):
        seg, _ = shm.export_array(rng.standard_normal((2, 2)))  # repro: noqa[SHM01] straight-line: the double release is the behavior under test
        shm.release(seg, unlink=True)
        with pytest.raises(SanitizeError, match="double release"):
            shm.release(seg)
        assert sanitize.stats()["double_releases"] == 1

    def test_write_after_release_raises(self, sanitizer, rng):
        arr = rng.standard_normal((3, 3))
        seg, ref = shm.export_array(arr)
        try:
            attached, view = shm.import_array(ref)  # repro: noqa[SHM01] straight-line on purpose
            shm.release(attached)
            with pytest.raises(ValueError, match="read-only"):
                view[0, 0] = 1.0  # repro: noqa[SHM01] the use-after-release under test
        finally:
            shm.release(seg, unlink=True)

    def test_leak_detection_and_recovery(self, sanitizer, rng):
        seg, _ = shm.export_array(rng.standard_normal((2, 2)))  # repro: noqa[SHM01]
        assert sanitize.leaked_segments() == [seg.name]
        with pytest.raises(SanitizeError, match="leaked"):
            sanitize.assert_no_leaks()
        shm.release(seg, unlink=True)
        assert sanitize.leaked_segments() == []
        sanitize.assert_no_leaks()

    def test_paused_suspends_auditing(self, sanitizer, rng):
        with sanitize.paused():
            seg, _ = shm.export_array(rng.standard_normal((2, 2)))  # repro: noqa[SHM01]
            shm.release(seg, unlink=True)
            shm.release(seg)  # idempotent again while paused
        assert sanitize.leaked_segments() == []

    def test_untracked_segment_release_is_quiet(self, sanitizer, rng):
        with sanitize.paused():
            seg, _ = shm.export_array(rng.standard_normal((2, 2)))  # repro: noqa[SHM01]
        shm.release(seg, unlink=True)  # acquired unaudited: nothing to say
        shm.release(seg)

    def test_stats_count_operations(self, sanitizer, rng):
        seg, ref = shm.export_array(rng.standard_normal((2, 2)))
        try:
            attached, _ = shm.import_array(ref)  # repro: noqa[SHM01] straight-line counter check
            shm.release(attached)
        finally:
            shm.release(seg, unlink=True)
        counts = sanitize.stats()
        assert counts["exports"] == 1
        assert counts["imports"] == 1
        assert counts["releases"] == 2


class TestMergeOrder:
    def test_ascending_order_passes(self, sanitizer):
        sanitize.check_merge_order("here", [0, 1, 5, 9])
        sanitize.check_merge_order("here", [])

    def test_completion_order_rejected(self, sanitizer):
        with pytest.raises(SanitizeError, match="non-canonical"):
            sanitize.check_merge_order("site", [0, 2, 1])

    def test_duplicates_rejected(self, sanitizer):
        with pytest.raises(SanitizeError, match="strictly ascending"):
            sanitize.check_merge_order("site", [0, 1, 1])

    def test_noop_when_uninstalled(self):
        if sanitize.enabled():
            pytest.skip("session runs with REPRO_SANITIZE=1")
        sanitize.check_merge_order("site", [2, 1, 0])


class TestEndToEnd:
    def test_process_backend_decompose_leaks_nothing(self, sanitizer):
        """The W-cycle's shm traffic — exports to workers, adopted result
        segments — must balance to zero live segments in the parent."""
        rng = np.random.default_rng(11)
        batch = [rng.standard_normal((16, 8)) for _ in range(6)]
        batch.append(rng.standard_normal((48, 32)))
        runtime = RuntimeConfig(
            backend="processes", workers=2, min_shard=2,
            allow_oversubscribe=True,
        )
        with WCycleSVD(device="V100", runtime=runtime) as solver:
            results = solver.decompose_batch(batch)
        assert len(results) == len(batch)
        sanitize.assert_no_leaks()

    def test_serial_decompose_under_sanitizer(self, sanitizer):
        rng = np.random.default_rng(12)
        batch = [rng.standard_normal((12, 8)) for _ in range(4)]
        with WCycleSVD(device="V100") as solver:
            results = solver.decompose_batch(batch)
        A = batch[0]
        R = results[0]
        err = np.linalg.norm(A - R.U @ np.diag(R.S) @ R.V.T) / np.linalg.norm(A)
        assert err < 1e-12
        sanitize.assert_no_leaks()
