"""Chaos suite: injected faults must recover bit-identically.

Every scenario runs the same workload twice — once clean on the serial
reference, once under an armed :class:`~repro.runtime.faults.FaultPlan` on
a parallel runtime — and asserts the recovered factors are *byte*-equal
for every non-quarantined matrix. Fault draws are deterministic
(sha256-keyed per task), so each scenario replays the identical failure
sequence on every run.

Scenario coverage (ISSUE PR 4 acceptance): worker kill, shm segment loss,
task hang against a deadline, mid-sweep NaN corruption, backend fallback
down the degradation ladder, and deterministic convergence quarantine.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro import Profiler, WCycleSVD
from repro.errors import ConvergenceError, FailureReport
from repro.jacobi.batched import BatchedJacobiEngine
from repro.jacobi.onesided_vector import OneSidedConfig, OneSidedJacobiSVD
from repro.runtime import RuntimeConfig, base_executor, get_executor
from repro.runtime.arena import stranded_segments


def _batch(seed: int = 7) -> list[np.ndarray]:
    """A ragged, SM-resident batch: several buckets, several shards."""
    rng = np.random.default_rng(seed)
    shapes = [(16, 8)] * 6 + [(12, 12)] * 4 + [(6, 20)] * 3 + [(24, 16)] * 4
    return [rng.standard_normal(s) for s in shapes]


def _assert_bit_identical(got, want, *, skip=()):
    for i, (g, w) in enumerate(zip(got, want)):
        if i in skip:
            continue
        assert g.U.tobytes() == w.U.tobytes(), f"U differs at {i}"
        assert g.S.tobytes() == w.S.tobytes(), f"S differs at {i}"
        assert g.V.tobytes() == w.V.tobytes(), f"V differs at {i}"


@pytest.fixture(scope="module")
def batch():
    return _batch()


@pytest.fixture(scope="module")
def clean(batch):
    """The clean serial reference every recovery must reproduce."""
    with WCycleSVD(device="V100") as solver:
        return solver.decompose_batch(batch)


def _chaos_solve(batch, runtime):
    with WCycleSVD(device="V100", runtime=runtime) as solver:
        return solver.decompose_batch(batch)


class TestChaosScenarios:
    def test_worker_kill_processes_recovers(self, chaos, batch, clean):
        """Scenario 1: a forked worker dies hard (os._exit); the pool is
        respawned, its shm namespace reclaimed, and the retry recovers."""
        chaos("seed=3;kill:p=1.0")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="processes", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=2,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures, "the kill clause never fired"
        assert all(e.recovered for e in res.failures)

    def test_shm_segment_loss_recovers(self, chaos, batch, clean):
        """Scenario 2: the input segment vanishes before a worker attaches
        (SegmentLostError); the retry re-imports cleanly."""
        chaos("seed=4;shm_lost:p=1.0")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="processes", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=1,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        assert "SegmentLostError" in {e.cause for e in res.failures}

    def test_hang_trips_deadline_and_recovers(self, chaos, batch, clean):
        """Scenario 3: tasks wedge past their deadline; the supervisor
        abandons the attempt (DeadlineExceeded) and the retry is clean."""
        chaos("seed=5;hang:p=1.0,delay=0.3")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="threads", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=1,
                task_timeout=0.05, backoff_base=0.0,
                on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        assert "DeadlineExceeded" in {e.cause for e in res.failures}

    def test_nan_poison_midsweep_recovers(self, chaos, batch, clean):
        """Scenario 4: a stack entry turns NaN mid-sweep; the per-sweep
        finite check raises NonFiniteError and the retry re-reads clean
        data (the poison lands in the solver's private copy)."""
        chaos("seed=11;nan:p=1.0")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="threads", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=1,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        assert "NonFiniteError" in {e.cause for e in res.failures}

    def test_backend_fallback_ladder(self, chaos, batch, clean):
        """Scenario 5: a fault pinned to the processes backend keeps
        firing on every attempt there; recovery comes from the ladder —
        the retry lands on the threads rung, out of the clause's reach."""
        chaos("seed=6;kill:p=1.0,backend=processes,attempts=99")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="processes", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=2,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        assert all(e.recovered for e in res.failures)

    def test_wcycle_large_matrix_rescue(self, chaos):
        """Scenario 1b: kills against W-cycle-sized matrices (beyond SM
        capacity) with a zero retry budget; recovery must come from the
        per-matrix rescue on the executor-free serial solver."""
        rng = np.random.default_rng(0)
        mats = [
            rng.standard_normal((96, 80)),
            rng.standard_normal((128, 96)),
            rng.standard_normal((8, 8)),
        ]
        with WCycleSVD(device="V100") as solver:
            want = solver.decompose_batch(mats)
        chaos("seed=5;kill:p=1.0")
        res = _chaos_solve(
            mats,
            RuntimeConfig(
                backend="threads", workers=2, allow_oversubscribe=True,
                max_retries=0, backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, want.results)
        assert res.failures.unrecovered == ()
        assert "wcycle" in {e.stage for e in res.failures}

    def test_profiled_chaos_run_keeps_accounting(self, chaos, batch, clean):
        """Recovered runs must also reproduce the simulated accounting —
        retries change wall-clock, never the modeled GPU cost."""
        profiler = Profiler()
        with WCycleSVD(device="V100") as solver:
            solver.decompose_batch(batch, profiler=profiler)
        want = profiler.report
        chaos("seed=3;kill:p=1.0")
        profiler = Profiler()
        runtime = RuntimeConfig(
            backend="threads", workers=2, min_shard=2,
            allow_oversubscribe=True, max_retries=1,
            backoff_base=0.0, on_failure="quarantine",
        )
        with WCycleSVD(device="V100", runtime=runtime) as solver:
            solver.decompose_batch(batch, profiler=profiler)
        got = profiler.report
        assert len(got.launches) == len(want.launches)
        for a, b in zip(got.launches, want.launches):
            assert a == b
        assert got.total_time == want.total_time


class TestConvergenceQuarantine:
    """Scenario 6: deterministic numerical failure — no fault plan at all."""

    def _mixed_batch(self):
        rng = np.random.default_rng(2)
        easy = [np.diag([5.0, 3.0, 2.0]) for _ in range(2)]  # 1-sweep conv.
        hard = [rng.standard_normal((12, 12)) for _ in range(2)]
        return easy + hard, [2, 3]

    def _engine(self):
        # One sweep is enough for orthogonal-column matrices and hopeless
        # for random ones: a deterministic convergence failure.
        return BatchedJacobiEngine(
            svd_config=OneSidedConfig(tol=1e-14, max_sweeps=1)
        )

    def test_raise_mode_names_offenders(self):
        mats, hard_idx = self._mixed_batch()
        with pytest.raises(ConvergenceError) as info:
            self._engine().svd_batch(mats)
        assert info.value.batch_indices == tuple(hard_idx)
        assert "bucket shape" in str(info.value)

    def test_quarantine_mode_isolates_offenders(self):
        mats, hard_idx = self._mixed_batch()
        engine = self._engine()
        results = engine.svd_batch(mats, on_failure="quarantine")
        report = engine.last_failures
        assert isinstance(report, FailureReport)
        # The reference path fails on the same deterministic budget, so
        # the offenders end quarantined-and-unrecovered with NaN slots.
        assert report.unrecovered == tuple(hard_idx)
        for i in hard_idx:
            assert np.isnan(results[i].S).all()
            events = report.for_index(i)
            assert events, f"matrix {i} missing from the report"
            assert all(e.cause == "ConvergenceError" for e in events)
            assert all(e.attempts >= 1 for e in events)
        # Survivors are bit-identical to the scalar reference solver.
        scalar = OneSidedJacobiSVD(OneSidedConfig(tol=1e-14, max_sweeps=1))
        for i in range(len(mats)):
            if i in hard_idx:
                continue
            want = scalar.decompose(mats[i])
            assert results[i].U.tobytes() == want.U.tobytes()
            assert results[i].S.tobytes() == want.S.tobytes()
            assert results[i].V.tobytes() == want.V.tobytes()


class TestPersistentChaos:
    """PR 7 acceptance: the persistent backend's arena survives worker
    death. Leases are parent-owned, so a kill mid-lease strands nothing;
    the respawned pool re-attaches the same segments by name and the
    retry recovers bit-identically."""

    def test_worker_kill_mid_lease_recovers(self, chaos, batch, clean):
        chaos("seed=3;kill:p=1.0")
        runtime = get_executor(
            RuntimeConfig(
                backend="persistent", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=2,
                backoff_base=0.0, on_failure="quarantine",
            )
        )
        base = base_executor(runtime)
        solver = WCycleSVD(device="V100", runtime=runtime)
        try:
            res = solver.decompose_batch(batch)
            # The kill fired inside dispatched tasks whose input/output
            # slots were leased; every lease came back through the
            # engine's finally blocks despite the dead pool.
            assert base.arena.outstanding() == 0
            stats = base.dispatch_stats()
            assert stats["respawns"] >= 1, "the kill never broke the pool"
            assert stats["arena_leases"] == stats["arena_returns"] > 0
            prefix = base.arena._prefix
        finally:
            solver.close()
        _assert_bit_identical(res.results, clean.results)
        assert res.failures, "the kill clause never fired"
        assert all(e.recovered for e in res.failures)
        # The respawned pool's segments died with the executor's close().
        stale = [n for n in stranded_segments() if n.startswith(prefix)]
        assert stale == [], f"stranded arena segments: {stale}"

    def test_nan_poison_on_persistent_recovers(self, chaos, batch, clean):
        """The nan fault reaches arena-transported stacks too: solvers
        poison their private working copy inside the worker, the finite
        check trips, and the retry re-reads the untouched input slot."""
        chaos("seed=11;nan:p=1.0")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="persistent", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=1,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        assert "NonFiniteError" in {e.cause for e in res.failures}


class TestNoStrandedSegments:
    def test_killed_worker_strands_no_shm(self, chaos, batch, clean):
        """Satellite 3: worker death mid-task must not leave named shared
        memory behind — the supervisor reclaims the dead attempt's
        namespace (``rp<pid>…``) before retrying and after the map."""
        chaos("seed=3;kill:p=1.0")
        res = _chaos_solve(
            batch,
            RuntimeConfig(
                backend="processes", workers=2, min_shard=2,
                allow_oversubscribe=True, max_retries=2,
                backoff_base=0.0, on_failure="quarantine",
            ),
        )
        _assert_bit_identical(res.results, clean.results)
        assert res.failures
        stale = glob.glob(f"/dev/shm/rp{os.getpid()}x*")
        assert stale == [], f"stranded segments: {stale}"


class TestClusterChaos:
    """Scenario 7 (PR 9 acceptance): a serving replica dies mid-fused-
    batch. The shard router must fail the stranded requests over to the
    surviving replicas, every future must resolve exactly once, the
    re-routed solves must be bit-identical to standalone solves, and the
    dead replica's shared-memory namespace must be reclaimed."""

    def _mats(self, seed=17, count=10):
        rng = np.random.default_rng(seed)
        shapes = [(16, 8), (12, 12), (16, 8), (24, 16)]
        return [
            rng.standard_normal(shapes[i % len(shapes)])
            for i in range(count)
        ]

    def test_replica_kill_mid_batch_fails_over_bit_identically(
        self, chaos
    ):
        from repro.serve import ClusterConfig, ServeConfig, SVDCluster

        mats = self._mats()
        want = BatchedJacobiEngine().svd_batch(mats)
        # p=1.0 with a cluster-wide budget of one: the first fused batch
        # to dispatch kills its replica; the retried batch must survive.
        chaos("seed=13;replica_kill:p=1.0,attempts=1")
        config = ClusterConfig(
            replicas=3,
            revive=False,
            serve=ServeConfig(max_batch=8, max_wait_ms=1.0),
        )
        with SVDCluster(config, runtime="serial") as cluster:
            futures = [cluster.submit(m) for m in mats]
            got = [f.result(timeout=60) for f in futures]
            snap = cluster.stats()
        _assert_bit_identical(got, want)
        assert snap.kills == 1, "the replica_kill clause never fired"
        assert snap.failovers > 0
        assert snap.router.completed == len(mats)
        assert snap.router.failed == 0
        dead = [n for n, s in snap.states.items() if s == "dead"]
        assert len(dead) == 1
        # Exactly-once held structurally; nothing of any generation —
        # dead or alive — lingers in /dev/shm after close().
        assert stranded_segments() == []

    def test_replica_kill_with_revival_restores_the_fleet(self, chaos):
        from repro.serve import ClusterConfig, ServeConfig, SVDCluster

        mats = self._mats(seed=23, count=6)
        want = BatchedJacobiEngine().svd_batch(mats)
        chaos("seed=13;replica_kill:p=1.0,attempts=1")
        config = ClusterConfig(
            replicas=2,
            fail_dead=1,
            probation_ms=0.0,
            probation_successes=1,
            probe_interval_ms=5.0,
            serve=ServeConfig(max_batch=8, max_wait_ms=1.0),
        )
        with SVDCluster(config, runtime="serial") as cluster:
            futures = [cluster.submit(m) for m in mats]
            got = [f.result(timeout=60) for f in futures]
            # The supervisor thread revives the dead replica after the
            # (zero-length) probation; wait for it to come back.
            deadline = 200
            while deadline and cluster.stats().revivals == 0:
                threading_wait(0.01)
                deadline -= 1
            snap = cluster.stats()
        _assert_bit_identical(got, want)
        assert snap.kills == 1
        assert snap.revivals >= 1
        assert stranded_segments() == []


def threading_wait(seconds: float) -> None:
    """Sleep without importing time into the chaos suite's namespace."""
    import threading

    threading.Event().wait(seconds)
