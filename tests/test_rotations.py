"""Plane-rotation primitives (paper Eqs. 3-4 and the two-sided variant)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jacobi.rotations import (
    apply_rotation_inplace,
    onesided_rotation,
    rotation_from_tau,
    rotation_matrix,
    twosided_rotation,
)

finite_floats = st.floats(
    min_value=-1e8, max_value=1e8, allow_nan=False, allow_infinity=False
)


class TestRotationFromTau:
    def test_unit_norm(self):
        for tau in (-5.0, -0.1, 0.0, 0.1, 5.0):
            c, s = rotation_from_tau(tau)
            assert c * c + s * s == pytest.approx(1.0)

    def test_inner_rotation(self):
        # |t| <= 1 means |s| <= c: the smaller-angle root is chosen.
        for tau in (-3.0, -0.5, 0.5, 3.0):
            c, s = rotation_from_tau(tau)
            assert abs(s) <= c + 1e-15

    def test_infinite_tau_is_identity(self):
        assert rotation_from_tau(math.inf) == (1.0, 0.0)

    def test_zero_tau_is_45_degrees(self):
        c, s = rotation_from_tau(0.0)
        # sign(0) == +... copysign(1, 0) == 1, so t = 1.
        assert c == pytest.approx(1 / math.sqrt(2))
        assert s == pytest.approx(1 / math.sqrt(2))


class TestOneSidedRotation:
    def test_orthogonalizes_columns(self, rng):
        A = rng.standard_normal((10, 2))
        aii = A[:, 0] @ A[:, 0]
        ajj = A[:, 1] @ A[:, 1]
        aij = A[:, 0] @ A[:, 1]
        c, s = onesided_rotation(aii, ajj, aij)
        apply_rotation_inplace(A, 0, 1, c, s)
        assert abs(A[:, 0] @ A[:, 1]) < 1e-12

    def test_identity_when_already_orthogonal(self):
        assert onesided_rotation(2.0, 1.0, 0.0) == (1.0, 0.0)

    def test_preserves_frobenius_norm(self, rng):
        A = rng.standard_normal((6, 2))
        norm = np.linalg.norm(A)
        c, s = onesided_rotation(
            A[:, 0] @ A[:, 0], A[:, 1] @ A[:, 1], A[:, 0] @ A[:, 1]
        )
        apply_rotation_inplace(A, 0, 1, c, s)
        assert np.linalg.norm(A) == pytest.approx(norm)


class TestTwoSidedRotation:
    def test_annihilates_offdiagonal(self, rng):
        for _ in range(10):
            b = rng.standard_normal(3)
            B = np.array([[b[0], b[2]], [b[2], b[1]]])
            c, s = twosided_rotation(B[0, 0], B[1, 1], B[0, 1])
            G = rotation_matrix(c, s)
            Bh = G.T @ B @ G
            assert abs(Bh[0, 1]) < 1e-12 * max(1, np.abs(B).max())

    def test_preserves_eigenvalues(self, rng):
        b = rng.standard_normal(3)
        B = np.array([[b[0], b[2]], [b[2], b[1]]])
        c, s = twosided_rotation(B[0, 0], B[1, 1], B[0, 1])
        G = rotation_matrix(c, s)
        Bh = G.T @ B @ G
        np.testing.assert_allclose(
            np.sort(np.diag(Bh)), np.sort(np.linalg.eigvalsh(B)), atol=1e-12
        )

    def test_identity_when_diagonal(self):
        assert twosided_rotation(3.0, 1.0, 0.0) == (1.0, 0.0)


class TestApplyRotation:
    def test_matches_matrix_product(self, rng):
        A = rng.standard_normal((5, 4))
        expected = A.copy()
        c, s = 0.8, 0.6
        J = np.eye(4)
        J[np.ix_([1, 3], [1, 3])] = rotation_matrix(c, s)
        expected = expected @ J
        apply_rotation_inplace(A, 1, 3, c, s)
        np.testing.assert_allclose(A, expected, atol=1e-14)

    def test_other_columns_untouched(self, rng):
        A = rng.standard_normal((5, 4))
        before = A.copy()
        apply_rotation_inplace(A, 0, 2, 0.6, 0.8)
        np.testing.assert_array_equal(A[:, 1], before[:, 1])
        np.testing.assert_array_equal(A[:, 3], before[:, 3])


@settings(max_examples=60, deadline=None)
@given(tau=finite_floats)
def test_rotation_always_unit(tau):
    c, s = rotation_from_tau(tau)
    assert c * c + s * s == pytest.approx(1.0)
    assert c > 0


@settings(max_examples=60, deadline=None)
@given(
    bii=finite_floats,
    bjj=finite_floats,
    bij=st.floats(
        min_value=-1e8,
        max_value=1e8,
        allow_nan=False,
        allow_infinity=False,
    ).filter(lambda x: abs(x) > 1e-8),
)
def test_twosided_annihilation_property(bii, bjj, bij):
    """Property: the two-sided rotation always zeros the pivot pair."""
    B = np.array([[bii, bij], [bij, bjj]])
    c, s = twosided_rotation(bii, bjj, bij)
    G = rotation_matrix(c, s)
    Bh = G.T @ B @ G
    scale = max(1.0, float(np.abs(B).max()))
    assert abs(Bh[0, 1]) < 1e-10 * scale
