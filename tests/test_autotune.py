"""Auto-tuning engine (paper §IV-D3) including the worked example."""

import pytest

from repro.errors import PlanError
from repro.gpusim import P100, V100
from repro.tuning import AutoTuner
from repro.tuning.autotune import DEFAULT_TLP_THRESHOLD
from repro.tuning.candidates import candidate_plans


class TestWorkedExample:
    """Paper §IV-D3: 100 matrices of 256 x 256 on V100."""

    def test_selects_plan_four(self):
        result = AutoTuner(V100).select([(256, 256)] * 100)
        plan = result.plan
        assert (plan.width, plan.delta, plan.threads) == (16, 128, 256)
        assert plan.index == 4

    def test_final_tlp_matches_paper(self):
        result = AutoTuner(V100).select([(256, 256)] * 100)
        assert result.tlp == pytest.approx(409_600)

    def test_walks_plans_in_order(self):
        result = AutoTuner(V100).select([(256, 256)] * 100)
        assert [p.index for p in result.considered] == [1, 2, 3, 4]

    def test_default_threshold_is_papers(self):
        assert AutoTuner(V100).threshold == DEFAULT_TLP_THRESHOLD == 306_149


class TestSelection:
    def test_small_batch_falls_through_to_max_tlp(self):
        """When nothing clears the threshold, the highest-TLP plan wins."""
        result = AutoTuner(V100).select([(64, 64)] * 2)
        assert result.plan.index == candidate_plans(64)[-1].index

    def test_huge_batch_picks_first_plan(self):
        result = AutoTuner(V100).select([(256, 256)] * 10_000)
        assert result.plan.index == 1

    def test_max_width_respected(self):
        result = AutoTuner(V100).select([(512, 512)] * 100, max_width=24)
        assert result.plan.width <= 24

    def test_threshold_override(self):
        low = AutoTuner(V100, threshold=1.0).select([(256, 256)] * 100)
        assert low.plan.index == 1  # everything passes immediately

    def test_empty_batch_raises(self):
        with pytest.raises(PlanError):
            AutoTuner(V100).select([])


class TestCacheScoping:
    """The select() memo must be keyed by device, not just by the query.

    Today's TLP objective happens not to read the device, but two tuners
    for different devices must never alias cache entries — regression
    guard for the scoped ``_select_cached`` key.
    """

    def test_distinct_devices_are_distinct_cache_entries(self):
        from repro.tuning.autotune import _select_cached

        shapes = [(256, 256)] * 100
        _select_cached.cache_clear()
        AutoTuner(V100).select(shapes)
        misses_after_first = _select_cached.cache_info().misses
        AutoTuner(P100).select(shapes)
        info = _select_cached.cache_info()
        # Same shapes + same threshold on another device must MISS, not hit.
        assert info.misses == misses_after_first + 1

    def test_same_device_query_hits_cache(self):
        from repro.tuning.autotune import _select_cached

        shapes = [(128, 128)] * 10
        _select_cached.cache_clear()
        first = AutoTuner(V100).select(shapes)
        second = AutoTuner(V100).select(shapes)
        assert _select_cached.cache_info().hits >= 1
        assert first is second


class TestExhaustive:
    def test_returns_a_candidate(self):
        shapes = [(256, 256)] * 50
        plan, time = AutoTuner(V100).exhaustive_best(shapes)
        assert plan in candidate_plans(256)
        assert time > 0

    def test_custom_time_fn(self):
        shapes = [(256, 256)] * 10
        # A time function that prefers the widest block.
        plan, _ = AutoTuner(V100).exhaustive_best(
            shapes, time_fn=lambda p: 1.0 / p.width
        )
        assert plan.width == 48

    def test_beats_or_matches_autotuned_plan(self):
        shapes = [(256, 256)] * 100
        tuner = AutoTuner(V100)
        chosen = tuner.select(shapes).plan
        _, best_time = tuner.exhaustive_best(shapes)
        assert best_time <= tuner.simulate_plan_time(shapes, chosen) + 1e-12


class TestCalibration:
    def test_calibrate_sets_threshold(self):
        tuner = AutoTuner(P100)
        value = tuner.calibrate_threshold()
        assert value > 0
        assert tuner.threshold == value

    def test_calibrated_threshold_device_dependent(self):
        v = AutoTuner(V100).calibrate_threshold()
        # Different device geometry can move the knee; at minimum the
        # calibration must return something sane.
        assert v > 1000
