"""Convergence metrics (off-diagonal norms, orthogonality residual)."""

import numpy as np
import pytest

from repro.jacobi.convergence import (
    gram_offdiagonal_cosine,
    offdiagonal_frobenius,
    orthogonality_residual,
)


class TestGramOffdiagonalCosine:
    def test_orthogonal_columns_give_zero(self):
        Q = np.linalg.qr(np.random.default_rng(0).standard_normal((8, 4)))[0]
        assert gram_offdiagonal_cosine(Q) < 1e-14

    def test_parallel_columns_give_one(self):
        v = np.arange(1.0, 5.0)
        A = np.column_stack([v, 2 * v])
        assert gram_offdiagonal_cosine(A) == pytest.approx(1.0)

    def test_zero_column_contributes_nothing(self):
        A = np.zeros((4, 2))
        A[:, 0] = 1.0
        assert gram_offdiagonal_cosine(A) == 0.0

    def test_scale_invariant(self, rng):
        A = rng.standard_normal((6, 4))
        assert gram_offdiagonal_cosine(A) == pytest.approx(
            gram_offdiagonal_cosine(A * 1e6)
        )

    def test_single_column(self, rng):
        assert gram_offdiagonal_cosine(rng.standard_normal((5, 1))) == 0.0


class TestOffdiagonalFrobenius:
    def test_diagonal_matrix_is_zero(self):
        assert offdiagonal_frobenius(np.diag([1.0, 2.0, 3.0])) == 0.0

    def test_relative_normalization(self):
        B = np.array([[0.0, 3.0], [3.0, 0.0]])
        assert offdiagonal_frobenius(B) == pytest.approx(1.0)
        assert offdiagonal_frobenius(B, relative=False) == pytest.approx(
            np.sqrt(18.0)
        )

    def test_zero_matrix(self):
        assert offdiagonal_frobenius(np.zeros((3, 3))) == 0.0


class TestOrthogonalityResidual:
    def test_orthonormal_is_tiny(self, rng):
        Q = np.linalg.qr(rng.standard_normal((7, 5)))[0]
        assert orthogonality_residual(Q) < 1e-12

    def test_scaled_basis_detected(self, rng):
        Q = np.linalg.qr(rng.standard_normal((7, 5)))[0] * 2.0
        assert orthogonality_residual(Q) == pytest.approx(3.0)
