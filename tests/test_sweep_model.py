"""Analytic sweep-count model, cross-validated against real solvers."""

import pytest

from repro.errors import ConfigurationError
from repro.jacobi import OneSidedJacobiSVD, ParallelJacobiEVD
from repro.jacobi.sweep_model import (
    block_sweep_factor,
    predict_sweeps_block,
    predict_sweeps_twosided,
    predict_sweeps_vector,
)
from repro.utils.matrices import random_spd


class TestVectorPredictor:
    def test_monotone_in_size(self):
        values = [predict_sweeps_vector(n) for n in (4, 16, 64, 256, 1024)]
        assert values == sorted(values)

    def test_monotone_in_condition(self):
        assert predict_sweeps_vector(100, 1e12) > predict_sweeps_vector(100, 1e2)

    def test_trivial_sizes(self):
        assert predict_sweeps_vector(1) == 1
        assert predict_sweeps_vector(2) >= 2

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            predict_sweeps_vector(0)

    def test_capped(self):
        assert predict_sweeps_vector(10_000, 1e30) <= 60

    def test_table7_calibration(self):
        """Within a couple of sweeps of the paper's cuSOLVER column."""
        cases = [  # (n, condition, paper sweeps)
            (104, 3.10e0, 8),
            (425, 2.06e3, 15),
            (340, 2.03e5, 14),
            (302, 3.33e11, 14),
            (393, 8.08e15, 28),
        ]
        for n, cond, paper in cases:
            predicted = predict_sweeps_vector(n, cond)
            assert abs(predicted - paper) <= 4, (n, cond, predicted, paper)

    @pytest.mark.parametrize("n", [6, 10, 16])
    def test_close_to_measured(self, rng, n):
        """Cross-validation against the executing solver."""
        A = rng.standard_normal((n + 4, n))
        measured = OneSidedJacobiSVD().decompose(A).trace.sweeps
        predicted = predict_sweeps_vector(n)
        assert abs(predicted - measured) <= 3


class TestBlockFactor:
    def test_one_at_width_one(self):
        assert block_sweep_factor(1) == 1.0

    def test_monotone_decreasing(self):
        factors = [block_sweep_factor(w) for w in (1, 2, 4, 8, 16, 24, 48)]
        assert factors == sorted(factors, reverse=True)

    def test_bounded_below(self):
        assert block_sweep_factor(10_000) >= 0.6

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            block_sweep_factor(0)


class TestBlockPredictor:
    def test_fewer_sweeps_than_vector(self):
        assert predict_sweeps_block(512, 24) < predict_sweeps_vector(512)

    def test_width_one_equals_vector(self):
        assert predict_sweeps_block(64, 1) == predict_sweeps_vector(64)

    def test_monotone_in_width(self):
        sweeps = [predict_sweeps_block(512, w) for w in (1, 4, 16, 48)]
        assert sweeps == sorted(sweeps, reverse=True)


class TestTwoSidedPredictor:
    def test_fewer_than_onesided(self):
        for k in (16, 32, 64):
            assert predict_sweeps_twosided(k) < predict_sweeps_vector(k)

    def test_trivial(self):
        assert predict_sweeps_twosided(1) == 1

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            predict_sweeps_twosided(0)

    @pytest.mark.parametrize("k", [8, 16, 24])
    def test_close_to_measured(self, rng, k):
        B = random_spd(k, condition=100.0, rng=rng)
        measured = ParallelJacobiEVD().decompose(B).trace.sweeps
        predicted = predict_sweeps_twosided(k, 100.0)
        assert abs(predicted - measured) <= 3

    def test_condition_sensitivity(self):
        assert predict_sweeps_twosided(32, 1e12) > predict_sweeps_twosided(32, 1e1)
