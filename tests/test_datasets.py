"""Datasets: SuiteSparse stand-ins and workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    SUITESPARSE_MATRICES,
    TABLE6_GROUPS,
    assimilation_sizes,
    load_matrix,
    suitesparse_group_batch,
    table7_specs,
    uniform_batch,
)
from repro.errors import ConfigurationError


class TestSuiteSparse:
    def test_five_matrices(self):
        assert len(SUITESPARSE_MATRICES) == 5
        assert set(SUITESPARSE_MATRICES) == {
            "ash331",
            "impcol_d",
            "tols340",
            "robot24c1_mat5",
            "flower_7_1",
        }

    @pytest.mark.parametrize("name", sorted(SUITESPARSE_MATRICES))
    def test_shape_matches_spec(self, name):
        spec = SUITESPARSE_MATRICES[name]
        assert load_matrix(name).shape == spec.shape

    @pytest.mark.parametrize("name", ["ash331", "impcol_d", "tols340"])
    def test_condition_matches_spec(self, name):
        """Moderate conditions reproduce exactly (extreme ones saturate
        double precision and are checked loosely below)."""
        spec = SUITESPARSE_MATRICES[name]
        s = np.linalg.svd(load_matrix(name), compute_uv=False)
        assert s[0] / s[-1] == pytest.approx(spec.condition, rel=1e-6)

    def test_extreme_condition_order_of_magnitude(self):
        spec = SUITESPARSE_MATRICES["flower_7_1"]
        s = np.linalg.svd(load_matrix("flower_7_1"), compute_uv=False)
        measured = s[0] / s[-1]
        assert 0.5 * spec.condition < measured < 2.0 * spec.condition

    def test_deterministic(self):
        np.testing.assert_array_equal(
            load_matrix("ash331"), load_matrix("ash331")
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            load_matrix("hilbert99")

    def test_table7_order(self):
        specs = table7_specs()
        conds = [s.condition for s in specs]
        assert conds == sorted(conds)
        assert specs[0].name == "ash331"


class TestWorkloads:
    def test_table6_groups(self):
        caps = [g.cap for g in TABLE6_GROUPS]
        batches = [g.batch for g in TABLE6_GROUPS]
        assert caps == [32, 64, 128, 256, 512]
        assert batches == [46, 85, 156, 243, 458]

    def test_uniform_batch(self):
        batch = uniform_batch(8, 6, 5, rng=0)
        assert len(batch) == 5
        assert all(a.shape == (8, 6) for a in batch)

    def test_uniform_batch_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            uniform_batch(8, 6, 0)

    def test_group_batch_respects_cap(self):
        for group in TABLE6_GROUPS:
            shapes = suitesparse_group_batch(group, rng=1)
            assert len(shapes) == group.batch
            assert all(
                4 <= m <= group.cap and 4 <= n <= group.cap
                for m, n in shapes
            )

    def test_group_batch_has_varied_sizes(self):
        shapes = suitesparse_group_batch(TABLE6_GROUPS[3], rng=2)
        assert len(set(shapes)) > 10

    def test_assimilation_sizes_in_paper_range(self):
        sizes = assimilation_sizes(500, rng=0)
        assert len(sizes) == 500
        assert all(50 <= s <= 1024 for s, _ in sizes)
        assert all(m == n for m, n in sizes)

    def test_assimilation_sizes_span_range(self):
        sizes = [s for s, _ in assimilation_sizes(2000, rng=0)]
        assert min(sizes) < 100
        assert max(sizes) > 700

    def test_assimilation_rejects_zero_points(self):
        with pytest.raises(ConfigurationError):
            assimilation_sizes(0)
