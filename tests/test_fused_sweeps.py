"""Fused sweep executors vs the reference Python step loop.

The fused executors of :mod:`repro.jacobi.fused` (pair-adjacent gather
plans, the odd-even zero-gather specialization, and the Gram-cache path)
promise the *same arithmetic in the same order* as the per-step loop
wherever the reduction grouping is unchanged — so the contract tested
here is bitwise equality, not ``allclose``. The Gram-cache path changes
how inner products are produced and is held to the accuracy contract
instead.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.jacobi.batched import (
    BatchedJacobiEngine,
    StackedOneSidedJacobi,
    StackedParallelEVD,
    _compact_rows,
)
from repro.jacobi.fused import (
    KernelTimes,
    ScratchPool,
    cached_step_arrays,
    sweep_plan,
)
from repro.jacobi.onesided_vector import OneSidedConfig
from repro.jacobi.twosided_evd import TwoSidedConfig
from repro.orderings import get_ordering
from repro.types import ConvergenceTrace

ORDERINGS = ["round-robin", "odd-even", "ring"]

#: Stack shapes covering even/odd n, b == 1, square, and tall-thin.
SVD_STACK_SHAPES = [(3, 16, 8), (2, 12, 7), (1, 9, 5), (4, 6, 6), (2, 8, 2)]

EVD_STACK_SIZES = [(3, 6), (2, 5), (1, 4), (2, 3), (3, 2)]


def _svd_stack(rng, shape):
    return rng.standard_normal(shape)


def _evd_stack(rng, b, k):
    M = rng.standard_normal((b, k, k))
    return M + M.transpose(0, 2, 1)


def _traces_equal(got, want):
    return [
        [(r.sweep, r.off_norm, r.rotations) for r in t.records] for t in got
    ] == [
        [(r.sweep, r.off_norm, r.rotations) for r in t.records] for t in want
    ]


class TestSVDBitwiseEquivalence:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("cache", [True, False])
    @pytest.mark.parametrize("shape", SVD_STACK_SHAPES)
    def test_fused_matches_step_loop(self, rng, ordering, cache, shape):
        stack = _svd_stack(rng, shape)
        fused_cfg = OneSidedConfig(
            ordering=ordering, cache_inner_products=cache, fused_sweeps=True
        )
        loop_cfg = OneSidedConfig(
            ordering=ordering, cache_inner_products=cache, fused_sweeps=False
        )
        Wf, Vf, tf = StackedOneSidedJacobi(fused_cfg).solve_stack(stack.copy())
        Wl, Vl, tl = StackedOneSidedJacobi(loop_cfg).solve_stack(stack.copy())
        assert Wf.tobytes() == Wl.tobytes()
        assert Vf.tobytes() == Vl.tobytes()
        assert _traces_equal(tf, tl)

    def test_ordering_instance_accepted(self, rng):
        """Plans build from Ordering objects, not just registry names."""
        stack = _svd_stack(rng, (2, 10, 6))
        cfg = OneSidedConfig(ordering="ring")
        inst_cfg = OneSidedConfig(ordering=get_ordering("ring"))
        Wa, Va, _ = StackedOneSidedJacobi(cfg).solve_stack(stack.copy())
        Wb, Vb, _ = StackedOneSidedJacobi(inst_cfg).solve_stack(stack.copy())
        assert Wa.tobytes() == Wb.tobytes()
        assert Va.tobytes() == Vb.tobytes()

    @pytest.mark.parametrize("ordering", ORDERINGS)
    def test_report_mode_dropout_matches(self, rng, ordering):
        """A NaN-poisoned matrix drops out identically on both paths and
        cannot perturb the survivors."""
        stack = _svd_stack(rng, (4, 12, 6))
        stack[2, 3, 1] = np.nan
        out = {}
        for fused in (True, False):
            cfg = OneSidedConfig(ordering=ordering, fused_sweeps=fused)
            out[fused] = StackedOneSidedJacobi(cfg).solve_stack(
                stack.copy(), on_failure="report"
            )
        Wf, Vf, tf, ff = out[True]
        Wl, Vl, tl, fl = out[False]
        assert [i for i, _ in ff] == [i for i, _ in fl] == [2]
        assert np.isnan(Wf[2]).all() and np.isnan(Wl[2]).all()
        assert Wf.tobytes() == Wl.tobytes()
        assert Vf.tobytes() == Vl.tobytes()
        assert _traces_equal(tf, tl)

    def test_trivial_n1_stack(self, rng):
        stack = _svd_stack(rng, (3, 5, 1))
        cfg = OneSidedConfig()
        W, V, traces = StackedOneSidedJacobi(cfg).solve_stack(stack.copy())
        assert W.tobytes() == stack.tobytes()
        assert all(len(t) == 0 for t in traces)

    def test_engine_batch_matches_loop_engine(self, rng):
        """End to end through the engine: ragged batch with wide (m < n)
        matrices, fused default vs step-loop opt-out, bit-identical."""
        batch = [
            rng.standard_normal((16, 8)),
            rng.standard_normal((6, 14)),  # wide: transposed before stacking
            rng.standard_normal((8, 8)),
            rng.standard_normal((16, 8)),
        ]
        fused = BatchedJacobiEngine(OneSidedConfig()).svd_batch(batch)
        loop = BatchedJacobiEngine(
            OneSidedConfig(fused_sweeps=False)
        ).svd_batch(batch)
        for a, b in zip(fused, loop):
            assert a.U.tobytes() == b.U.tobytes()
            assert a.S.tobytes() == b.S.tobytes()
            assert a.V.tobytes() == b.V.tobytes()


class TestEVDBitwiseEquivalence:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("size", EVD_STACK_SIZES)
    def test_fused_matches_step_loop(self, rng, ordering, size):
        b, k = size
        stack = _evd_stack(rng, b, k)
        scales = np.linalg.norm(stack, axis=(1, 2))
        fused_cfg = TwoSidedConfig(ordering=ordering, fused_sweeps=True)
        loop_cfg = TwoSidedConfig(ordering=ordering, fused_sweeps=False)
        Bf, Jf, tf = StackedParallelEVD(fused_cfg).solve_stack(
            stack.copy(), scales
        )
        Bl, Jl, tl = StackedParallelEVD(loop_cfg).solve_stack(
            stack.copy(), scales
        )
        assert Bf.tobytes() == Bl.tobytes()
        assert Jf.tobytes() == Jl.tobytes()
        assert _traces_equal(tf, tl)

    def test_report_mode_dropout_matches(self, rng):
        stack = _evd_stack(rng, 3, 6)
        stack[1] = np.nan
        scales = np.where(
            np.isfinite(np.linalg.norm(stack, axis=(1, 2))),
            np.linalg.norm(stack, axis=(1, 2)),
            1.0,
        )
        out = {}
        for fused in (True, False):
            cfg = TwoSidedConfig(fused_sweeps=fused)
            out[fused] = StackedParallelEVD(cfg).solve_stack(
                stack.copy(), scales, on_failure="report"
            )
        Bf, Jf, tf, ff = out[True]
        Bl, Jl, tl, fl = out[False]
        assert [i for i, _ in ff] == [i for i, _ in fl] == [1]
        assert Bf.tobytes() == Bl.tobytes()
        assert Jf.tobytes() == Jl.tobytes()
        assert _traces_equal(tf, tl)


class TestGramCache:
    def test_requires_inner_product_cache(self):
        with pytest.raises(ConfigurationError):
            OneSidedConfig(gram_cache=True, cache_inner_products=False)

    def test_wcycle_config_mirrors_validation(self):
        from repro.core.wcycle import WCycleConfig

        with pytest.raises(ConfigurationError):
            WCycleConfig(gram_cache=True, cache_inner_products=False)

    def test_wcycle_accepts_gram_cache(self, rng):
        from repro import WCycleSVD
        from repro.core.wcycle import WCycleConfig

        A = rng.standard_normal((24, 12))
        res = WCycleSVD(WCycleConfig(gram_cache=True)).decompose(A)
        assert res.reconstruction_error(A) < 1e-12

    def test_accuracy_contract(self, rng):
        """The Gram path is not bit-identical to the loop, but it must
        meet the same accuracy contract as the reference solver."""
        batch = [
            rng.standard_normal((24, 8)),
            rng.standard_normal((64, 12)),
            rng.standard_normal((16, 16)),
        ]
        engine = BatchedJacobiEngine(OneSidedConfig(gram_cache=True))
        results = engine.svd_batch(batch)
        for A, res in zip(batch, results):
            assert res.reconstruction_error(A) < 1e-12
            want = np.linalg.svd(A, compute_uv=False)
            np.testing.assert_allclose(res.S, want, rtol=0.0, atol=1e-10)
            r = min(A.shape)
            np.testing.assert_allclose(
                res.U.T @ res.U, np.eye(r), rtol=0.0, atol=1e-12
            )
            np.testing.assert_allclose(
                res.V.T @ res.V, np.eye(r), rtol=0.0, atol=1e-12
            )

    def test_gram_implies_fused(self, rng):
        """gram_cache=True routes through the fused executor even with
        fused_sweeps=False, and stays accurate on the odd-even plan."""
        cfg = OneSidedConfig(
            gram_cache=True, fused_sweeps=False, ordering="odd-even"
        )
        A = rng.standard_normal((20, 8))
        res = BatchedJacobiEngine(cfg).svd_batch([A])[0]
        assert res.reconstruction_error(A) < 1e-12


class TestSweepPlans:
    def test_plan_cache_returns_shared_object(self):
        assert sweep_plan("round-robin", 8) is sweep_plan("round-robin", 8)
        assert sweep_plan("odd-even", 8) is sweep_plan("odd-even", 8)

    def test_neighbor_specialization_selected(self):
        assert sweep_plan("odd-even", 8).kind == "neighbor"
        assert sweep_plan("odd-even", 7).kind == "neighbor"
        assert sweep_plan("round-robin", 8).kind == "gather"
        assert sweep_plan("ring", 8).kind == "gather"

    def test_neighbor_opt_out(self):
        plan = sweep_plan("odd-even", 8, allow_neighbor=False)
        assert plan.kind == "gather"
        # Distinct cache key from the neighbor plan.
        assert plan is not sweep_plan("odd-even", 8)

    def test_plan_covers_all_pairs_once(self):
        for name in ORDERINGS:
            for n in (2, 5, 8):
                plan = sweep_plan(name, n, allow_neighbor=False)
                pairs = [
                    (int(i), int(j))
                    for step in plan.steps
                    for i, j in zip(step.idx_i, step.idx_j)
                ]
                assert sorted(pairs) == [
                    (i, j) for i in range(n) for j in range(i + 1, n)
                ]

    def test_plan_arrays_read_only(self):
        plan = sweep_plan("round-robin", 6)
        assert not plan.restore.flags.writeable
        for step in plan.steps:
            assert not step.idx_i.flags.writeable

    def test_cached_step_arrays_shared_and_correct(self):
        arrays = cached_step_arrays("round-robin", 8)
        assert arrays is cached_step_arrays("round-robin", 8)
        schedule = get_ordering("round-robin").sweep(8)
        assert len(arrays) == len(schedule)
        for (idx_i, idx_j), step in zip(arrays, schedule):
            assert list(zip(idx_i.tolist(), idx_j.tolist())) == step
            assert not idx_i.flags.writeable


class TestScratchPool:
    def test_reuses_released_buffers(self):
        pool = ScratchPool()
        a = pool.acquire((4, 3))
        pool.release(a)
        b = pool.acquire((4, 3))
        assert b is a
        assert pool.acquire((4, 3)) is not a  # a is checked out as b

    def test_clear_drops_free_list(self):
        pool = ScratchPool()
        a = pool.acquire((2, 2))
        pool.release(a)
        pool.clear()
        assert pool.acquire((2, 2)) is not a


class TestKernelTimes:
    def test_engine_records_breakdown(self, rng):
        engine = BatchedJacobiEngine(
            OneSidedConfig(), kernel_clock=time.perf_counter
        )
        engine.svd_batch([rng.standard_normal((16, 8)) for _ in range(4)])
        kt = engine.last_kernel_times
        assert kt is not None
        d = kt.as_dict()
        assert set(d) == {
            "gram_s", "rotate_s", "norms_s", "converge_s", "sweeps"
        }
        assert d["sweeps"] > 0
        assert all(v >= 0.0 for v in d.values())

    def test_no_clock_no_breakdown(self, rng):
        engine = BatchedJacobiEngine(OneSidedConfig())
        engine.svd_batch([rng.standard_normal((8, 4))])
        assert engine.last_kernel_times is None

    def test_lap_accumulates(self):
        ticks = iter(float(t) for t in range(100))
        kt = KernelTimes(lambda: next(ticks))
        t0 = kt.clock()
        t0 = kt.lap(t0, "rotate")
        kt.lap(t0, "norms")
        assert kt.rotate == 1.0 and kt.norms == 1.0


class TestHelpers:
    def test_compact_rows_keep_all_is_identity(self):
        arr = np.arange(12.0).reshape(3, 4)
        keep = np.array([True, True, True])
        assert _compact_rows(arr, keep) is arr

    def test_compact_rows_partial(self):
        arr = np.arange(12.0).reshape(3, 4)
        keep = np.array([True, False, True])
        out = _compact_rows(arr, keep)
        assert out.shape == (2, 4)
        assert np.array_equal(out, arr[[0, 2]])

    def test_bulk_append_matches_scalar_append(self):
        traces_a = [ConvergenceTrace() for _ in range(3)]
        traces_b = [ConvergenceTrace() for _ in range(3)]
        targets = np.array([2, 0])
        offs = np.array([1e-3, 2.5e-4])
        rots = np.array([7, 3])
        ConvergenceTrace.bulk_append(traces_a, targets, 1, offs, rots)
        for pos, orig in enumerate(targets):
            traces_b[orig].append(1, offs[pos], rots[pos])
        for a, b in zip(traces_a, traces_b):
            assert [
                (r.sweep, r.off_norm, r.rotations) for r in a.records
            ] == [(r.sweep, r.off_norm, r.rotations) for r in b.records]
