"""Failure-path coverage: the errors users actually hit, raised early and
with actionable messages."""

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    ConvergenceError,
    ResourceError,
    ShapeError,
    WCycleConfig,
    WCycleSVD,
)
from repro.gpusim import V100
from repro.gpusim.evd_kernel import BatchedEVDKernel
from repro.gpusim.svd_kernel import BatchedSVDKernel


class TestBadInputs:
    def test_nan_input_rejected_before_work(self):
        A = np.ones((8, 8))
        A[3, 3] = np.nan
        with pytest.raises(ShapeError, match="non-finite"):
            WCycleSVD(device="V100").decompose(A)

    def test_vector_input_rejected(self):
        with pytest.raises(ShapeError, match="2-D"):
            WCycleSVD(device="V100").decompose(np.ones(5))

    def test_complex_input_rejected(self):
        with pytest.raises(ShapeError, match="real"):
            WCycleSVD(device="V100").decompose(np.ones((3, 3), dtype=complex))

    def test_unknown_device_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown device"):
            WCycleSVD(device="H100")

    def test_bad_ordering_name(self):
        from repro.jacobi import OneSidedConfig, OneSidedJacobiSVD

        with pytest.raises(ConfigurationError, match="unknown ordering"):
            OneSidedJacobiSVD(OneSidedConfig(ordering="spiral"))


class TestBudgetExhaustion:
    # 96^2 exceeds shared memory, forcing the level path whose sweep budget
    # WCycleConfig.max_sweeps governs (the in-SM kernel has its own).
    def test_wcycle_budget_error_carries_residual(self, rng):
        A = rng.standard_normal((96, 96))
        solver = WCycleSVD(WCycleConfig(max_sweeps=1), device="V100")
        with pytest.raises(ConvergenceError) as excinfo:
            solver.decompose(A)
        assert excinfo.value.sweeps == 1
        assert 0 < excinfo.value.residual < 1.0

    def test_error_message_names_level_and_width(self, rng):
        A = rng.standard_normal((96, 96))
        solver = WCycleSVD(WCycleConfig(max_sweeps=1), device="V100")
        with pytest.raises(ConvergenceError, match=r"level 0 \(w="):
            solver.decompose(A)


class TestResourceLimits:
    def test_svd_kernel_reports_requirements(self, rng):
        with pytest.raises(ResourceError) as excinfo:
            BatchedSVDKernel(V100).run([rng.standard_normal((300, 300))])
        message = str(excinfo.value)
        assert "shared memory" in message
        assert "V100" in message

    def test_evd_kernel_reports_requirements(self, rng):
        B = rng.standard_normal((80, 80))
        with pytest.raises(ResourceError, match="shared memory"):
            BatchedEVDKernel(V100).run([(B + B.T) / 2.0])

    def test_wcycle_never_exceeds_sm_silently(self, rng):
        """The driver's group classification must keep every in-SM kernel
        call within capacity — no ResourceError may escape for any size."""
        for shape in [(700, 300), (64, 700), (1000, 50)]:
            A = rng.standard_normal(shape) * 0.1
            res = WCycleSVD(device="V100").decompose(A)
            assert res.reconstruction_error(A) < 1e-9


class TestRecoverability:
    def test_solver_reusable_after_failure(self, rng):
        """A failed decompose must not poison the solver's state."""
        solver = WCycleSVD(WCycleConfig(max_sweeps=1), device="V100")
        A = rng.standard_normal((96, 96))
        with pytest.raises(ConvergenceError):
            solver.decompose(A)
        ok_solver = WCycleSVD(device="V100")
        res = ok_solver.decompose(A)
        assert res.reconstruction_error(A) < 1e-9

    def test_batch_failure_identifies_nothing_partial(self, rng):
        """decompose_batch either returns a full batch or raises."""
        solver = WCycleSVD(WCycleConfig(max_sweeps=1), device="V100")
        batch = [rng.standard_normal((8, 8)), rng.standard_normal((96, 96))]
        with pytest.raises(ConvergenceError):
            solver.decompose_batch(batch)
