"""α-warp selection rules (paper §IV-B1)."""

import pytest

from repro.errors import ConfigurationError
from repro.tuning.alpha import ALPHA_CHOICES, alpha_gcd_rule, threads_for_alpha


class TestGcdRule:
    def test_paper_example(self):
        """m* = 48: beta = gcd(48, 32) = 16 -> alpha = 1/2 (16 threads)."""
        assert alpha_gcd_rule(48) == 0.5

    @pytest.mark.parametrize(
        "m_star,expected",
        [
            (32, 1.0),  # gcd 32
            (64, 1.0),  # gcd 32
            (16, 0.5),  # gcd 16
            (8, 0.25),  # gcd 8
            (4, 0.125),  # gcd 4
            (100, 0.125),  # gcd 4
            (7, 0.125),  # gcd 1 -> max(4, 1)/32
        ],
    )
    def test_various_heights(self, m_star, expected):
        assert alpha_gcd_rule(m_star) == expected

    def test_result_always_in_choice_set(self):
        for m_star in range(1, 200):
            assert alpha_gcd_rule(m_star) in ALPHA_CHOICES

    def test_amd_wavefront(self):
        # 64-wide wavefronts still land in the choice set.
        assert alpha_gcd_rule(64, warp_size=64) in ALPHA_CHOICES

    def test_rejects_bad_m(self):
        with pytest.raises(ConfigurationError):
            alpha_gcd_rule(0)


class TestThreadsForAlpha:
    def test_basic_geometry(self):
        # 16 pairs x half a warp = 256 threads.
        assert threads_for_alpha(0.5, 32) == 256

    def test_rounds_to_whole_warps(self):
        # 3 pairs x 8 threads = 24 -> one warp.
        assert threads_for_alpha(0.25, 6) == 32

    def test_clamped_to_block_limit(self):
        assert threads_for_alpha(1.0, 512, max_threads=1024) == 1024

    def test_minimum_one_warp(self):
        assert threads_for_alpha(0.125, 2) == 32

    def test_rejects_unknown_alpha(self):
        with pytest.raises(ConfigurationError):
            threads_for_alpha(0.3, 16)
