"""Separable convolution filters via batched SVD (paper ref [3])."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.apps.separable_filters import (
    SeparableFilter,
    convolve2d,
    convolve_separable,
    separate_filter_bank,
)
from repro.baselines import lapack_svd
from repro.errors import ConfigurationError


class _LapackBatch:
    def decompose_batch(self, matrices):
        return [lapack_svd(a) for a in matrices]


def _gaussian_kernel(k=7, sigma=1.5):
    x = np.arange(k) - k // 2
    g = np.exp(-(x**2) / (2 * sigma**2))
    K = np.outer(g, g)
    return K / K.sum()


def _sobel():
    return np.outer([1.0, 2.0, 1.0], [1.0, 0.0, -1.0])


class TestConvolutionReference:
    def test_identity_kernel(self, rng):
        img = rng.uniform(size=(10, 10))
        K = np.zeros((3, 3))
        K[0, 0] = 1.0
        out = convolve2d(img, K)
        np.testing.assert_allclose(out, img[:8, :8])

    def test_kernel_too_large(self, rng):
        with pytest.raises(ConfigurationError):
            convolve2d(rng.uniform(size=(4, 4)), np.ones((6, 6)))


class TestSeparation:
    def test_rank1_exact_for_separable_kernels(self, rng):
        # Gaussian and Sobel are exactly rank 1.
        bank = [_gaussian_kernel(), _sobel()]
        filters = separate_filter_bank(bank, _LapackBatch(), rank=1)
        for K, f in zip(bank, filters):
            np.testing.assert_allclose(f.kernel(), K, atol=1e-12)

    def test_rank1_best_approximation(self, rng):
        K = rng.standard_normal((7, 7))
        (f,) = separate_filter_bank([K], _LapackBatch(), rank=1)
        s = np.linalg.svd(K, compute_uv=False)
        assert np.linalg.norm(K - f.kernel()) == pytest.approx(
            np.sqrt((s[1:] ** 2).sum()), rel=1e-10
        )

    def test_higher_rank_reduces_error(self, rng):
        K = rng.standard_normal((9, 9))
        errors = []
        for rank in (1, 3, 6, 9):
            (f,) = separate_filter_bank([K], _LapackBatch(), rank=rank)
            errors.append(np.linalg.norm(K - f.kernel()))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < 1e-10  # full rank is exact

    def test_cost_accounting(self):
        f = SeparableFilter(columns=np.ones((7, 1)), rows=np.ones((1, 7)))
        assert f.multiplies_per_pixel() == 14  # vs 49 dense

    def test_rank_validated(self):
        with pytest.raises(ConfigurationError):
            separate_filter_bank([np.ones((3, 3))], _LapackBatch(), rank=0)


class TestSeparableConvolution:
    def test_matches_dense_for_separable_kernel(self, rng):
        img = rng.uniform(size=(20, 24))
        K = _gaussian_kernel()
        (f,) = separate_filter_bank([K], _LapackBatch(), rank=1)
        np.testing.assert_allclose(
            convolve_separable(img, f), convolve2d(img, K), atol=1e-12
        )

    def test_full_rank_matches_dense_any_kernel(self, rng):
        img = rng.uniform(size=(16, 16))
        K = rng.standard_normal((5, 5))
        (f,) = separate_filter_bank([K], _LapackBatch(), rank=5)
        np.testing.assert_allclose(
            convolve_separable(img, f), convolve2d(img, K), atol=1e-12
        )

    def test_rank1_output_error_bounded_by_kernel_error(self, rng):
        img = rng.uniform(size=(24, 24))
        K = rng.standard_normal((5, 5))
        (f,) = separate_filter_bank([K], _LapackBatch(), rank=1)
        out_err = np.abs(
            convolve_separable(img, f) - convolve2d(img, K)
        ).max()
        kernel_err = np.abs(f.kernel() - K).sum()
        assert out_err <= kernel_err * img.max() + 1e-12

    def test_wcycle_end_to_end(self, rng):
        """The ref-[3] workload: a bank of small kernels, one batched call."""
        bank = [rng.standard_normal((7, 7)) for _ in range(12)]
        filters = separate_filter_bank(bank, WCycleSVD(device="V100"), rank=2)
        assert len(filters) == 12
        for K, f in zip(bank, filters):
            s = np.linalg.svd(K, compute_uv=False)
            expected = np.sqrt((s[2:] ** 2).sum())
            assert np.linalg.norm(K - f.kernel()) == pytest.approx(
                expected, rel=1e-6
            )
