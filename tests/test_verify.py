"""The structured SVD verification battery."""


from repro import WCycleSVD
from repro.baselines import lapack_svd
from repro.types import SVDResult
from repro.verify import verify_svd


class TestVerifySvd:
    def test_good_factorization_passes(self, rng):
        A = rng.standard_normal((14, 9))
        report = verify_svd(A, lapack_svd(A))
        assert report.ok
        assert report.reconstruction_error < 1e-12

    def test_wcycle_passes(self, rng):
        A = rng.standard_normal((40, 30))
        report = verify_svd(A, WCycleSVD(device="V100").decompose(A))
        assert report.ok

    def test_corrupted_u_detected(self, rng):
        A = rng.standard_normal((10, 6))
        res = lapack_svd(A)
        res.U[:, 0] *= 2.0
        report = verify_svd(A, res)
        assert not report.ok
        assert report.u_orthogonality > 0.5

    def test_wrong_order_detected(self, rng):
        A = rng.standard_normal((8, 5))
        res = lapack_svd(A)
        bad = SVDResult(U=res.U[:, ::-1], S=res.S[::-1], V=res.V[:, ::-1])
        report = verify_svd(A, bad)
        assert not report.sv_descending
        assert not report.ok

    def test_negative_sv_detected(self, rng):
        A = rng.standard_normal((8, 5))
        res = lapack_svd(A)
        bad = SVDResult(U=-res.U, S=-res.S, V=res.V)
        report = verify_svd(A, bad)
        assert not report.sv_nonnegative

    def test_wrong_values_detected(self, rng):
        A = rng.standard_normal((8, 5))
        res = lapack_svd(A)
        bad = SVDResult(U=res.U, S=res.S * 1.5, V=res.V)
        report = verify_svd(A, bad)
        assert report.sv_error_vs_lapack > 0.1

    def test_summary_readable(self, rng):
        A = rng.standard_normal((6, 4))
        text = verify_svd(A, lapack_svd(A)).summary()
        assert "reconstruction" in text
        assert "FAIL" not in text

    def test_summary_flags_failures(self, rng):
        A = rng.standard_normal((6, 4))
        res = lapack_svd(A)
        res.U[:, 0] *= 3.0
        text = verify_svd(A, res).summary()
        assert "FAIL" in text
