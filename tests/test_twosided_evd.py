"""Two-sided Jacobi EVD — sequential reference and parallel kernel math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ConvergenceError, ShapeError
from repro.jacobi import ParallelJacobiEVD, TwoSidedConfig, TwoSidedJacobiEVD
from repro.utils.matrices import random_spd

SOLVERS = [TwoSidedJacobiEVD, ParallelJacobiEVD]


def _sym(rng, n):
    M = rng.standard_normal((n, n))
    return (M + M.T) / 2.0


@pytest.mark.parametrize("solver_cls", SOLVERS)
class TestEVDCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 20])
    def test_matches_eigh(self, rng, solver_cls, n):
        B = _sym(rng, n)
        res = solver_cls().decompose(B)
        np.testing.assert_allclose(
            res.L, np.sort(np.linalg.eigvalsh(B))[::-1], atol=1e-10
        )
        assert res.reconstruction_error(B) < 1e-12

    def test_eigenvectors_orthonormal(self, rng, solver_cls):
        B = _sym(rng, 9)
        res = solver_cls().decompose(B)
        np.testing.assert_allclose(res.J.T @ res.J, np.eye(9), atol=1e-12)

    def test_eigenpairs_satisfy_definition(self, rng, solver_cls):
        B = _sym(rng, 7)
        res = solver_cls().decompose(B)
        for k in range(7):
            np.testing.assert_allclose(
                B @ res.J[:, k], res.L[k] * res.J[:, k], atol=1e-9
            )

    def test_descending_order(self, rng, solver_cls):
        res = solver_cls().decompose(_sym(rng, 8))
        assert (np.diff(res.L) <= 1e-12).all()

    def test_negative_eigenvalues_handled(self, solver_cls):
        B = np.diag([3.0, -2.0, 1.0])
        B[0, 1] = B[1, 0] = 0.5
        res = solver_cls().decompose(B)
        assert res.L.min() < 0
        assert res.reconstruction_error(B) < 1e-12

    def test_diagonal_input_converges_immediately(self, solver_cls):
        B = np.diag([5.0, 3.0, 1.0])
        res = solver_cls().decompose(B)
        assert res.trace.sweeps == 1
        np.testing.assert_allclose(res.L, [5.0, 3.0, 1.0])

    def test_zero_matrix(self, solver_cls):
        res = solver_cls().decompose(np.zeros((4, 4)))
        np.testing.assert_array_equal(res.L, np.zeros(4))

    def test_spd_eigenvalues_positive(self, rng, solver_cls):
        B = random_spd(8, condition=1e6, rng=rng)
        res = solver_cls().decompose(B)
        assert res.L.min() > 0

    def test_rejects_asymmetric(self, rng, solver_cls):
        with pytest.raises(ShapeError):
            solver_cls().decompose(rng.standard_normal((4, 4)))

    def test_does_not_mutate_input(self, rng, solver_cls):
        B = _sym(rng, 6)
        before = B.copy()
        solver_cls().decompose(B)
        np.testing.assert_array_equal(B, before)

    def test_sweep_budget_exhaustion(self, rng, solver_cls):
        B = _sym(rng, 16)
        solver = solver_cls(TwoSidedConfig(max_sweeps=1, tol=1e-15))
        with pytest.raises(ConvergenceError):
            solver.decompose(B)


class TestParallelVsSequential:
    def test_same_eigenvalues(self, rng):
        B = _sym(rng, 12)
        seq = TwoSidedJacobiEVD().decompose(B)
        par = ParallelJacobiEVD().decompose(B)
        np.testing.assert_allclose(seq.L, par.L, atol=1e-10)

    def test_parallel_flag(self):
        assert ParallelJacobiEVD.parallel_update
        assert not TwoSidedJacobiEVD.parallel_update

    def test_rotation_counts_comparable(self, rng):
        """The parallel grouping must not blow up total rotation work."""
        B = _sym(rng, 12)
        seq = TwoSidedJacobiEVD()
        par = ParallelJacobiEVD()
        seq.decompose(B)
        par.decompose(B)
        assert par.last_rotations <= 2 * seq.last_rotations


class TestConfig:
    def test_bad_tol(self):
        with pytest.raises(ConfigurationError):
            TwoSidedConfig(tol=2.0)

    def test_bad_sweeps(self):
        with pytest.raises(ConfigurationError):
            TwoSidedConfig(max_sweeps=0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 12), seed=st.integers(0, 10_000))
def test_parallel_evd_property(n, seed):
    """Property: parallel EVD reproduces eigh's spectrum for any symmetric B."""
    gen = np.random.default_rng(seed)
    M = gen.standard_normal((n, n))
    B = (M + M.T) / 2.0
    res = ParallelJacobiEVD().decompose(B)
    np.testing.assert_allclose(
        res.L, np.sort(np.linalg.eigvalsh(B))[::-1], atol=1e-9
    )
