"""The W-cycle batched SVD driver (paper Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import assert_valid_svd
from repro import Profiler, WCycleConfig, WCycleSVD
from repro.errors import ConfigurationError, ShapeError
from repro.utils.matrices import random_with_condition


class TestConfigValidation:
    def test_defaults(self):
        cfg = WCycleConfig()
        assert cfg.tailoring and cfg.inner_sweeps == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tol": 0.0},
            {"max_sweeps": 0},
            {"w1": 0},
            {"shrink": 1},
            {"inner_sweeps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            WCycleConfig(**kwargs)


class TestSingleMatrix:
    @pytest.mark.parametrize(
        "shape",
        [(8, 8), (30, 20), (20, 30), (64, 64), (100, 80), (50, 120)],
    )
    def test_matches_lapack(self, rng, shape):
        A = rng.standard_normal(shape)
        res = WCycleSVD(device="V100").decompose(A)
        assert_valid_svd(A, res)

    def test_forced_recursion_converges(self, rng):
        """w1 = 48 on a 130-tall matrix forces group-3 recursion."""
        A = rng.standard_normal((130, 128))
        solver = WCycleSVD(WCycleConfig(w1=48), device="V100")
        res = solver.decompose(A)
        assert_valid_svd(A, res)
        assert 1 in solver.last_level_rotations  # level 1 was visited

    def test_full_inner_convergence_variant(self, rng):
        """inner_sweeps=None converges every inner solve (V-cycle-like)."""
        A = rng.standard_normal((80, 72))
        cfg = WCycleConfig(w1=36, inner_sweeps=None)
        res = WCycleSVD(cfg, device="V100").decompose(A)
        assert_valid_svd(A, res)

    def test_condition_1e6(self, rng):
        A = random_with_condition(60, 60, 1e6, rng=rng)
        res = WCycleSVD(device="V100").decompose(A)
        ref = np.linalg.svd(A, compute_uv=False)
        np.testing.assert_allclose(res.S, ref, rtol=1e-6)

    def test_input_not_mutated(self, rng):
        A = rng.standard_normal((64, 48))
        before = A.copy()
        WCycleSVD(device="V100").decompose(A)
        np.testing.assert_array_equal(A, before)


class TestBatched:
    def test_mixed_size_batch(self, rng):
        batch = [
            rng.standard_normal(shape)
            for shape in [(8, 8), (40, 40), (100, 60), (16, 48), (72, 72)]
        ]
        results = WCycleSVD(device="V100").decompose_batch(batch)
        assert len(results) == 5
        for A, res in zip(batch, results):
            assert_valid_svd(A, res)

    def test_result_order_matches_input_order(self, rng):
        # Mix SM-resident and large matrices; outputs must align.
        batch = [rng.standard_normal((100, 60)), rng.standard_normal((8, 8))]
        results = WCycleSVD(device="V100").decompose_batch(batch)
        assert results[0].U.shape[0] == 100
        assert results[1].U.shape[0] == 8

    def test_empty_batch_rejected(self):
        with pytest.raises(ShapeError):
            WCycleSVD(device="V100").decompose_batch([])

    def test_batch_of_identical_small_matrices(self, rng):
        A = rng.standard_normal((16, 16))
        results = WCycleSVD(device="V100").decompose_batch([A] * 4)
        svs = [r.S for r in results]
        for s in svs[1:]:
            np.testing.assert_allclose(s, svs[0])


class TestDevices:
    @pytest.mark.parametrize(
        "device", ["V100", "P100", "A100", "GTX-Titan-X", "Vega20"]
    )
    def test_numerics_identical_across_devices(self, rng, device):
        """The device changes costs, never the math."""
        A = rng.standard_normal((48, 36))
        res = WCycleSVD(device=device).decompose(A)
        ref = np.linalg.svd(A, compute_uv=False)
        np.testing.assert_allclose(res.S, ref, atol=1e-9)


class TestAblations:
    def test_uniform_width_still_correct(self, rng):
        """Ablation D5: forcing one w for the whole batch."""
        batch = [rng.standard_normal((60, 40)), rng.standard_normal((30, 64))]
        cfg = WCycleConfig(w1=8)
        results = WCycleSVD(cfg, device="V100").decompose_batch(batch)
        for A, res in zip(batch, results):
            assert_valid_svd(A, res)

    def test_no_tailoring_still_correct(self, rng):
        A = rng.standard_normal((64, 48))
        cfg = WCycleConfig(tailoring=False)
        assert_valid_svd(A, WCycleSVD(cfg, device="V100").decompose(A))

    def test_sequential_evd_still_correct(self, rng):
        A = rng.standard_normal((80, 64))
        cfg = WCycleConfig(parallel_evd=False)
        assert_valid_svd(A, WCycleSVD(cfg, device="V100").decompose(A))

    def test_no_cache_no_transpose_still_correct(self, rng):
        A = rng.standard_normal((20, 60))
        cfg = WCycleConfig(cache_inner_products=False, transpose_wide=False)
        assert_valid_svd(A, WCycleSVD(cfg, device="V100").decompose(A))

    @pytest.mark.parametrize("alpha", [1.0, 0.25, None, "auto"])
    def test_alpha_policies_correct(self, rng, alpha):
        A = rng.standard_normal((24, 24))
        cfg = WCycleConfig(alpha=alpha)
        assert_valid_svd(A, WCycleSVD(cfg, device="V100").decompose(A))


class TestProfiling:
    def test_profiler_sees_expected_kernels(self, rng):
        profiler = Profiler()
        batch = [rng.standard_normal((100, 80)), rng.standard_normal((8, 8))]
        WCycleSVD(device="V100").decompose_batch(batch, profiler=profiler)
        kernels = set(profiler.report.by_kernel())
        assert "batched_svd_sm" in kernels
        assert "batched_gemm_update" in kernels

    def test_evd_kernel_used_for_tall_matrices(self, rng):
        profiler = Profiler()
        # Tall enough (220 x 32 pair > 48 KB) that level-1 pairs use the
        # Gram-EVD path.
        A = rng.standard_normal((220, 90))
        WCycleSVD(WCycleConfig(w1=16), device="V100").decompose(
            A, profiler=profiler
        )
        kernels = set(profiler.report.by_kernel())
        assert "batched_evd_sm_parallel" in kernels
        assert "batched_gemm_gram" in kernels

    def test_simulated_time_positive(self, rng):
        profiler = Profiler()
        WCycleSVD(device="V100").decompose(
            rng.standard_normal((40, 40)), profiler=profiler
        )
        assert profiler.report.total_time > 0


class TestTrace:
    def test_trace_present_for_large_matrices(self, rng):
        A = rng.standard_normal((80, 80))
        res = WCycleSVD(device="V100").decompose(A)
        assert res.trace is not None
        assert res.trace.sweeps >= 1
        assert res.trace.off_norms()[-1] < 1e-12

    def test_level_rotation_accounting(self, rng):
        solver = WCycleSVD(WCycleConfig(w1=48), device="V100")
        solver.decompose(rng.standard_normal((130, 128)))
        assert solver.last_level_rotations[0] > 0
        assert solver.last_level_rotations[1] > 0


@settings(max_examples=10, deadline=None)
@given(
    m=st.integers(4, 60),
    n=st.integers(4, 60),
    seed=st.integers(0, 10_000),
)
def test_wcycle_property(m, n, seed):
    """Property: W-cycle matches LAPACK for arbitrary shapes."""
    A = np.random.default_rng(seed).standard_normal((m, n))
    res = WCycleSVD(device="V100").decompose(A)
    ref = np.linalg.svd(A, compute_uv=False)
    assert np.abs(res.S - ref).max() < 1e-8 * max(1.0, ref[0])
    assert res.reconstruction_error(A) < 1e-9
