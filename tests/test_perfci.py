"""The continuous performance-regression harness (repro.perfci)."""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.perfci import (
    SCHEMA_VERSION,
    CheckResult,
    ExtractionError,
    HistoryError,
    HostFingerprint,
    PerfCheck,
    Sample,
    all_checks,
    append_jsonl,
    append_samples,
    atomic_write_json,
    bench_meta,
    evaluate,
    evaluate_tree,
    exit_code,
    extract_value,
    history_path,
    load_jsonl,
    load_samples,
    record_samples,
    resolve_path,
    source_fingerprint,
)
from repro.perfci.checks import SourceMissing
from repro.perfci.cli import main as perf_main
from repro.perfci.regression import (
    BROKEN,
    IMPROVED,
    MISSING_SOURCE,
    NO_BASELINE,
    OK,
    REGRESSION,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

HOST_A = HostFingerprint(
    cpu_count=1, machine="x86_64", system="Linux", python="3.12", numpy="1.26"
)
HOST_B = HostFingerprint(
    cpu_count=8, machine="arm64", system="Darwin", python="3.12", numpy="1.26"
)

SPEEDUP = PerfCheck(
    name="t.speedup",
    source="BENCH_t.json",
    path="cases[case=a].speedup",
    unit="x",
    direction="higher",
    tolerance=0.20,
    noise_floor=0.1,
    window=5,
)
LATENCY = PerfCheck(
    name="t.p50",
    source="BENCH_t.json",
    path="p50_ms",
    unit="ms",
    direction="lower",
    tolerance=0.25,
    noise_floor=2.0,
    window=5,
)


def sample(check: PerfCheck, value: float, host=HOST_A, t=0.0) -> Sample:
    return Sample(
        check=check.name,
        value=value,
        unit=check.unit,
        direction=check.direction,
        source=check.source,
        host=host,
        recorded_unix=t,
    )


def series(check: PerfCheck, values, host=HOST_A) -> list[Sample]:
    return [sample(check, v, host=host, t=float(i)) for i, v in enumerate(values)]


# -------------------------------------------------------------------------
# Fingerprints and the meta block


class TestFingerprint:
    def test_current_is_stable_and_selfconsistent(self):
        a, b = HostFingerprint.current(), HostFingerprint.current()
        assert a == b
        assert a.key() == b.key()
        assert a.cpu_count == (os.cpu_count() or 1)

    def test_roundtrip_through_dict(self):
        fp = HostFingerprint.current()
        assert HostFingerprint.from_dict(fp.as_dict()) == fp

    def test_from_dict_tolerates_extras_and_gaps(self):
        fp = HostFingerprint.from_dict({"cpu_count": 4, "future_field": 1})
        assert fp.cpu_count == 4
        assert fp.machine == ""

    def test_versions_compare_at_minor_granularity(self):
        fp = HostFingerprint.from_dict(
            {**HOST_A.as_dict(), "python": "3.12.4", "numpy": "1.26.9"}
        )
        assert fp.python == "3.12"
        assert fp.numpy == "1.26"
        assert fp.key() == HOST_A.key()

    def test_different_hosts_different_keys(self):
        assert HOST_A.key() != HOST_B.key()

    def test_bench_meta_shape(self):
        meta = bench_meta("some_bench", unit="seconds")
        assert meta["benchmark"] == "some_bench"
        assert meta["unit"] == "seconds"
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["host"] == HostFingerprint.current().as_dict()


# -------------------------------------------------------------------------
# Path expressions


class TestResolvePath:
    PAYLOAD = {
        "speedup": 5.0,
        "cases": [
            {"case": "a", "speedup": 2.5, "inner": {"x": 1.0}},
            {"case": "b", "speedup": 9.0},
        ],
        "configs": [
            {"backend": "threads", "workers": 2, "t": 1.0},
            {"backend": "threads", "workers": 4, "t": 2.0},
        ],
        "modes": {"micro-batched": {"p50": 33.0}},
        "replicas": {"1": {"rps": 500.0}},
        "rows": [["case0", 256, 0.6, 0.03, 20.8]],
    }

    def test_top_level_key(self):
        assert resolve_path(self.PAYLOAD, "speedup") == 5.0

    def test_selector_over_list_of_dicts(self):
        assert resolve_path(self.PAYLOAD, "cases[case=b].speedup") == 9.0

    def test_selector_key_may_contain_x_and_parens(self):
        payload = {"cases": [{"case": "256x(16x8)", "speedup": 20.8}]}
        assert (
            resolve_path(payload, "cases[case=256x(16x8)].speedup") == 20.8
        )

    def test_multi_key_selector(self):
        assert (
            resolve_path(
                self.PAYLOAD, "configs[backend=threads,workers=4].t"
            )
            == 2.0
        )

    def test_numeric_dict_key(self):
        assert resolve_path(self.PAYLOAD, "replicas.1.rps") == 500.0

    def test_dashed_key(self):
        assert resolve_path(self.PAYLOAD, "modes.micro-batched.p50") == 33.0

    def test_list_index_selector_and_segment(self):
        assert resolve_path(self.PAYLOAD, "rows[0].4") == 20.8

    def test_nested_after_selector(self):
        assert resolve_path(self.PAYLOAD, "cases[case=a].inner.x") == 1.0

    def test_missing_key_raises(self):
        with pytest.raises(ExtractionError):
            resolve_path(self.PAYLOAD, "nope.deeper")

    def test_unmatched_selector_raises(self):
        with pytest.raises(ExtractionError):
            resolve_path(self.PAYLOAD, "cases[case=zzz].speedup")

    def test_index_out_of_range_raises(self):
        with pytest.raises(ExtractionError):
            resolve_path(self.PAYLOAD, "rows[7].0")

    def test_extract_value_rejects_non_numeric(self, tmp_path):
        (tmp_path / "BENCH_t.json").write_text(
            json.dumps({"cases": [{"case": "a", "speedup": "fast"}]})
        )
        with pytest.raises(ExtractionError):
            extract_value(SPEEDUP, tmp_path)

    def test_extract_value_missing_source(self, tmp_path):
        with pytest.raises(SourceMissing):
            extract_value(SPEEDUP, tmp_path)


# -------------------------------------------------------------------------
# Atomic storage + JSONL history


class TestStorage:
    def test_atomic_json_roundtrip_no_droppings(self, tmp_path):
        path = tmp_path / "deep" / "out.json"
        atomic_write_json(path, {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert path.read_text().endswith("\n")
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []

    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.json"
        atomic_write_json(path, {"v": "old"})

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr("repro.perfci.storage.os.replace", boom)
        with pytest.raises(OSError):
            atomic_write_json(path, {"v": "new"})
        assert json.loads(path.read_text()) == {"v": "old"}
        # The temp file was cleaned up, not stranded.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_append_jsonl_accumulates(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_jsonl(path, [{"a": 1}])
        append_jsonl(path, [{"b": 2}, {"c": 3}])
        assert load_jsonl(path) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_load_missing_is_empty(self, tmp_path):
        assert load_jsonl(tmp_path / "absent.jsonl") == []

    def test_malformed_line_raises_history_error(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"ok": 1}\n{"torn": \n')
        with pytest.raises(HistoryError):
            load_jsonl(path)

    def test_append_to_torn_tail_refuses(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"ok": 1}\n{"torn"')
        with pytest.raises(HistoryError):
            append_jsonl(path, [{"new": 2}])
        # Refusal must not have touched the file.
        assert path.read_text() == '{"ok": 1}\n{"torn"'

    def test_sample_roundtrip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        s = sample(SPEEDUP, 2.5)
        append_samples(path, [s])
        [loaded] = load_samples(path)
        assert loaded == s

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "h.jsonl"
        record = sample(SPEEDUP, 2.5).as_dict()
        record["schema"] = SCHEMA_VERSION + 1
        append_jsonl(path, [record])
        with pytest.raises(HistoryError):
            load_samples(path)


# -------------------------------------------------------------------------
# The regression math


class TestRegressionMath:
    def test_empty_history_is_no_baseline(self):
        result = evaluate(SPEEDUP, 2.5, [], HOST_A)
        assert result.status == NO_BASELINE
        assert not result.failed
        assert exit_code([result]) == 0

    def test_single_sample_baseline_works(self):
        history = series(SPEEDUP, [2.5])
        assert evaluate(SPEEDUP, 2.45, history, HOST_A).status == OK
        bad = evaluate(SPEEDUP, 1.0, history, HOST_A)
        assert bad.status == REGRESSION
        assert bad.window_used == 1

    def test_regression_trips_gate(self):
        history = series(SPEEDUP, [2.4, 2.5, 2.6, 2.5, 2.5])
        result = evaluate(SPEEDUP, 1.8, history, HOST_A)
        assert result.status == REGRESSION
        assert result.failed
        assert result.baseline == 2.5
        assert result.degradation == pytest.approx((2.5 - 1.8) / 2.5)
        assert exit_code([result]) == 1

    def test_within_tolerance_ok(self):
        history = series(SPEEDUP, [2.5] * 5)
        assert evaluate(SPEEDUP, 2.2, history, HOST_A).status == OK

    def test_windowed_baseline_ignores_ancient_samples(self):
        # Five recent slow samples; the glorious 10x era before them
        # must not set the bar (window=5).
        history = series(SPEEDUP, [10.0, 10.0, 10.0, 2.5, 2.5, 2.5, 2.5, 2.5])
        result = evaluate(SPEEDUP, 2.4, history, HOST_A)
        assert result.status == OK
        assert result.baseline == 2.5
        assert result.window_used == 5

    def test_fingerprint_mismatch_excluded(self):
        # A fast other-host history must not judge this host.
        history = series(SPEEDUP, [10.0, 10.0, 10.0], host=HOST_B)
        result = evaluate(SPEEDUP, 2.5, history, HOST_A)
        assert result.status == NO_BASELINE

    def test_mixed_hosts_use_only_matching(self):
        history = series(SPEEDUP, [10.0] * 5, host=HOST_B) + series(
            SPEEDUP, [2.5, 2.6], host=HOST_A
        )
        result = evaluate(SPEEDUP, 2.5, history, HOST_A)
        assert result.status == OK
        assert result.window_used == 2

    def test_median_shrugs_off_one_outlier(self):
        # One freak 9x run in the window: the median baseline stays
        # ~2.5, so a normal 2.4 run does not page.
        history = series(SPEEDUP, [2.5, 2.6, 9.0, 2.5, 2.4])
        result = evaluate(SPEEDUP, 2.4, history, HOST_A)
        assert result.status == OK
        assert result.baseline == 2.5

    def test_noise_floor_suppresses_tiny_absolute_deltas(self):
        tiny = PerfCheck(
            name="t.tiny",
            source="BENCH_t.json",
            path="v",
            unit="s",
            direction="lower",
            tolerance=0.10,
            noise_floor=0.05,
        )
        history = series(tiny, [0.010, 0.011, 0.010])
        # +300% relative, but 0.03 s absolute < 0.05 s floor: noise.
        assert evaluate(tiny, 0.040, history, HOST_A).status == OK
        # Past the floor the same relative rule applies.
        assert evaluate(tiny, 0.080, history, HOST_A).status == REGRESSION

    def test_direction_higher_never_flags_improvement(self):
        history = series(SPEEDUP, [2.5] * 5)
        result = evaluate(SPEEDUP, 250.0, history, HOST_A)
        assert result.status == IMPROVED
        assert not result.failed

    def test_direction_lower_latency(self):
        history = series(LATENCY, [30.0, 33.0, 31.0])
        assert evaluate(LATENCY, 45.0, history, HOST_A).status == REGRESSION
        assert evaluate(LATENCY, 10.0, history, HOST_A).status == IMPROVED
        assert evaluate(LATENCY, 33.5, history, HOST_A).status == OK

    def test_zero_baseline_counter(self):
        counter = PerfCheck(
            name="t.counter",
            source="BENCH_t.json",
            path="n",
            unit="events",
            direction="lower",
            tolerance=0.10,
            noise_floor=0.5,
        )
        history = series(counter, [0.0, 0.0, 0.0])
        assert evaluate(counter, 0.0, history, HOST_A).status == OK
        tripped = evaluate(counter, 3.0, history, HOST_A)
        assert tripped.status == REGRESSION
        assert tripped.degradation == float("inf")

    def test_window_override(self):
        history = series(SPEEDUP, [10.0, 10.0, 10.0, 10.0, 2.5])
        assert (
            evaluate(SPEEDUP, 2.5, history, HOST_A, window=1).status == OK
        )
        assert (
            evaluate(SPEEDUP, 2.5, history, HOST_A, window=5).status
            == REGRESSION
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfCheck(
                name="bad", source="s", path="p", unit="", direction="up",
                tolerance=0.1,
            )
        with pytest.raises(ValueError):
            PerfCheck(
                name="bad", source="s", path="p", unit="",
                direction="higher", tolerance=-0.1,
            )


# -------------------------------------------------------------------------
# Tree evaluation (sources + fingerprints together)


def _write_tree(tmp_path, speedup=2.5, host=HOST_A, with_meta=True):
    payload = {
        "cases": [{"case": "a", "speedup": speedup}],
        "p50_ms": 33.0,
    }
    if with_meta:
        payload["meta"] = {
            "benchmark": "t",
            "unit": "x",
            "schema_version": SCHEMA_VERSION,
            "host": host.as_dict(),
        }
    atomic_write_json(tmp_path / "BENCH_t.json", payload)
    return tmp_path


class TestEvaluateTree:
    def test_missing_source_skips(self, tmp_path):
        [result] = evaluate_tree([SPEEDUP], tmp_path, [], HOST_A)
        assert result.status == MISSING_SOURCE
        assert not result.failed

    def test_vanished_metric_fails(self, tmp_path):
        atomic_write_json(tmp_path / "BENCH_t.json", {"cases": []})
        [result] = evaluate_tree([SPEEDUP], tmp_path, [], HOST_A)
        assert result.status == BROKEN
        assert result.failed
        assert exit_code([result]) == 1

    def test_meta_host_governs_baseline_selection(self, tmp_path):
        # The payload was recorded on HOST_A; history has HOST_A
        # samples. Even when `check` runs on HOST_B, the committed
        # file gates against the committed baseline.
        _write_tree(tmp_path, speedup=1.0, host=HOST_A)
        history = series(SPEEDUP, [2.5, 2.5, 2.5], host=HOST_A)
        [result] = evaluate_tree(
            [SPEEDUP], tmp_path, history, fingerprint=HOST_B
        )
        assert result.status == REGRESSION

    def test_ambient_fingerprint_without_meta(self, tmp_path):
        _write_tree(tmp_path, speedup=1.0, with_meta=False)
        history = series(SPEEDUP, [2.5] * 3, host=HOST_B)
        [result] = evaluate_tree(
            [SPEEDUP], tmp_path, history, fingerprint=HOST_B
        )
        assert result.status == REGRESSION
        [result] = evaluate_tree(
            [SPEEDUP], tmp_path, history, fingerprint=HOST_A
        )
        assert result.status == NO_BASELINE

    def test_source_fingerprint_helper(self, tmp_path):
        _write_tree(tmp_path, host=HOST_A)
        assert (
            source_fingerprint(tmp_path, "BENCH_t.json", HOST_B) == HOST_A
        )
        assert (
            source_fingerprint(tmp_path, "nope.json", HOST_B) == HOST_B
        )


# -------------------------------------------------------------------------
# Recording


class TestRecord:
    def test_record_samples_and_skips(self, tmp_path):
        _write_tree(tmp_path)
        other = PerfCheck(
            name="t.absent",
            source="BENCH_absent.json",
            path="x",
            unit="",
            direction="higher",
            tolerance=0.1,
        )
        samples, skipped = record_samples(
            tmp_path, [SPEEDUP, LATENCY, other], now=123.0, note="n"
        )
        assert [s.check for s in samples] == ["t.speedup", "t.p50"]
        assert skipped == ["t.absent"]
        assert all(s.recorded_unix == 123.0 for s in samples)
        assert all(s.note == "n" for s in samples)

    def test_record_prefers_meta_host(self, tmp_path):
        _write_tree(tmp_path, host=HOST_B)
        samples, _ = record_samples(
            tmp_path, [SPEEDUP], fingerprint=HOST_A
        )
        assert samples[0].host == HOST_B

    def test_record_falls_back_to_ambient(self, tmp_path):
        _write_tree(tmp_path, with_meta=False)
        samples, _ = record_samples(
            tmp_path, [SPEEDUP], fingerprint=HOST_A
        )
        assert samples[0].host == HOST_A


# -------------------------------------------------------------------------
# The CLI, end to end on synthetic trees


class TestCli:
    def test_list(self, capsys):
        assert perf_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "engine.64x64x32.speedup" in out
        assert "serve.fused_speedup" in out

    def test_list_json(self, capsys):
        assert perf_main(["list", "--format", "json"]) == 0
        names = {c["name"] for c in json.loads(capsys.readouterr().out)}
        assert "engine.256x16x8.speedup" in names
        assert "sidecar.perf_wallclock.case0_speedup" in names

    def test_record_then_check_clean(self, tmp_path, capsys):
        _write_tree(tmp_path)
        root = str(tmp_path)
        assert perf_main(["record", "--root", root, "--note", "seed"]) == 0
        assert history_path(tmp_path).exists()
        # Registry checks other than the defaults are absent in this
        # tree; only the skipped names show, and the gate stays green.
        assert perf_main(["check", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "missing-source" in out

    def test_injected_regression_trips_gate(self, tmp_path, capsys):
        # The acceptance fixture: record a healthy history, then
        # degrade a hot-path metric in the payload past tolerance.
        _write_tree(tmp_path, speedup=5.6)
        root = str(tmp_path)
        for _ in range(3):
            assert perf_main(["record", "--root", root]) == 0
        assert perf_main(["check", "--root", root]) == 0
        capsys.readouterr()
        _write_tree(tmp_path, speedup=2.0)  # gave back the PR 6 win
        assert perf_main(["check", "--root", root]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "t.speedup" in out

    def test_degradation_within_noise_floor_passes(self, tmp_path):
        _write_tree(tmp_path, speedup=5.6)
        root = str(tmp_path)
        perf_main(["record", "--root", root])
        _write_tree(tmp_path, speedup=5.55)  # < 0.1 floor
        assert perf_main(["check", "--root", root]) == 0

    def test_check_json_output(self, tmp_path, capsys):
        _write_tree(tmp_path)
        root = str(tmp_path)
        perf_main(["record", "--root", root])
        capsys.readouterr()
        assert perf_main(["check", "--root", root, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        by_name = {r["check"]: r for r in doc["results"]}
        assert by_name["t.speedup"]["status"] == OK

    def test_select_unknown_check_usage_error(self, tmp_path, capsys):
        assert (
            perf_main(["check", "--root", str(tmp_path), "--select", "bogus"])
            == 2
        )
        assert "unknown perf check" in capsys.readouterr().err

    def test_corrupt_history_usage_error(self, tmp_path, capsys):
        _write_tree(tmp_path)
        path = history_path(tmp_path)
        path.parent.mkdir(parents=True)
        path.write_text("not json\n")
        assert perf_main(["check", "--root", str(tmp_path)]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_strict_turns_skips_into_failures(self, tmp_path):
        _write_tree(tmp_path)
        assert perf_main(["check", "--root", str(tmp_path), "--strict"]) == 1

    def test_report(self, tmp_path, capsys):
        _write_tree(tmp_path)
        root = str(tmp_path)
        perf_main(["record", "--root", root])
        perf_main(["record", "--root", root])
        capsys.readouterr()
        assert (
            perf_main(
                ["report", "--root", root, "--select", "t.speedup"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "t.speedup (2 sample(s))" in out

    def test_record_dry_run_writes_nothing(self, tmp_path):
        _write_tree(tmp_path)
        assert perf_main(["record", "--root", str(tmp_path), "--dry-run"]) == 0
        assert not history_path(tmp_path).exists()


# The synthetic tree registers ad-hoc checks by passing them directly;
# the CLI path, however, uses the global registry, which the synthetic
# tree does not populate. Register the two test checks once.
def setup_module(module):
    from repro.perfci import checks as checks_mod

    for check in (SPEEDUP, LATENCY):
        if check.name not in {c.name for c in all_checks()}:
            checks_mod.register(check)


def teardown_module(module):
    from repro.perfci.checks import _REGISTRY

    _REGISTRY.pop("t.speedup", None)
    _REGISTRY.pop("t.p50", None)


# -------------------------------------------------------------------------
# The real repository: the acceptance criteria from ISSUE 10


class TestRealRepo:
    def test_every_default_check_extracts_or_is_absent(self):
        for check in all_checks():
            if check.name.startswith("t."):
                continue
            try:
                value = extract_value(check, REPO_ROOT)
            except SourceMissing:
                continue
            assert isinstance(value, float)
            assert value == value, check.name  # not NaN
            assert abs(value) != float("inf"), check.name

    def test_check_exits_zero_on_real_tree(self):
        # The shipped BENCH files + committed history must gate green:
        # a red baseline in a fresh checkout would make every future
        # perf PR start from a failing gate.
        results = evaluate_tree(
            [c for c in all_checks() if not c.name.startswith("t.")],
            REPO_ROOT,
            load_samples(history_path(REPO_ROOT)),
        )
        failed = [r.as_dict() for r in results if r.failed]
        assert exit_code(results) == 0, failed

    def test_committed_history_exists_and_is_fingerprinted(self):
        samples = load_samples(history_path(REPO_ROOT))
        assert samples, "benchmarks/history/perf.jsonl must ship a baseline"
        for s in samples:
            assert s.schema == SCHEMA_VERSION
            assert s.host.cpu_count >= 1
            assert s.direction in ("higher", "lower")

    def test_committed_bench_files_carry_unified_meta(self):
        for name in (
            "BENCH_wallclock.json",
            "BENCH_serve.json",
            "BENCH_cluster.json",
        ):
            payload = json.loads((REPO_ROOT / name).read_text())
            meta = payload["meta"]
            assert meta["benchmark"] == payload["benchmark"], name
            assert meta["unit"] == payload["unit"], name
            assert meta["schema_version"] == SCHEMA_VERSION, name
            host = HostFingerprint.from_dict(meta["host"])
            assert host.cpu_count == payload["cpu_count"], name

    def test_synthetic_hotpath_regression_trips_on_real_payloads(
        self, tmp_path, capsys
    ):
        # ISSUE 10 acceptance: a degraded 64x(64x32) engine speedup on
        # an otherwise-real tree must exit nonzero.
        import shutil

        for name in (
            "BENCH_wallclock.json",
            "BENCH_serve.json",
            "BENCH_cluster.json",
        ):
            shutil.copy(REPO_ROOT / name, tmp_path / name)
        sidecar_dir = tmp_path / "benchmarks" / "results"
        sidecar_dir.mkdir(parents=True)
        real_sidecar = REPO_ROOT / "benchmarks/results/perf_wallclock.json"
        if real_sidecar.exists():
            shutil.copy(real_sidecar, sidecar_dir / "perf_wallclock.json")
        root = str(tmp_path)
        perf_main(["record", "--root", root])
        assert perf_main(["check", "--root", root]) == 0

        payload = json.loads((tmp_path / "BENCH_wallclock.json").read_text())
        for case in payload["cases"]:
            if case["case"] == "64x(64x32)":
                case["speedup"] *= 0.5  # regression far past tolerance
        atomic_write_json(tmp_path / "BENCH_wallclock.json", payload)
        capsys.readouterr()
        assert perf_main(["check", "--root", root]) == 1
        out = capsys.readouterr().out
        assert "engine.64x64x32.speedup" in out
        assert "FAIL" in out
