"""Micro-batcher semantics: buckets, ordering, and flush triggers.

The batcher is a pure data structure (every method takes ``now``), so
these tests drive every flush trigger with explicit timestamps — no
sleeps, no wall clock.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.batcher import FLUSH_CAUSES, MicroBatcher
from repro.serve.request import ServeRequest


def make_request(
    request_id,
    shape=(8, 4),
    *,
    priority=0,
    deadline=None,
    arrival=0.0,
):
    return ServeRequest(
        request_id=request_id,
        matrix=np.zeros(shape),
        priority=priority,
        deadline=deadline,
        arrival=arrival,
    )


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(max_wait=-1.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(deadline_slack=-0.1)


class TestBucketIsolation:
    def test_shapes_never_mix(self):
        batcher = MicroBatcher(max_batch=2, max_wait=1.0)
        assert batcher.add(make_request(0, (8, 4)), now=0.0) == []
        assert batcher.add(make_request(1, (16, 8)), now=0.0) == []
        # Filling the 8x4 bucket flushes only the 8x4 requests.
        flushed = batcher.add(make_request(2, (8, 4)), now=0.0)
        assert len(flushed) == 1
        assert flushed[0].shape == (8, 4)
        assert flushed[0].request_ids == (0, 2)
        # The 16x8 request is still queued in its own bucket.
        assert len(batcher) == 1
        assert batcher.bucket_depths == {(16, 8): 1}

    def test_wait_flush_takes_only_the_due_bucket(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.010)
        batcher.add(make_request(0, (8, 4), arrival=0.0), now=0.0)
        batcher.add(make_request(1, (16, 8), arrival=0.008), now=0.008)
        due = batcher.due(now=0.011)
        assert [b.shape for b in due] == [(8, 4)]
        assert due[0].cause == "wait"
        assert len(batcher) == 1


class TestFlushTriggers:
    def test_fill_flush_fires_on_add(self):
        batcher = MicroBatcher(max_batch=3, max_wait=10.0)
        for i in range(2):
            assert batcher.add(make_request(i), now=0.0) == []
        flushed = batcher.add(make_request(2), now=0.0)
        assert len(flushed) == 1
        assert flushed[0].cause == "fill"
        assert len(flushed[0]) == 3
        assert len(batcher) == 0

    def test_wait_flush_respects_max_wait(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.005)
        batcher.add(make_request(0, arrival=1.000), now=1.000)
        assert batcher.due(now=1.004) == []
        due = batcher.due(now=1.006)
        assert len(due) == 1
        assert due[0].cause == "wait"

    def test_deadline_pressure_flush(self):
        batcher = MicroBatcher(
            max_batch=8, max_wait=10.0, deadline_slack=0.002
        )
        batcher.add(
            make_request(0, deadline=0.010, arrival=0.0), now=0.0
        )
        # Far from the deadline: no pressure yet.
        assert batcher.due(now=0.005) == []
        # Within the slack: flush even though max_wait is nowhere near.
        due = batcher.due(now=0.008)
        assert len(due) == 1
        assert due[0].cause == "deadline"

    def test_drain_flushes_everything(self):
        batcher = MicroBatcher(max_batch=4, max_wait=10.0)
        for i, shape in enumerate([(8, 4), (16, 8), (8, 4)]):
            batcher.add(make_request(i, shape), now=0.0)
        drained = batcher.drain(now=0.0)
        assert sorted(len(b) for b in drained) == [1, 2]
        assert all(b.cause == "drain" for b in drained)
        assert len(batcher) == 0

    def test_stream_flushes_in_max_batch_chunks(self):
        batcher = MicroBatcher(max_batch=2, max_wait=10.0)
        flushed = []
        for i in range(5):
            flushed += batcher.add(make_request(i), now=0.0)
        flushed += batcher.drain(now=0.0)
        assert [len(b) for b in flushed] == [2, 2, 1]
        assert [b.cause for b in flushed] == ["fill", "fill", "drain"]

    def test_flush_causes_constant_is_exhaustive(self):
        assert set(FLUSH_CAUSES) == {"fill", "wait", "deadline", "drain"}


class TestOrdering:
    def test_priority_orders_dequeue(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.0)
        for rid, priority in [(0, 0), (1, 5), (2, 1)]:
            batcher.add(make_request(rid, priority=priority), now=0.0)
        (batch,) = batcher.due(now=0.0)
        assert batch.request_ids == (1, 2, 0)

    def test_edf_within_a_priority_band(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.0)
        for rid, deadline in [(0, 0.9), (1, 0.3), (2, None)]:
            batcher.add(make_request(rid, deadline=deadline), now=0.0)
        (batch,) = batcher.due(now=0.0)
        # Earliest deadline first; deadline-free requests go last.
        assert batch.request_ids == (1, 0, 2)

    def test_fifo_breaks_remaining_ties(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.0)
        for rid in (3, 7, 5):
            batcher.add(make_request(rid), now=0.0)
        (batch,) = batcher.due(now=0.0)
        assert batch.request_ids == (3, 5, 7)

    def test_priority_beats_deadline(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.0)
        batcher.add(make_request(0, priority=0, deadline=0.1), now=0.0)
        batcher.add(make_request(1, priority=1, deadline=None), now=0.0)
        (batch,) = batcher.due(now=0.0)
        assert batch.request_ids == (1, 0)


class TestNextDue:
    def test_empty_batcher_has_no_horizon(self):
        assert MicroBatcher().next_due(now=0.0) is None

    def test_wait_horizon(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.010)
        batcher.add(make_request(0, arrival=1.0), now=1.0)
        assert batcher.next_due(now=1.0) == pytest.approx(0.010)
        assert batcher.next_due(now=1.004) == pytest.approx(0.006)

    def test_deadline_tightens_the_horizon(self):
        batcher = MicroBatcher(
            max_batch=8, max_wait=10.0, deadline_slack=0.001
        )
        batcher.add(
            make_request(0, deadline=0.005, arrival=0.0), now=0.0
        )
        assert batcher.next_due(now=0.0) == pytest.approx(0.004)

    def test_overdue_clamps_to_zero(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.001)
        batcher.add(make_request(0, arrival=0.0), now=0.0)
        assert batcher.next_due(now=5.0) == 0.0
