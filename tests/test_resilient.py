"""Resilient executor unit contracts: policy, spec grammar, supervision.

End-to-end chaos scenarios (kill/hang/nan/shm loss against the real
solvers, with bit-identity assertions) live in ``test_chaos.py``; this
module pins the building blocks — :class:`RetryPolicy` validation, the
``REPRO_FAULTS`` grammar, deterministic draws, the degradation ladder,
and the supervised ``map`` loop's retry/deadline/quarantine behavior.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DeadlineExceeded,
    WorkerCrashError,
)
from repro.runtime import (
    ResilientExecutor,
    RetryPolicy,
    RuntimeConfig,
    SerialExecutor,
    TaskError,
    ThreadExecutor,
    base_executor,
    degradation_ladder,
    faults,
    get_executor,
    policy_of,
    retry_backoff,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.task_timeout is None
        assert policy.on_failure == "raise"

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(task_timeout=0.0)

    def test_rejects_unknown_failure_mode(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(on_failure="ignore")


class TestBackoff:
    def test_deterministic_doubling(self):
        assert retry_backoff(1, base=0.02, cap=1.0) == pytest.approx(0.02)
        assert retry_backoff(2, base=0.02, cap=1.0) == pytest.approx(0.04)
        assert retry_backoff(3, base=0.02, cap=1.0) == pytest.approx(0.08)

    def test_capped(self):
        assert retry_backoff(30, base=0.02, cap=1.0) == 1.0

    def test_rejects_zeroth_attempt(self):
        with pytest.raises(ConfigurationError):
            retry_backoff(0)


class TestDegradationLadder:
    def test_processes_fall_to_threads_then_serial(self):
        assert degradation_ladder("processes") == (
            "processes", "threads", "serial"
        )

    def test_threads_fall_to_serial(self):
        assert degradation_ladder("threads") == ("threads", "serial")

    def test_persistent_falls_straight_to_serial(self):
        # No thread rung: arena SlotRef tasks must never retry on a rung
        # that cannot be terminated after a missed deadline — a zombie
        # thread could touch slots after their leases are re-leased.
        assert degradation_ladder("persistent") == ("persistent", "serial")

    def test_serial_has_no_fallback(self):
        assert degradation_ladder("serial") == ("serial",)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            degradation_ladder("gpu")


class TestFaultSpecGrammar:
    def test_full_spec(self):
        plan = faults.parse_spec(
            "seed=7;kill:p=0.5,backend=processes;nan:p=0.25,attempts=2"
        )
        assert plan.seed == 7
        assert [c.kind for c in plan.clauses] == ["kill", "nan"]
        assert plan.clauses[0].p == 0.5
        assert plan.clauses[0].backend == "processes"
        assert plan.clauses[1].attempts == 2

    def test_bare_kind_defaults(self):
        clause = faults.parse_spec("hang").clauses[0]
        assert clause.p == 1.0
        assert clause.attempts == 1
        assert clause.delay == pytest.approx(0.05)

    def test_empty_spec_is_falsy_plan(self):
        assert not faults.parse_spec("seed=3")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.parse_spec("oom:p=1.0")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.parse_spec("kill:rate=1.0")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.parse_spec("kill:p=often")

    def test_bad_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.parse_spec("seed=entropy")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            faults.parse_spec("kill:p=1.5")

    def test_env_plan_roundtrip(self):
        plan = faults.env_plan({"REPRO_FAULTS": "seed=9;kill:p=1.0"})
        assert plan is not None and plan.seed == 9
        assert faults.env_plan({}) is None


class TestFaultFrames:
    def test_no_injection_without_frame(self):
        faults.install(faults.parse_spec("seed=1;kill:p=1.0"))
        try:
            faults.on_task_start()  # no frame -> no-op
            assert not faults.active()
        finally:
            faults.uninstall()

    def test_kill_fires_inside_frame(self):
        plan = faults.parse_spec("seed=1;kill:p=1.0")
        with faults.activate(plan, "t0", backend="threads"):
            assert faults.active()
            with pytest.raises(WorkerCrashError):
                faults.on_task_start()

    def test_draws_are_deterministic_per_key(self):
        plan = faults.parse_spec("seed=5;kill:p=0.5")
        outcomes = []
        for key in [f"t{i}" for i in range(16)] * 2:
            with faults.activate(plan, key, backend="threads"):
                try:
                    faults.on_task_start()
                    outcomes.append(False)
                except WorkerCrashError:
                    outcomes.append(True)
        assert outcomes[:16] == outcomes[16:]
        assert any(outcomes) and not all(outcomes)

    def test_attempt_gate_stops_retries(self):
        plan = faults.parse_spec("seed=1;kill:p=1.0,attempts=1")
        with faults.activate(plan, "t0", attempt=1, backend="threads"):
            faults.on_task_start()  # attempt >= clause budget: clean

    def test_backend_filter(self):
        plan = faults.parse_spec("seed=1;kill:p=1.0,backend=processes")
        with faults.activate(plan, "t0", backend="serial"):
            faults.on_task_start()  # wrong backend: clean

    def test_nested_activation_keeps_outer_identity(self):
        plan = faults.parse_spec("seed=1;kill:p=1.0,match=outer")
        with faults.activate(plan, "outer", backend="threads"):
            with faults.activate(plan, "inner", backend="threads"):
                assert faults.current().key == "outer"

    def test_hang_on_serial_raises_deadline(self):
        plan = faults.parse_spec("seed=1;hang:p=1.0,delay=0.01")
        with faults.activate(plan, "t0", backend="serial"):
            with pytest.raises(DeadlineExceeded):
                faults.on_task_start()


class _FailFirst:
    """Raise ``exc`` on the first call per item, then compute ``x * 2``."""

    def __init__(self, exc: Exception) -> None:
        self.exc = exc
        self.seen: set = set()

    def __call__(self, x):
        if x not in self.seen:
            self.seen.add(x)
            raise self.exc
        return x * 2


class TestSupervisedMap:
    def test_clean_map_passthrough(self):
        with ResilientExecutor(ThreadExecutor(2)) as ex:
            # threads: nothing is pickled
            out = ex.map(lambda x: x + 1, [1, 2, 3])  # repro: noqa[PICK01]
            assert out == [2, 3, 4]
            assert ex.last_failures == []

    def test_retry_recovers_and_records_history(self):
        fn = _FailFirst(WorkerCrashError("boom"))
        with ResilientExecutor(
            ThreadExecutor(2), RetryPolicy(max_retries=1, backoff_base=0.0)
        ) as ex:
            assert ex.map(fn, [1, 2]) == [2, 4]
            causes = {f.cause for f in ex.last_failures}
        assert causes == {"WorkerCrashError"}
        assert len(fn.seen) == 2

    def test_budget_exhaustion_raises_original(self):
        with ResilientExecutor(
            ThreadExecutor(2), RetryPolicy(max_retries=0)
        ) as ex:
            with pytest.raises(WorkerCrashError):
                ex.map(_FailFirst(WorkerCrashError("boom")), [1])

    def test_numerical_failure_never_retried(self):
        fn = _FailFirst(ConvergenceError("stuck", sweeps=3, residual=0.1))
        with ResilientExecutor(
            ThreadExecutor(2), RetryPolicy(max_retries=3, backoff_base=0.0)
        ) as ex:
            with pytest.raises(ConvergenceError):
                ex.map(fn, [1])
            assert len(ex.last_failures) == 1  # one attempt, no retries

    def test_capture_mode_returns_task_error_with_history(self):
        fn = _FailFirst(ConvergenceError("stuck", sweeps=3, residual=0.1))
        with ResilientExecutor(ThreadExecutor(2)) as ex:
            out = ex.map(fn, [1, 2], on_error="return")
        good = [o for o in out if not isinstance(o, TaskError)]
        bad = [o for o in out if isinstance(o, TaskError)]
        # _FailFirst keys on the item, so both items fail their first call.
        assert good == [] and len(bad) == 2
        assert all(isinstance(e.error, ConvergenceError) for e in bad)
        assert all(len(e.failures) == 1 for e in bad)

    def test_deadline_enforced_on_pool_rung(self):
        def sleepy(x):
            time.sleep(0.5)
            return x

        with ResilientExecutor(
            ThreadExecutor(2),
            RetryPolicy(max_retries=0, task_timeout=0.05),
        ) as ex:
            with pytest.raises(DeadlineExceeded):
                ex.map(sleepy, [1])  # repro: noqa[PICK01] threads

    def test_ladder_retry_escapes_backend_bound_fault(self, chaos):
        """A kill pinned to the threads backend cannot follow the task to
        the serial rung, so one retry recovers."""
        chaos("seed=2;kill:p=1.0,backend=threads,attempts=99")
        with ResilientExecutor(
            ThreadExecutor(2), RetryPolicy(max_retries=1, backoff_base=0.0)
        ) as ex:
            out = ex.map(lambda x: x * 10, [1, 2])  # repro: noqa[PICK01]
            assert out == [10, 20]
            rungs = {f.cause for f in ex.last_failures}
        assert rungs == {"WorkerCrashError"}

    def test_nested_map_runs_inline_under_outer_frame(self):
        with ResilientExecutor(ThreadExecutor(2)) as ex:

            def outer(i):
                inner = ex.map(lambda j: i * 10 + j, [0, 1])  # repro: noqa[PICK01]
                return sum(inner)

            assert ex.map(outer, [1, 2]) == [21, 41]  # repro: noqa[PICK01] threads


class TestWiring:
    def test_policy_of_plain_executor_is_none(self):
        ex = SerialExecutor()
        assert policy_of(ex) is None
        assert base_executor(ex) is ex

    def test_get_executor_wraps_on_resilience_fields(self):
        cfg = RuntimeConfig(max_retries=1)
        ex = get_executor(cfg)
        try:
            assert isinstance(ex, ResilientExecutor)
            assert ex.policy.max_retries == 1
            assert isinstance(base_executor(ex), SerialExecutor)
        finally:
            ex.close()

    def test_get_executor_wraps_under_installed_plan(self, chaos):
        chaos("seed=1;nan:p=0.1")
        ex = get_executor(RuntimeConfig())
        try:
            assert isinstance(ex, ResilientExecutor)
        finally:
            ex.close()

    def test_runtime_config_on_failure_travels_to_policy(self):
        ex = get_executor(RuntimeConfig(on_failure="quarantine"))
        try:
            assert policy_of(ex).on_failure == "quarantine"
        finally:
            ex.close()

    def test_mirrors_scheduling_surface(self):
        inner = ThreadExecutor(3, min_shard=7)
        with ResilientExecutor(inner) as ex:
            assert ex.backend == "threads"
            assert ex.workers == 3
            assert ex.min_shard == 7
            assert ex.supports_shared_state == inner.supports_shared_state
