"""Result-type behaviour: SVDResult, EVDResult, traces, batches."""

import numpy as np
import pytest

from repro.types import (
    BatchedSVDResult,
    ConvergenceTrace,
    EVDResult,
    SVDResult,
)


def _svd_of(A):
    U, S, Vt = np.linalg.svd(A, full_matrices=False)
    return SVDResult(U=U, S=S, V=Vt.T.copy())


class TestConvergenceTrace:
    def test_append_and_len(self):
        trace = ConvergenceTrace()
        trace.append(1, 0.5, 10)
        trace.append(2, 0.05, 8)
        assert len(trace) == 2
        assert trace.sweeps == 2

    def test_total_rotations(self):
        trace = ConvergenceTrace()
        trace.append(1, 0.5, 10)
        trace.append(2, 0.05, 8)
        assert trace.total_rotations == 18

    def test_off_norms_array(self):
        trace = ConvergenceTrace()
        trace.append(1, 0.5, 1)
        trace.append(2, 0.25, 1)
        np.testing.assert_allclose(trace.off_norms(), [0.5, 0.25])

    def test_sweeps_to_threshold(self):
        trace = ConvergenceTrace()
        for k, off in enumerate([1e-2, 1e-6, 1e-13], start=1):
            trace.append(k, off, 1)
        assert trace.sweeps_to(1e-12) == 3
        assert trace.sweeps_to(1e-5) == 2
        assert trace.sweeps_to(1e-20) is None

    def test_iteration_yields_records(self):
        trace = ConvergenceTrace()
        trace.append(1, 0.1, 3)
        (record,) = list(trace)
        assert (record.sweep, record.off_norm, record.rotations) == (1, 0.1, 3)


class TestSVDResult:
    def test_reconstruct_matches_input(self, rng):
        A = rng.standard_normal((9, 5))
        res = _svd_of(A)
        np.testing.assert_allclose(res.reconstruct(), A, atol=1e-12)

    def test_reconstruction_error_is_relative(self, rng):
        A = rng.standard_normal((6, 6)) * 1e6
        res = _svd_of(A)
        assert res.reconstruction_error(A) < 1e-12

    def test_reconstruction_error_zero_matrix(self):
        A = np.zeros((3, 3))
        res = SVDResult(U=np.eye(3), S=np.zeros(3), V=np.eye(3))
        assert res.reconstruction_error(A) == 0.0

    def test_rank_shape(self, rng):
        A = rng.standard_normal((7, 4))
        assert _svd_of(A).rank_shape == (7, 4)

    def test_truncate_reduces_rank(self, rng):
        A = rng.standard_normal((8, 8))
        res = _svd_of(A).truncate(3)
        assert res.U.shape == (8, 3)
        assert res.S.shape == (3,)
        assert res.V.shape == (8, 3)

    def test_truncate_is_best_rank_k(self, rng):
        A = rng.standard_normal((10, 10))
        full = _svd_of(A)
        k = 4
        approx = full.truncate(k).reconstruct()
        # Eckart-Young: error equals the (k+1)-th singular value.
        err = np.linalg.norm(A - approx, ord=2)
        assert err == pytest.approx(full.S[k], rel=1e-10)

    def test_truncate_clamps_to_available_rank(self, rng):
        A = rng.standard_normal((5, 3))
        res = _svd_of(A).truncate(10)
        assert res.S.shape == (3,)

    def test_truncate_rejects_nonpositive_rank(self, rng):
        A = rng.standard_normal((4, 4))
        with pytest.raises(ValueError):
            _svd_of(A).truncate(0)

    def test_truncate_copies_storage(self, rng):
        A = rng.standard_normal((5, 5))
        full = _svd_of(A)
        part = full.truncate(2)
        part.U[:] = 0.0
        assert np.abs(full.U).max() > 0


class TestEVDResult:
    def test_reconstruct(self, symmetric_matrix):
        vals, vecs = np.linalg.eigh(symmetric_matrix)
        res = EVDResult(J=vecs, L=vals)
        assert res.reconstruction_error(symmetric_matrix) < 1e-12

    def test_reconstruction_error_zero(self):
        res = EVDResult(J=np.eye(2), L=np.zeros(2))
        assert res.reconstruction_error(np.zeros((2, 2))) == 0.0


class TestBatchedSVDResult:
    def _batch(self, rng, count=3):
        mats = [rng.standard_normal((6, 4)) for _ in range(count)]
        return mats, BatchedSVDResult(results=[_svd_of(a) for a in mats])

    def test_len_getitem_iter(self, rng):
        mats, batch = self._batch(rng)
        assert len(batch) == 3
        assert batch[0].U.shape == (6, 4)
        assert len(list(batch)) == 3

    def test_singular_values(self, rng):
        mats, batch = self._batch(rng)
        svs = batch.singular_values()
        assert len(svs) == 3
        for a, s in zip(mats, svs):
            np.testing.assert_allclose(
                s, np.linalg.svd(a, compute_uv=False), atol=1e-10
            )

    def test_max_reconstruction_error(self, rng):
        mats, batch = self._batch(rng)
        assert batch.max_reconstruction_error(mats) < 1e-12

    def test_max_reconstruction_error_size_mismatch(self, rng):
        mats, batch = self._batch(rng)
        with pytest.raises(ValueError):
            batch.max_reconstruction_error(mats[:2])
