"""Spectrum families and the solvers' behaviour on them."""

import numpy as np
import pytest

from repro import WCycleSVD
from repro.datasets.spectra import (
    SPECTRUM_FAMILIES,
    clustered_spectrum,
    geometric_spectrum,
    low_rank_plus_noise_spectrum,
    matrix_with,
    polynomial_spectrum,
)
from repro.errors import ConfigurationError
from repro.jacobi import OneSidedJacobiSVD


class TestGenerators:
    def test_geometric_endpoints(self):
        s = geometric_spectrum(5, 1e4)
        assert s[0] == pytest.approx(1.0)
        assert s[-1] == pytest.approx(1e-4)

    def test_polynomial_decay(self):
        s = polynomial_spectrum(4, power=2.0)
        np.testing.assert_allclose(s, [1.0, 0.25, 1 / 9, 1 / 16])

    def test_clustered_has_clusters(self):
        s = clustered_spectrum(12, clusters=3, gap=100.0)
        # Three well-separated magnitude groups.
        logs = np.round(np.log10(s)).astype(int)
        assert len(set(logs)) == 3

    def test_low_rank_floor(self):
        s = low_rank_plus_noise_spectrum(10, rank=3, noise=1e-9)
        assert (s[3:] == 1e-9).all()
        assert s[0] == 1.0

    @pytest.mark.parametrize(
        "bad_call",
        [
            lambda: geometric_spectrum(0),
            lambda: geometric_spectrum(4, 0.5),
            lambda: polynomial_spectrum(4, power=0),
            lambda: clustered_spectrum(4, clusters=9),
            lambda: clustered_spectrum(4, gap=1.0),
            lambda: low_rank_plus_noise_spectrum(4, rank=0),
            lambda: matrix_with("fancy", 4, 4),
        ],
    )
    def test_validation(self, bad_call):
        with pytest.raises(ConfigurationError):
            bad_call()

    @pytest.mark.parametrize("family", sorted(SPECTRUM_FAMILIES))
    def test_matrix_with_realizes_spectrum(self, family):
        A = matrix_with(family, 12, 9, rng=0)
        expected = SPECTRUM_FAMILIES[family](9)
        measured = np.linalg.svd(A, compute_uv=False)
        np.testing.assert_allclose(
            measured, np.sort(expected)[::-1], rtol=1e-8, atol=1e-12
        )

    def test_deterministic(self):
        np.testing.assert_array_equal(
            matrix_with("geometric", 6, 6, rng=3),
            matrix_with("geometric", 6, 6, rng=3),
        )


class TestSolversAcrossFamilies:
    @pytest.mark.parametrize("family", sorted(SPECTRUM_FAMILIES))
    def test_onesided_converges(self, family):
        A = matrix_with(family, 14, 10, rng=1)
        res = OneSidedJacobiSVD().decompose(A)
        assert res.reconstruction_error(A) < 1e-9

    @pytest.mark.parametrize("family", sorted(SPECTRUM_FAMILIES))
    def test_wcycle_converges(self, family):
        A = matrix_with(family, 40, 36, rng=2)
        res = WCycleSVD(device="V100").decompose(A)
        assert res.reconstruction_error(A) < 1e-9

    def test_clustered_spectrum_needs_more_sweeps(self):
        """Clusters are the slow case for cyclic Jacobi."""
        easy = matrix_with("geometric", 24, 20, rng=4)
        hard = matrix_with("clustered", 24, 20, rng=4)
        s_easy = OneSidedJacobiSVD().decompose(easy).trace.sweeps
        s_hard = OneSidedJacobiSVD().decompose(hard).trace.sweeps
        assert s_hard >= s_easy - 1
