"""Shared factor-extraction helpers."""

import numpy as np

from repro.jacobi.factors import (
    complete_orthonormal,
    complete_square_orthogonal,
    finalize_onesided,
)
from repro.types import ConvergenceTrace


class TestFinalizeOnesided:
    def _orthogonalized(self, rng, m, n):
        """Columns already mutually orthogonal (U * sigma form)."""
        Q = np.linalg.qr(rng.standard_normal((m, n)))[0]
        sigma = np.sort(rng.uniform(0.5, 3.0, n))[::-1]
        return Q * sigma, Q, sigma

    def test_recovers_sigma_descending(self, rng):
        work, _, sigma = self._orthogonalized(rng, 8, 4)
        # Shuffle columns to prove sorting happens.
        perm = rng.permutation(4)
        res = finalize_onesided(work[:, perm], np.eye(4)[:, perm], None)
        np.testing.assert_allclose(res.S, sigma, atol=1e-12)

    def test_u_columns_unit_norm(self, rng):
        work, _, _ = self._orthogonalized(rng, 8, 4)
        res = finalize_onesided(work, np.eye(4), None)
        np.testing.assert_allclose(
            np.linalg.norm(res.U, axis=0), np.ones(4), atol=1e-12
        )

    def test_trace_passes_through(self, rng):
        work, _, _ = self._orthogonalized(rng, 6, 3)
        trace = ConvergenceTrace()
        trace.append(1, 0.1, 3)
        res = finalize_onesided(work, np.eye(3), trace)
        assert res.trace is trace

    def test_zero_columns_get_zero_sigma(self, rng):
        work, _, _ = self._orthogonalized(rng, 8, 4)
        work[:, -1] = 0.0
        res = finalize_onesided(work, np.eye(4), None)
        assert res.S[-1] == 0.0
        # Completed U stays orthonormal.
        assert np.abs(res.U.T @ res.U - np.eye(4)).max() < 1e-10

    def test_thin_shape_for_wide_work(self, rng):
        # Wide "work" (m < n): thin rank is m.
        work = rng.standard_normal((3, 5))
        # Orthogonalize columns first (QR on transpose trick not needed for
        # the shape check).
        res = finalize_onesided(work, np.eye(5), None)
        assert res.U.shape == (3, 3)
        assert res.V.shape == (5, 3)


class TestCompleteOrthonormal:
    def test_completes_partial_basis(self, rng):
        U = np.zeros((6, 4))
        Q = np.linalg.qr(rng.standard_normal((6, 2)))[0]
        U[:, :2] = Q
        filled = np.array([True, True, False, False])
        complete_orthonormal(U, filled)
        np.testing.assert_allclose(U.T @ U, np.eye(4), atol=1e-10)

    def test_deterministic(self, rng):
        def build():
            U = np.zeros((5, 3))
            U[0, 0] = 1.0
            complete_orthonormal(U, np.array([True, False, False]))
            return U

        np.testing.assert_array_equal(build(), build())


class TestCompleteSquareOrthogonal:
    def test_extends_to_square(self, rng):
        V = np.linalg.qr(rng.standard_normal((6, 3)))[0]
        out = complete_square_orthogonal(V, 6)
        assert out.shape == (6, 6)
        np.testing.assert_allclose(out.T @ out, np.eye(6), atol=1e-10)
        np.testing.assert_array_equal(out[:, :3], V)

    def test_already_square_is_unchanged(self, rng):
        V = np.linalg.qr(rng.standard_normal((4, 4)))[0]
        out = complete_square_orthogonal(V, 4)
        np.testing.assert_array_equal(out, V)
