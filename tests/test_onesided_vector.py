"""One-sided vector-rotation Jacobi SVD (paper §II-C, §IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.helpers import assert_valid_svd
from repro.errors import ConfigurationError, ConvergenceError
from repro.jacobi import OneSidedConfig, OneSidedJacobiSVD
from repro.utils.matrices import random_with_condition, random_with_spectrum


class TestConfig:
    def test_defaults(self):
        cfg = OneSidedConfig()
        assert cfg.cache_inner_products and cfg.transpose_wide

    @pytest.mark.parametrize("tol", [0.0, 1.0, -1e-3])
    def test_rejects_bad_tol(self, tol):
        with pytest.raises(ConfigurationError):
            OneSidedConfig(tol=tol)

    def test_rejects_bad_max_sweeps(self):
        with pytest.raises(ConfigurationError):
            OneSidedConfig(max_sweeps=0)


class TestCorrectness:
    @pytest.mark.parametrize(
        "shape", [(2, 2), (5, 5), (8, 3), (3, 8), (16, 16), (20, 7), (7, 20)]
    )
    def test_matches_lapack(self, rng, shape):
        A = rng.standard_normal(shape)
        assert_valid_svd(A, OneSidedJacobiSVD().decompose(A))

    def test_single_column(self, rng):
        A = rng.standard_normal((6, 1))
        res = OneSidedJacobiSVD().decompose(A)
        assert res.S[0] == pytest.approx(np.linalg.norm(A))
        assert_valid_svd(A, res)

    def test_single_row(self, rng):
        A = rng.standard_normal((1, 6))
        assert_valid_svd(A, OneSidedJacobiSVD().decompose(A))

    def test_identity(self):
        res = OneSidedJacobiSVD().decompose(np.eye(5))
        np.testing.assert_allclose(res.S, np.ones(5))

    def test_diagonal_matrix(self):
        A = np.diag([4.0, 2.0, 1.0])
        res = OneSidedJacobiSVD().decompose(A)
        np.testing.assert_allclose(res.S, [4.0, 2.0, 1.0], atol=1e-12)

    def test_rank_deficient(self, rng):
        A = np.outer(rng.standard_normal(8), rng.standard_normal(5))
        res = OneSidedJacobiSVD().decompose(A)
        assert res.reconstruction_error(A) < 1e-12
        assert (res.S[1:] == 0).all()
        # U completed to a full orthonormal basis despite rank 1.
        assert np.abs(res.U.T @ res.U - np.eye(5)).max() < 1e-10

    def test_zero_matrix(self):
        A = np.zeros((4, 3))
        res = OneSidedJacobiSVD().decompose(A)
        assert (res.S == 0).all()
        assert np.abs(res.U.T @ res.U - np.eye(3)).max() < 1e-10

    def test_ill_conditioned(self, rng):
        A = random_with_condition(10, 10, 1e12, rng=rng)
        res = OneSidedJacobiSVD().decompose(A)
        ref = np.linalg.svd(A, compute_uv=False)
        # Jacobi's selling point: high *relative* accuracy on every value
        # (the bound here is what double-precision test-matrix construction
        # permits at condition 1e12, not the method's limit).
        np.testing.assert_allclose(res.S, ref, rtol=1e-4)

    def test_relative_accuracy_small_values(self, rng):
        spectrum = np.array([1.0, 1e-4, 1e-8])
        A = random_with_spectrum(8, 3, spectrum, rng=rng)
        res = OneSidedJacobiSVD().decompose(A)
        # Constructing A = U diag(s) V.T in double precision perturbs the
        # smallest value by ~eps/s_min relative, which bounds what any
        # solver can recover.
        np.testing.assert_allclose(res.S, spectrum, rtol=1e-6)

    def test_does_not_mutate_input(self, rng):
        A = rng.standard_normal((6, 4))
        before = A.copy()
        OneSidedJacobiSVD().decompose(A)
        np.testing.assert_array_equal(A, before)


class TestConfigurationVariants:
    @pytest.mark.parametrize("ordering", ["round-robin", "odd-even", "ring"])
    def test_all_orderings_converge(self, rng, ordering):
        A = rng.standard_normal((10, 10))
        res = OneSidedJacobiSVD(OneSidedConfig(ordering=ordering)).decompose(A)
        assert_valid_svd(A, res)

    def test_without_inner_product_cache(self, rng):
        """Ablation D1: same answer without the Eq. 6 optimization."""
        A = rng.standard_normal((9, 6))
        cached = OneSidedJacobiSVD(
            OneSidedConfig(cache_inner_products=True)
        ).decompose(A)
        plain = OneSidedJacobiSVD(
            OneSidedConfig(cache_inner_products=False)
        ).decompose(A)
        np.testing.assert_allclose(cached.S, plain.S, atol=1e-12)

    def test_cache_saves_dot_products(self, rng):
        """Eq. 6 removes about two-thirds of the inner products."""
        A = rng.standard_normal((16, 12))
        solver_c = OneSidedJacobiSVD(OneSidedConfig(cache_inner_products=True))
        solver_p = OneSidedJacobiSVD(OneSidedConfig(cache_inner_products=False))
        solver_c.decompose(A)
        solver_p.decompose(A)
        assert solver_c.last_stats.dot_products < 0.55 * solver_p.last_stats.dot_products

    def test_transpose_wide_reduces_sweep_work(self, rng):
        """Ablation D6: factoring A.T for wide A runs fewer rotations."""
        A = rng.standard_normal((4, 16))
        on = OneSidedJacobiSVD(OneSidedConfig(transpose_wide=True))
        off = OneSidedJacobiSVD(OneSidedConfig(transpose_wide=False))
        res_on = on.decompose(A)
        rot_on = on.last_stats.rotations
        res_off = off.decompose(A)
        rot_off = off.last_stats.rotations
        assert rot_on < rot_off
        np.testing.assert_allclose(res_on.S, res_off.S, atol=1e-10)

    def test_max_sweeps_exhaustion_raises(self, rng):
        A = rng.standard_normal((12, 12))
        with pytest.raises(ConvergenceError) as excinfo:
            OneSidedJacobiSVD(OneSidedConfig(max_sweeps=1)).decompose(A)
        assert excinfo.value.sweeps == 1
        assert excinfo.value.residual > 0


class TestTrace:
    def test_trace_monotone_tail(self, rng):
        A = rng.standard_normal((12, 12))
        res = OneSidedJacobiSVD().decompose(A)
        offs = res.trace.off_norms()
        # Quadratic convergence: the last step is a big drop.
        assert offs[-1] < 1e-14
        assert offs[-1] < offs[0]

    def test_trace_rotations_decrease(self, rng):
        A = rng.standard_normal((12, 12))
        res = OneSidedJacobiSVD().decompose(A)
        records = res.trace.records
        # Final sweep applies (almost) no rotations: everything converged.
        assert records[-1].rotations <= records[0].rotations


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 14),
    n=st.integers(1, 14),
    seed=st.integers(0, 10_000),
)
def test_svd_property_random_shapes(m, n, seed):
    """Property: valid thin SVD for any shape."""
    A = np.random.default_rng(seed).standard_normal((m, n))
    res = OneSidedJacobiSVD().decompose(A)
    assert res.reconstruction_error(A) < 1e-10
    ref = np.linalg.svd(A, compute_uv=False)
    assert np.abs(res.S - ref).max() < 1e-8 * max(1.0, ref[0])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_singular_values_invariant_under_orthogonal_transform(seed):
    """Property: S(QA) == S(A) for orthogonal Q."""
    gen = np.random.default_rng(seed)
    A = gen.standard_normal((8, 5))
    Q = np.linalg.qr(gen.standard_normal((8, 8)))[0]
    s1 = OneSidedJacobiSVD().decompose(A).S
    s2 = OneSidedJacobiSVD().decompose(Q @ A).S
    np.testing.assert_allclose(s1, s2, atol=1e-9)
