"""QR preconditioning for tall matrices (refs [5], [42])."""

import numpy as np
import pytest

from tests.helpers import assert_valid_svd
from repro import WCycleConfig, WCycleSVD
from repro.errors import ConfigurationError
from repro.jacobi import (
    OneSidedJacobiSVD,
    qr_precondition_decompose,
    worth_preconditioning,
)


class TestWorthIt:
    def test_tall_matrix(self):
        assert worth_preconditioning(400, 40)

    def test_square_matrix(self):
        assert not worth_preconditioning(64, 64)

    def test_wide_matrix(self):
        assert not worth_preconditioning(40, 400)

    def test_threshold(self):
        assert worth_preconditioning(120, 40, aspect_threshold=3.0)
        assert not worth_preconditioning(119, 40, aspect_threshold=3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worth_preconditioning(10, 5, aspect_threshold=0.5)


class TestQrPreconditionDecompose:
    def _solver(self):
        return OneSidedJacobiSVD().decompose

    def test_tall_matrix_correct(self, rng):
        A = rng.standard_normal((120, 12))
        res = qr_precondition_decompose(A, self._solver())
        assert_valid_svd(A, res)

    def test_falls_through_for_square(self, rng):
        A = rng.standard_normal((16, 16))
        res = qr_precondition_decompose(A, self._solver())
        assert_valid_svd(A, res)

    def test_rank_deficient_tall(self, rng):
        A = rng.standard_normal((80, 3)) @ np.diag([1.0, 1.0, 0.0])
        res = qr_precondition_decompose(A, self._solver())
        assert res.reconstruction_error(A) < 1e-10
        assert res.S[2] < 1e-10

    def test_preconditioning_shrinks_rotation_length(self, rng):
        """Rotations act on n-vectors instead of m-vectors after QR."""
        A = rng.standard_normal((300, 20))
        inner = OneSidedJacobiSVD()
        calls = []

        def spy(R):
            calls.append(R.shape)
            return inner.decompose(R)

        qr_precondition_decompose(A, spy)
        assert calls == [(20, 20)]


class TestWCycleIntegration:
    def test_preconditioned_wcycle_correct(self, rng):
        A = rng.standard_normal((500, 40))
        cfg = WCycleConfig(qr_precondition=True)
        res = WCycleSVD(cfg, device="V100").decompose(A)
        assert_valid_svd(A, res)

    def test_preconditioned_wide_matrix(self, rng):
        """Wide input transposes first, then preconditions the tall side."""
        A = rng.standard_normal((40, 500))
        cfg = WCycleConfig(qr_precondition=True)
        res = WCycleSVD(cfg, device="V100").decompose(A)
        assert_valid_svd(A, res)

    def test_triangular_factor_uses_sm_kernel(self, rng):
        """A 500 x 40 matrix's R factor is 40 x 40 and solves in SM."""
        from repro import Profiler

        A = rng.standard_normal((500, 40))
        cfg = WCycleConfig(qr_precondition=True)
        profiler = Profiler()
        WCycleSVD(cfg, device="V100").decompose(A, profiler=profiler)
        assert "batched_svd_sm" in profiler.report.by_kernel()

    def test_matches_unpreconditioned(self, rng):
        A = rng.standard_normal((200, 24))
        plain = WCycleSVD(device="V100").decompose(A)
        pre = WCycleSVD(
            WCycleConfig(qr_precondition=True), device="V100"
        ).decompose(A)
        np.testing.assert_allclose(pre.S, plain.S, rtol=1e-9)
