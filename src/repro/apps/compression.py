"""Low-rank image compression on the batched SVD (paper §I motivation).

The introduction motivates batched small-matrix SVDs with image
compression/reconstruction: an image is cut into tiles, each tile is
factorized, and only the leading singular triplets are kept. This module
is the library-grade version of that pipeline: a tiled codec whose encode
step is one ``decompose_batch`` call, plus the PSNR/storage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.types import SVDResult
from repro.utils.validation import as_matrix

__all__ = ["CompressedImage", "TiledSVDCodec", "psnr"]


def psnr(original: np.ndarray, approximation: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB, for images scaled to [0, 1]."""
    original = np.asarray(original, dtype=np.float64)
    approximation = np.asarray(approximation, dtype=np.float64)
    if original.shape != approximation.shape:
        raise ConfigurationError(
            f"shape mismatch: {original.shape} vs {approximation.shape}"
        )
    mse = float(np.mean((original - approximation) ** 2))
    if mse == 0.0:
        return float("inf")
    return 10.0 * np.log10(1.0 / mse)


@dataclass
class CompressedImage:
    """Rank-truncated tile factors plus the geometry to reassemble them."""

    shape: tuple[int, int]
    tile: int
    rank: int
    factors: list[SVDResult]

    @property
    def stored_floats(self) -> int:
        """Floats kept across all tiles (U, S, V truncated to rank)."""
        total = 0
        for f in self.factors:
            r = min(self.rank, f.S.shape[0])
            total += r * (f.U.shape[0] + 1 + f.V.shape[0])
        return total

    @property
    def compression_ratio(self) -> float:
        """Original floats / stored floats (> 1 means smaller)."""
        return (self.shape[0] * self.shape[1]) / max(1, self.stored_floats)

    def decode(self) -> np.ndarray:
        """Reassemble the image from the truncated tile factors."""
        out = np.zeros(self.shape)
        index = 0
        for i in range(0, self.shape[0], self.tile):
            for j in range(0, self.shape[1], self.tile):
                block = self.factors[index].truncate(self.rank).reconstruct()
                out[i : i + block.shape[0], j : j + block.shape[1]] = block
                index += 1
        return out


class TiledSVDCodec:
    """Tile an image, batch-factorize the tiles, keep the leading rank.

    ``solver`` is anything with ``decompose_batch`` (the W-cycle solver or
    a baseline), so compression doubles as a realistic batched workload.
    """

    def __init__(self, solver, *, tile: int = 32) -> None:
        if tile < 2:
            raise ConfigurationError(f"tile must be >= 2, got {tile}")
        self.solver = solver
        self.tile = tile

    def tiles_of(self, image: np.ndarray) -> list[np.ndarray]:
        """Cut the image into (ragged-edge-aware) tiles, row-major."""
        image = as_matrix(image, name="image")
        t = self.tile
        return [
            image[i : i + t, j : j + t].copy()
            for i in range(0, image.shape[0], t)
            for j in range(0, image.shape[1], t)
        ]

    def encode(self, image: np.ndarray, rank: int) -> CompressedImage:
        """Factorize every tile (one batched call) and truncate to rank."""
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        image = as_matrix(image, name="image")
        tiles = self.tiles_of(image)
        results = self.solver.decompose_batch(tiles)
        return CompressedImage(
            shape=image.shape,
            tile=self.tile,
            rank=rank,
            factors=[r.truncate(rank) for r in results],
        )

    def rate_distortion(
        self, image: np.ndarray, ranks: list[int]
    ) -> list[tuple[int, float, float]]:
        """(rank, compression ratio, PSNR) for each requested rank.

        The tiles are factorized once; each rank reuses the factors.
        """
        image = as_matrix(image, name="image")
        tiles = self.tiles_of(image)
        results = list(self.solver.decompose_batch(tiles))
        out = []
        for rank in ranks:
            compressed = CompressedImage(
                shape=image.shape,
                tile=self.tile,
                rank=rank,
                factors=[r.truncate(rank) for r in results],
            )
            out.append(
                (rank, compressed.compression_ratio, psnr(image, compressed.decode()))
            )
        return out
