"""Underwater acoustic array processing on the batched SVD (paper ref [2]).

The first GPU batched-SVD system the paper cites was built for detecting
quiet targets with a hydrophone array: per frequency bin, the array's
sample covariance matrix is factorized and the signal/noise subspace split
drives a MUSIC-style spatial spectrum. The batch is the set of frequency
bins — dozens to hundreds of small symmetric SVDs, the paper's motivating
workload shape.

This module implements the full chain on synthetic data: plane-wave
sources + noise -> snapshots -> per-bin covariances -> one
``decompose_batch`` call -> subspace detection and bearing estimation.
Real arrays are complex-valued; keeping with the library's real-arithmetic
scope, the simulation uses real sinusoidal steering (a cosine array), which
preserves the subspace structure the method relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import SVDResult
from repro.utils.matrices import default_rng

__all__ = ["ArraySpec", "simulate_snapshots", "SubspaceDetector", "DetectionResult"]


@dataclass(frozen=True)
class ArraySpec:
    """A uniform linear hydrophone array.

    ``n_sensors`` elements at half-wavelength spacing (in units of the
    design frequency); bearings are in degrees from broadside.
    """

    n_sensors: int
    spacing_wavelengths: float = 0.5

    def __post_init__(self) -> None:
        if self.n_sensors < 2:
            raise ConfigurationError("need at least 2 sensors")
        if not (0.0 < self.spacing_wavelengths <= 0.5):
            raise ConfigurationError(
                "spacing must be in (0, 0.5] wavelengths (no grating lobes)"
            )

    def steering_vector(self, bearing_deg: float) -> np.ndarray:
        """Real (cosine) steering vector for a plane wave at ``bearing_deg``."""
        phase = (
            2.0
            * np.pi
            * self.spacing_wavelengths
            * np.sin(np.deg2rad(bearing_deg))
            * np.arange(self.n_sensors)
        )
        v = np.cos(phase)
        norm = np.linalg.norm(v)
        if norm < 1e-12:
            # Degenerate phase alignment: fall back to the unit vector.
            v = np.zeros(self.n_sensors)
            v[0] = 1.0
            return v
        return v / norm


def simulate_snapshots(
    array: ArraySpec,
    bearings_deg: Sequence[float],
    *,
    n_snapshots: int = 200,
    snr_db: float = 10.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sensor snapshots of plane-wave sources in white noise.

    Returns an ``(n_sensors, n_snapshots)`` data matrix.
    """
    if n_snapshots < array.n_sensors:
        raise ConfigurationError(
            "need at least as many snapshots as sensors for a full-rank "
            f"covariance ({n_snapshots} < {array.n_sensors})"
        )
    gen = default_rng(rng)
    amplitude = 10.0 ** (snr_db / 20.0)
    data = gen.standard_normal((array.n_sensors, n_snapshots))
    for bearing in bearings_deg:
        v = array.steering_vector(bearing)
        signal = amplitude * gen.standard_normal(n_snapshots)
        data += np.outer(v, signal)
    return data


@dataclass
class DetectionResult:
    """Output of one multi-bin subspace detection."""

    n_sources: list[int]
    spectra: list[np.ndarray]
    bearing_grid: np.ndarray

    def detected_bearings(self, bin_index: int) -> np.ndarray:
        """Peak bearings of one bin's MUSIC spectrum (descending height)."""
        spectrum = self.spectra[bin_index]
        k = self.n_sources[bin_index]
        if k == 0:
            return np.empty(0)
        interior = np.flatnonzero(
            (spectrum[1:-1] > spectrum[:-2]) & (spectrum[1:-1] > spectrum[2:])
        ) + 1
        if len(interior) == 0:
            return np.empty(0)
        order = interior[np.argsort(spectrum[interior])[::-1]]
        return self.bearing_grid[order[:k]]


class SubspaceDetector:
    """MUSIC-style detector over a batch of frequency-bin covariances.

    ``solver`` is anything exposing ``decompose_batch``; each bin's
    ``n x n`` covariance is one matrix of the batch.
    """

    def __init__(
        self,
        array: ArraySpec,
        solver,
        *,
        grid_deg: float = 1.0,
        noise_factor: float = 2.0,
    ) -> None:
        if grid_deg <= 0:
            raise ConfigurationError("grid_deg must be positive")
        if noise_factor <= 1.0:
            raise ConfigurationError("noise_factor must be > 1")
        self.array = array
        self.solver = solver
        self.bearing_grid = np.arange(-90.0, 90.0 + grid_deg, grid_deg)
        self.noise_factor = noise_factor

    def covariances(
        self, snapshot_bins: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Per-bin sample covariance matrices (symmetrized)."""
        out = []
        for data in snapshot_bins:
            if data.shape[0] != self.array.n_sensors:
                raise ConfigurationError(
                    f"snapshots have {data.shape[0]} sensors, "
                    f"array has {self.array.n_sensors}"
                )
            C = data @ data.T / data.shape[1]
            out.append((C + C.T) / 2.0)
        return out

    def detect(self, snapshot_bins: Sequence[np.ndarray]) -> DetectionResult:
        """Factorize every bin's covariance and scan the MUSIC spectra."""
        covs = self.covariances(snapshot_bins)
        results = self.solver.decompose_batch(covs)
        n_sources = [self._count_sources(r) for r in results]
        spectra = [
            self._music_spectrum(r, k) for r, k in zip(results, n_sources)
        ]
        return DetectionResult(
            n_sources=n_sources,
            spectra=spectra,
            bearing_grid=self.bearing_grid,
        )

    # ------------------------------------------------------------------

    def _count_sources(self, svd: SVDResult) -> int:
        """Signal-subspace dimension: eigenvalues standing clearly above
        the noise floor (median eigenvalue times ``noise_factor``).

        For pure noise the sample-covariance spectrum's spread (Marchenko-
        Pastur, ~(1 + sqrt(n/snapshots))^2) stays below the default factor
        of 2, so a quiet ocean reports zero sources.
        """
        values = svd.S
        noise = float(np.median(values))
        if noise <= 0:
            return int(np.count_nonzero(values > 0))
        return int(np.count_nonzero(values > self.noise_factor * noise))

    def _music_spectrum(self, svd: SVDResult, k: int) -> np.ndarray:
        """MUSIC pseudo-spectrum: 1 / ||projection onto noise subspace||^2."""
        noise_basis = svd.U[:, k:] if k < svd.U.shape[1] else None
        spectrum = np.empty(len(self.bearing_grid))
        for idx, bearing in enumerate(self.bearing_grid):
            v = self.array.steering_vector(float(bearing))
            if noise_basis is None or noise_basis.shape[1] == 0:
                spectrum[idx] = 1.0
                continue
            leak = float(np.sum((noise_basis.T @ v) ** 2))
            spectrum[idx] = 1.0 / max(leak, 1e-12)
        return spectrum
