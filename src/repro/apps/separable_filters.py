"""Separable convolution filters via batched SVD (paper ref [3]).

Kang & Lee's Euro-Par 2015 system — another of the paper's motivating
applications — approximates a CNN's 2-D convolution kernels by rank-1
(separable) filters: ``K ~ sigma * u v^T`` turns one ``k x k`` convolution
into a column pass and a row pass (``2k`` multiplies per pixel instead of
``k^2``). The whole filter bank factorizes in one batched SVD.

This module provides the factorization, the separable convolution itself,
and the error/speedup accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.validation import as_matrix

__all__ = [
    "SeparableFilter",
    "separate_filter_bank",
    "convolve2d",
    "convolve_separable",
]


@dataclass
class SeparableFilter:
    """A rank-``r`` separable approximation of one 2-D kernel.

    ``columns`` is ``(k_rows, r)``, ``rows`` is ``(r, k_cols)``; the
    approximated kernel is ``columns @ rows``.
    """

    columns: np.ndarray
    rows: np.ndarray

    @property
    def rank(self) -> int:
        return self.columns.shape[1]

    def kernel(self) -> np.ndarray:
        """The approximated 2-D kernel."""
        return self.columns @ self.rows

    def multiplies_per_pixel(self) -> int:
        """Cost of applying this filter separably."""
        return self.rank * (self.columns.shape[0] + self.rows.shape[1])


def separate_filter_bank(
    kernels: list[np.ndarray],
    solver,
    *,
    rank: int = 1,
) -> list[SeparableFilter]:
    """Factorize a bank of 2-D kernels into rank-``rank`` separable form.

    One ``decompose_batch`` call covers the whole bank — the ref-[3]
    workload (many kernels smaller than 15 x 15).
    """
    if rank < 1:
        raise ConfigurationError(f"rank must be >= 1, got {rank}")
    kernels = [as_matrix(k, name="kernel") for k in kernels]
    results = solver.decompose_batch(kernels)
    out = []
    for res in results:
        r = min(rank, res.S.shape[0])
        sqrt_s = np.sqrt(res.S[:r])
        out.append(
            SeparableFilter(
                columns=res.U[:, :r] * sqrt_s,
                rows=(res.V[:, :r] * sqrt_s).T,
            )
        )
    return out


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Valid-mode 2-D convolution (correlation convention), reference."""
    image = as_matrix(image, name="image")
    kernel = as_matrix(kernel, name="kernel")
    kr, kc = kernel.shape
    out_r = image.shape[0] - kr + 1
    out_c = image.shape[1] - kc + 1
    if out_r < 1 or out_c < 1:
        raise ConfigurationError(
            f"kernel {kernel.shape} larger than image {image.shape}"
        )
    out = np.zeros((out_r, out_c))
    for i in range(kr):
        for j in range(kc):
            out += kernel[i, j] * image[i : i + out_r, j : j + out_c]
    return out


def convolve_separable(
    image: np.ndarray, filt: SeparableFilter
) -> np.ndarray:
    """Apply a separable filter as rank many column+row passes."""
    image = as_matrix(image, name="image")
    kr = filt.columns.shape[0]
    kc = filt.rows.shape[1]
    out_r = image.shape[0] - kr + 1
    out_c = image.shape[1] - kc + 1
    if out_r < 1 or out_c < 1:
        raise ConfigurationError(
            f"kernel ({kr}, {kc}) larger than image {image.shape}"
        )
    out = np.zeros((out_r, out_c))
    for component in range(filt.rank):
        col = filt.columns[:, component]
        row = filt.rows[component, :]
        # Column pass: correlate each column of the image with `col`.
        partial = np.zeros((out_r, image.shape[1]))
        for i in range(kr):
            partial += col[i] * image[i : i + out_r, :]
        # Row pass.
        for j in range(kc):
            out += row[j] * partial[:, j : j + out_c]
    return out
