"""Real-world application layers built on the batched SVD (paper §V-F)."""
