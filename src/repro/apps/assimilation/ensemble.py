"""Ensemble state for the ocean mesh.

The "truth" is a smooth random field; ensemble members are truth plus
smooth perturbations, which gives the spatially-correlated forecast errors
that make localized assimilation meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.assimilation.grid import OceanGrid
from repro.utils.matrices import default_rng

__all__ = ["smooth_random_field", "Ensemble"]


def smooth_random_field(
    nlat: int,
    nlon: int,
    *,
    length_scale: float = 4.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Smooth Gaussian random field on the mesh (flattened, unit variance).

    White noise is smoothed by an FFT Gaussian filter with the given
    correlation length; the result is standardized.
    """
    if length_scale <= 0:
        raise ConfigurationError("length_scale must be positive")
    gen = default_rng(rng)
    noise = gen.standard_normal((nlat, nlon))
    fy = np.fft.fftfreq(nlat)[:, None]
    fx = np.fft.fftfreq(nlon)[None, :]
    kernel = np.exp(-2.0 * (np.pi * length_scale) ** 2 * (fy**2 + fx**2))
    smooth = np.real(np.fft.ifft2(np.fft.fft2(noise) * kernel))
    std = smooth.std()
    if std < 1e-12:  # pragma: no cover - degenerate tiny meshes
        return smooth.ravel()
    return ((smooth - smooth.mean()) / std).ravel()


@dataclass
class Ensemble:
    """An ensemble of ocean states: ``states`` is (n_points, n_members)."""

    states: np.ndarray

    def __post_init__(self) -> None:
        if self.states.ndim != 2:
            raise ConfigurationError(
                f"states must be 2-D (points, members), got {self.states.shape}"
            )
        if self.states.shape[1] < 2:
            raise ConfigurationError("need at least 2 ensemble members")

    @classmethod
    def from_truth(
        cls,
        truth: np.ndarray,
        grid: OceanGrid,
        n_members: int,
        *,
        spread: float = 0.5,
        rng: int | np.random.Generator | None = None,
    ) -> "Ensemble":
        """Perturb the truth with smooth fields to create the ensemble."""
        gen = default_rng(rng)
        members = np.empty((truth.size, n_members))
        for k in range(n_members):
            perturbation = smooth_random_field(
                grid.nlat, grid.nlon, length_scale=3.0, rng=gen
            )
            members[:, k] = truth + spread * perturbation
        return cls(states=members)

    @property
    def n_members(self) -> int:
        return self.states.shape[1]

    @property
    def mean(self) -> np.ndarray:
        return self.states.mean(axis=1)

    @property
    def anomalies(self) -> np.ndarray:
        """Member deviations from the ensemble mean, (points, members)."""
        return self.states - self.mean[:, None]

    def rmse(self, truth: np.ndarray) -> float:
        """Root-mean-square error of the ensemble mean against the truth."""
        return float(np.sqrt(np.mean((self.mean - truth) ** 2)))

    def spread(self) -> float:
        """Mean ensemble standard deviation (spread)."""
        return float(self.states.std(axis=1, ddof=1).mean())
