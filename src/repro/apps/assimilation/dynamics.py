"""Ocean dynamics for cyclic assimilation: advection-diffusion on the mesh.

A real assimilation system alternates *forecast* (propagate the ensemble
through the model) with *analysis* (the batched-SVD update). This module
supplies the forecast operator: a stable explicit advection-diffusion step
with periodic longitude (a zonal current) and reflective latitude walls —
enough structure that an ensemble drifts away from the truth between
analyses and the filter genuinely has to track it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["AdvectionDiffusion"]


@dataclass(frozen=True)
class AdvectionDiffusion:
    """Explicit advection-diffusion stepper on an ``nlat x nlon`` mesh.

    Attributes
    ----------
    nlat, nlon:
        Mesh dimensions (must match the grid the states live on).
    zonal_velocity:
        Cells per step the field drifts eastward (may be fractional;
        implemented by upwind interpolation).
    diffusion:
        Explicit diffusion coefficient; stability requires ``< 0.25``.
    """

    nlat: int
    nlon: int
    zonal_velocity: float = 0.4
    diffusion: float = 0.1

    def __post_init__(self) -> None:
        if self.nlat < 2 or self.nlon < 2:
            raise ConfigurationError("mesh must be at least 2x2")
        if not (0.0 <= self.diffusion < 0.25):
            raise ConfigurationError(
                f"explicit diffusion needs 0 <= d < 0.25, got {self.diffusion}"
            )
        if abs(self.zonal_velocity) > 1.0:
            raise ConfigurationError(
                "zonal_velocity must be at most one cell per step (CFL)"
            )

    def step(self, state: np.ndarray) -> np.ndarray:
        """Advance one flattened state (or an ensemble's columns) one step.

        Accepts ``(n_points,)`` or ``(n_points, n_members)``.
        """
        single = state.ndim == 1
        if single:
            state = state[:, None]
        if state.shape[0] != self.nlat * self.nlon:
            raise ConfigurationError(
                f"state has {state.shape[0]} points, mesh has "
                f"{self.nlat * self.nlon}"
            )
        field = state.reshape(self.nlat, self.nlon, -1)
        # Upwind fractional advection along longitude (periodic).
        v = self.zonal_velocity
        whole = int(np.floor(abs(v)))
        frac = abs(v) - whole
        direction = 1 if v >= 0 else -1
        shifted = np.roll(field, direction * whole, axis=1)
        if frac > 0:
            shifted = (1.0 - frac) * shifted + frac * np.roll(
                shifted, direction, axis=1
            )
        # Diffusion: periodic in longitude, reflective in latitude.
        up = np.concatenate([shifted[:1], shifted[:-1]], axis=0)
        down = np.concatenate([shifted[1:], shifted[-1:]], axis=0)
        west = np.roll(shifted, 1, axis=1)
        east = np.roll(shifted, -1, axis=1)
        out = shifted + self.diffusion * (up + down + west + east - 4 * shifted)
        out = out.reshape(state.shape)
        return out[:, 0] if single else out

    def step_ensemble(self, states: np.ndarray, *, steps: int = 1) -> np.ndarray:
        """Advance an ``(n_points, n_members)`` ensemble ``steps`` times."""
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        out = states
        for _ in range(steps):
            out = self.step(out)
        return out
