"""Ensemble data assimilation on an ocean mesh (paper §V-F).

The paper's real-world workload: on a latitude-longitude oceanic grid,
every grid point performs one local-analysis SVD whose size is set by the
observations within its localization radius (50 x 50 up to 1024 x 1024).
This package implements the full pipeline — synthetic ocean state, the
observation network, the localized ensemble smoother update — with the
batched SVD solver as a pluggable component, so W-cycle and the baselines
can be swapped under an identical workload.
"""

from repro.apps.assimilation.grid import OceanGrid
from repro.apps.assimilation.ensemble import Ensemble, smooth_random_field
from repro.apps.assimilation.dynamics import AdvectionDiffusion
from repro.apps.assimilation.smoother import EnsembleSmoother, SmootherConfig
from repro.apps.assimilation.driver import AssimilationExperiment, AssimilationResult

__all__ = [
    "OceanGrid",
    "Ensemble",
    "smooth_random_field",
    "AdvectionDiffusion",
    "EnsembleSmoother",
    "SmootherConfig",
    "AssimilationExperiment",
    "AssimilationResult",
]
