"""Localized ensemble smoother update (ES-MDA style, refs [36]-[38]).

Every grid point runs a *local analysis*: the observations within its
localization radius form a local innovation covariance ``C_p`` (an
``s_p x s_p`` symmetric matrix), which must be pseudo-inverted through an
SVD — this is the batched-SVD workload of the paper's §V-F, with ``s_p``
varying point to point.

The SVD solver is injected, so the same assimilation runs with
:class:`repro.core.WCycleSVD` or any baseline exposing ``decompose_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.assimilation.ensemble import Ensemble
from repro.apps.assimilation.grid import OceanGrid
from repro.types import SVDResult
from repro.utils.matrices import default_rng

__all__ = ["BatchedSVDSolver", "SmootherConfig", "EnsembleSmoother"]


class BatchedSVDSolver(Protocol):
    """Anything that factorizes a batch of matrices."""

    def decompose_batch(
        self, matrices: list[np.ndarray]
    ) -> Sequence[SVDResult]: ...


@dataclass(frozen=True)
class SmootherConfig:
    """Ensemble-smoother parameters.

    ``mda_inflation`` is the ES-MDA coefficient (alpha): observation error
    covariance is inflated by it for each of the multiple assimilation
    passes. ``rcond`` truncates singular values of the local covariance
    below ``rcond * s_max`` when inverting.
    """

    obs_error_std: float = 0.1
    mda_inflation: float = 1.0
    rcond: float = 1e-10
    min_local_obs: int = 2

    def __post_init__(self) -> None:
        if self.obs_error_std <= 0:
            raise ConfigurationError("obs_error_std must be positive")
        if self.mda_inflation < 1.0:
            raise ConfigurationError("mda_inflation must be >= 1")
        if not (0.0 < self.rcond < 1.0):
            raise ConfigurationError("rcond must be in (0, 1)")


class EnsembleSmoother:
    """One localized ES-MDA analysis step over the whole mesh."""

    def __init__(
        self,
        grid: OceanGrid,
        solver: BatchedSVDSolver,
        config: SmootherConfig | None = None,
    ) -> None:
        self.grid = grid
        self.solver = solver
        self.config = config or SmootherConfig()

    # ------------------------------------------------------------------

    def local_covariances(
        self, ensemble: Ensemble, point_indices: Sequence[int]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-point local innovation covariances ``C_p`` and the local
        observation index sets. Points with too few local observations get
        an empty entry and are skipped by :meth:`assimilate`."""
        obs_grid = self.grid.observation_grid_indices()
        anomalies = ensemble.anomalies
        n = ensemble.n_members
        r = self.config.mda_inflation * self.config.obs_error_std**2
        covs: list[np.ndarray] = []
        locals_: list[np.ndarray] = []
        for p in point_indices:
            local = self.grid.local_observations(p)
            locals_.append(local)
            if len(local) < self.config.min_local_obs:
                covs.append(np.empty((0, 0)))
                continue
            Yp = anomalies[obs_grid[local], :]  # (s, N)
            C = Yp @ Yp.T / (n - 1) + r * np.eye(len(local))
            covs.append((C + C.T) / 2.0)
        return covs, locals_

    def assimilate(
        self,
        ensemble: Ensemble,
        observations: np.ndarray,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> Ensemble:
        """One analysis pass; returns the updated ensemble.

        ``observations`` has one value per observation site. The batch of
        local covariance SVDs is delegated to the injected solver in one
        ``decompose_batch`` call — the workload profile of Fig. 14(b).
        """
        if observations.shape != (self.grid.n_observations,):
            raise ConfigurationError(
                f"observations must have shape ({self.grid.n_observations},), "
                f"got {observations.shape}"
            )
        gen = default_rng(rng)
        cfg = self.config
        n = ensemble.n_members
        obs_grid = self.grid.observation_grid_indices()
        anomalies = ensemble.anomalies
        points = list(range(self.grid.n_points))
        covs, locals_ = self.local_covariances(ensemble, points)
        solvable = [p for p, C in zip(points, covs) if C.size > 0]
        if not solvable:
            return Ensemble(states=ensemble.states.copy())
        results = self.solver.decompose_batch(
            [covs[p] for p in solvable]
        )
        # Perturbed observations, shared across points for consistency.
        noise = gen.normal(
            0.0,
            np.sqrt(cfg.mda_inflation) * cfg.obs_error_std,
            size=(self.grid.n_observations, n),
        )
        new_states = ensemble.states.copy()
        for p, svd in zip(solvable, results):
            local = locals_[p]
            Yp = anomalies[obs_grid[local], :]
            xp = anomalies[p, :]
            cross = Yp @ xp / (n - 1)  # cov(y_local, x_p), (s,)
            cinv_diag = _truncated_inverse(svd, cfg.rcond)
            gain = svd.V @ (cinv_diag * (svd.U.T @ cross))  # (s,)
            predicted = ensemble.states[obs_grid[local], :]  # (s, N)
            innovation = (
                observations[local][:, None] + noise[local, :] - predicted
            )
            new_states[p, :] = ensemble.states[p, :] + gain @ innovation
        return Ensemble(states=new_states)


def _truncated_inverse(svd: SVDResult, rcond: float) -> np.ndarray:
    """Inverse singular values with relative truncation (zeros stay zero)."""
    s = svd.S
    if s.size == 0:
        return s
    cutoff = rcond * float(s[0])
    inv = np.zeros_like(s)
    keep = s > cutoff
    inv[keep] = 1.0 / s[keep]
    return inv
