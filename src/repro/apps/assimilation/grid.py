"""Latitude-longitude ocean mesh with an observation network.

The mesh carries a scalar ocean state (e.g. sea-surface temperature
anomaly) on ``nlat x nlon`` points. Observations are scattered over the
mesh; each grid point's *local analysis* uses the observations within its
localization radius, so the per-point SVD size is the local observation
count — the quantity that spans 50..1024 in the paper's 0.1-degree mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.matrices import default_rng

__all__ = ["OceanGrid"]


@dataclass
class OceanGrid:
    """A rectangular lat-lon mesh with scattered observations.

    Attributes
    ----------
    nlat, nlon:
        Mesh dimensions.
    n_observations:
        Number of scattered point observations.
    localization_radius:
        Great-circle-ish radius (in grid units) within which an observation
        influences a grid point's local analysis.
    """

    nlat: int
    nlon: int
    n_observations: int
    localization_radius: float
    seed: int = 0
    obs_lat: np.ndarray = field(init=False, repr=False)
    obs_lon: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.nlat < 2 or self.nlon < 2:
            raise ConfigurationError(
                f"mesh must be at least 2x2, got {self.nlat}x{self.nlon}"
            )
        if self.n_observations < 1:
            raise ConfigurationError("need at least one observation")
        if self.localization_radius <= 0:
            raise ConfigurationError("localization_radius must be positive")
        rng = default_rng(self.seed)
        self.obs_lat = rng.uniform(0, self.nlat - 1, size=self.n_observations)
        self.obs_lon = rng.uniform(0, self.nlon - 1, size=self.n_observations)

    @property
    def n_points(self) -> int:
        """Number of grid points."""
        return self.nlat * self.nlon

    def point_coords(self, index: int) -> tuple[int, int]:
        """(lat, lon) integer coordinates of a flattened point index."""
        if not (0 <= index < self.n_points):
            raise ConfigurationError(
                f"point index {index} out of range [0, {self.n_points})"
            )
        return divmod(index, self.nlon)[0], index % self.nlon

    def local_observations(self, index: int) -> np.ndarray:
        """Indices of observations within the localization radius of a point."""
        lat, lon = self.point_coords(index)
        d2 = (self.obs_lat - lat) ** 2 + (self.obs_lon - lon) ** 2
        return np.flatnonzero(d2 <= self.localization_radius**2)

    def observation_grid_indices(self) -> np.ndarray:
        """Nearest grid-point index of each observation (for the forward
        operator H: state -> observation space)."""
        lat = np.clip(np.round(self.obs_lat).astype(int), 0, self.nlat - 1)
        lon = np.clip(np.round(self.obs_lon).astype(int), 0, self.nlon - 1)
        return lat * self.nlon + lon

    def local_sizes(self) -> np.ndarray:
        """Per-grid-point local observation counts (the batched SVD sizes)."""
        sizes = np.empty(self.n_points, dtype=int)
        for p in range(self.n_points):
            sizes[p] = len(self.local_observations(p))
        return sizes
