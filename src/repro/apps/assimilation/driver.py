"""End-to-end data-assimilation experiment driver (paper §V-F, Fig. 14(b)).

``AssimilationExperiment`` builds the synthetic ocean, observes the truth,
runs one or more ES-MDA passes with an injected batched-SVD solver, and
reports error/spread diagnostics. ``estimate_batch_profile`` exposes the
per-cycle SVD workload (the list of local matrix sizes) so cost estimators
can price the same workload for W-cycle vs the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.apps.assimilation.ensemble import Ensemble, smooth_random_field
from repro.apps.assimilation.grid import OceanGrid
from repro.apps.assimilation.smoother import (
    BatchedSVDSolver,
    EnsembleSmoother,
    SmootherConfig,
)
from repro.utils.matrices import default_rng

__all__ = ["AssimilationExperiment", "AssimilationResult"]


@dataclass
class AssimilationResult:
    """Diagnostics of one assimilation run."""

    rmse_before: float
    rmse_after: float
    spread_before: float
    spread_after: float
    svd_sizes: list[int]

    @property
    def improved(self) -> bool:
        """Did assimilation pull the ensemble mean toward the truth?"""
        return self.rmse_after < self.rmse_before


class AssimilationExperiment:
    """Synthetic-ocean assimilation with a pluggable batched-SVD solver."""

    def __init__(
        self,
        *,
        nlat: int = 12,
        nlon: int = 12,
        n_observations: int = 60,
        localization_radius: float = 4.0,
        n_members: int = 20,
        seed: int = 0,
        smoother_config: SmootherConfig | None = None,
    ) -> None:
        if n_members < 2:
            raise ConfigurationError("need at least 2 ensemble members")
        self.grid = OceanGrid(
            nlat=nlat,
            nlon=nlon,
            n_observations=n_observations,
            localization_radius=localization_radius,
            seed=seed,
        )
        self.seed = seed
        self.n_members = n_members
        self.smoother_config = smoother_config or SmootherConfig()
        rng = default_rng(seed + 1)
        self.truth = smooth_random_field(nlat, nlon, length_scale=4.0, rng=rng)
        self.ensemble = Ensemble.from_truth(
            self.truth, self.grid, n_members, spread=0.5, rng=rng
        )

    def observe_truth(
        self, *, rng: int | np.random.Generator | None = None
    ) -> np.ndarray:
        """Noisy observations of the truth at the observation sites."""
        gen = default_rng(self.seed + 2 if rng is None else rng)
        sites = self.grid.observation_grid_indices()
        noise = gen.normal(
            0.0, self.smoother_config.obs_error_std, size=len(sites)
        )
        return self.truth[sites] + noise

    def svd_sizes(self) -> list[int]:
        """Local-analysis SVD sizes over the mesh (the batched workload)."""
        sizes = self.grid.local_sizes()
        return [
            int(s)
            for s in sizes
            if s >= self.smoother_config.min_local_obs
        ]

    def run_cyclic(
        self,
        solver: BatchedSVDSolver,
        *,
        cycles: int = 3,
        forecast_steps: int = 2,
        dynamics=None,
    ) -> list[tuple[float, float]]:
        """Cyclic DA: alternate model forecasts with analyses.

        The truth and the ensemble both evolve under the dynamics between
        analyses; each cycle observes the *current* truth. Returns one
        ``(free_run_rmse, analysis_rmse)`` pair per cycle, where the free
        run is an identical ensemble that never assimilates — the standard
        way to show the filter is doing real work.
        """
        from repro.apps.assimilation.dynamics import AdvectionDiffusion

        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        if dynamics is None:
            dynamics = AdvectionDiffusion(
                nlat=self.grid.nlat, nlon=self.grid.nlon
            )
        smoother = EnsembleSmoother(self.grid, solver, self.smoother_config)
        gen = default_rng(self.seed + 100)
        sites = self.grid.observation_grid_indices()
        truth = self.truth.copy()
        analyzed = Ensemble(states=self.ensemble.states.copy())
        free = Ensemble(states=self.ensemble.states.copy())
        history: list[tuple[float, float]] = []
        for cycle in range(cycles):
            truth = dynamics.step_ensemble(truth[:, None], steps=forecast_steps)[
                :, 0
            ]
            analyzed = Ensemble(
                states=dynamics.step_ensemble(
                    analyzed.states, steps=forecast_steps
                )
            )
            free = Ensemble(
                states=dynamics.step_ensemble(free.states, steps=forecast_steps)
            )
            observations = truth[sites] + gen.normal(
                0.0, self.smoother_config.obs_error_std, size=len(sites)
            )
            analyzed = smoother.assimilate(
                analyzed, observations, rng=self.seed + 200 + cycle
            )
            history.append((free.rmse(truth), analyzed.rmse(truth)))
        return history

    def run(
        self,
        solver: BatchedSVDSolver,
        *,
        cycles: int = 1,
    ) -> AssimilationResult:
        """Run ``cycles`` ES-MDA passes; returns diagnostics."""
        if cycles < 1:
            raise ConfigurationError(f"cycles must be >= 1, got {cycles}")
        smoother = EnsembleSmoother(self.grid, solver, self.smoother_config)
        observations = self.observe_truth()
        ensemble = self.ensemble
        rmse_before = ensemble.rmse(self.truth)
        spread_before = ensemble.spread()
        for cycle in range(cycles):
            ensemble = smoother.assimilate(
                ensemble, observations, rng=self.seed + 10 + cycle
            )
        return AssimilationResult(
            rmse_before=rmse_before,
            rmse_after=ensemble.rmse(self.truth),
            spread_before=spread_before,
            spread_after=ensemble.spread(),
            svd_sizes=self.svd_sizes(),
        )
