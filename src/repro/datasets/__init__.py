"""Test-matrix datasets: SuiteSparse stand-ins and batched workloads.

The paper draws evaluation matrices from the SuiteSparse collection
(Table VI's size groups, Table VII's five named matrices). Offline we
synthesize stand-ins that reproduce the documented size and condition
number of each matrix — the two properties that determine Jacobi
convergence behaviour at the granularity the paper reports.
"""

from repro.datasets.suitesparse import (
    SUITESPARSE_MATRICES,
    SuiteSparseSpec,
    load_matrix,
    table7_specs,
)
from repro.datasets.workloads import (
    SizeGroup,
    TABLE6_GROUPS,
    assimilation_sizes,
    suitesparse_group_batch,
    uniform_batch,
)

__all__ = [
    "SUITESPARSE_MATRICES",
    "SuiteSparseSpec",
    "load_matrix",
    "table7_specs",
    "SizeGroup",
    "TABLE6_GROUPS",
    "assimilation_sizes",
    "suitesparse_group_batch",
    "uniform_batch",
]
