"""Batched-SVD workload generators.

Covers the three evaluation workload families:

- uniform batches (one size repeated — Figs. 7-9, Tables I/IV/V);
- the Table VI SuiteSparse size groups (variable sizes drawn within a size
  cap, with the paper's batch size per group);
- the data-assimilation size distribution (50 x 50 .. 1024 x 1024 per grid
  point, §V-F).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.matrices import default_rng, random_matrix

__all__ = [
    "SizeGroup",
    "TABLE6_GROUPS",
    "uniform_batch",
    "suitesparse_group_batch",
    "assimilation_sizes",
]


@dataclass(frozen=True)
class SizeGroup:
    """One Table VI row: matrices with ``m, n <= cap``, ``batch`` of them."""

    cap: int
    batch: int


#: Table VI's five groups (size cap, batch size).
TABLE6_GROUPS: tuple[SizeGroup, ...] = (
    SizeGroup(cap=32, batch=46),
    SizeGroup(cap=64, batch=85),
    SizeGroup(cap=128, batch=156),
    SizeGroup(cap=256, batch=243),
    SizeGroup(cap=512, batch=458),
)


def uniform_batch(
    m: int,
    n: int,
    batch: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """``batch`` iid Gaussian matrices of one size."""
    if batch < 1:
        raise ConfigurationError(f"batch must be >= 1, got {batch}")
    gen = default_rng(rng)
    return [random_matrix(m, n, rng=gen) for _ in range(batch)]


def suitesparse_group_batch(
    group: SizeGroup,
    *,
    rng: int | np.random.Generator | None = None,
    min_dim: int = 4,
) -> list[tuple[int, int]]:
    """Shapes for one Table VI group: sizes vary log-uniformly up to the cap.

    SuiteSparse sizes are heavy on the small end of each bracket, which a
    log-uniform draw reproduces; shapes are (rows, cols) with independent
    dimensions, clamped to ``[min_dim, cap]``.
    """
    if group.cap < min_dim:
        raise ConfigurationError(
            f"group cap {group.cap} below min_dim {min_dim}"
        )
    gen = default_rng(rng)
    shapes = []
    lo, hi = np.log(min_dim), np.log(group.cap)
    for _ in range(group.batch):
        m = int(round(np.exp(gen.uniform(lo, hi))))
        n = int(round(np.exp(gen.uniform(lo, hi))))
        shapes.append(
            (min(max(m, min_dim), group.cap), min(max(n, min_dim), group.cap))
        )
    return shapes


def assimilation_sizes(
    grid_points: int,
    *,
    rng: int | np.random.Generator | None = None,
    low: int = 50,
    high: int = 1024,
) -> list[tuple[int, int]]:
    """Per-grid-point SVD sizes for the data-assimilation workload (§V-F).

    Each ocean grid point's local analysis matrix is square with dimension
    set by how many observations fall in its localization radius; sizes
    span 50..1024 with most points in the mid range (log-normal-ish).
    """
    if grid_points < 1:
        raise ConfigurationError(f"grid_points must be >= 1, got {grid_points}")
    gen = default_rng(rng)
    mid = np.sqrt(low * high)
    draws = np.exp(gen.normal(np.log(mid), 0.6, size=grid_points))
    sizes = np.clip(np.round(draws).astype(int), low, high)
    return [(int(s), int(s)) for s in sizes]
