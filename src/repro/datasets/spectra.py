"""Singular-spectrum families for stress-testing convergence.

Jacobi convergence behaviour is a function of the spectrum's *shape*, not
just its condition number: clustered values stall classic orderings,
heavy-tailed decay rewards dynamic ones, noisy low-rank matrices exercise
the rank-detection path. These generators give tests and studies named,
reproducible spectrum shapes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.matrices import default_rng, random_with_spectrum

__all__ = [
    "geometric_spectrum",
    "polynomial_spectrum",
    "clustered_spectrum",
    "low_rank_plus_noise_spectrum",
    "matrix_with",
    "SPECTRUM_FAMILIES",
]


def geometric_spectrum(r: int, condition: float = 1e4) -> np.ndarray:
    """Geometrically spaced from 1 down to 1/condition."""
    _check(r)
    if condition < 1.0:
        raise ConfigurationError("condition must be >= 1")
    if r == 1:
        return np.ones(1)
    return np.geomspace(1.0, 1.0 / condition, r)


def polynomial_spectrum(r: int, power: float = 2.0) -> np.ndarray:
    """``sigma_k = k^-power`` — the decay of smooth-kernel operators."""
    _check(r)
    if power <= 0:
        raise ConfigurationError("power must be > 0")
    return np.arange(1, r + 1, dtype=np.float64) ** (-power)


def clustered_spectrum(
    r: int, clusters: int = 3, gap: float = 100.0
) -> np.ndarray:
    """Values bunched into near-identical clusters separated by ``gap``.

    Clustered singular values are the classic slow case for cyclic Jacobi
    (rotations inside a cluster barely make progress).
    """
    _check(r)
    if clusters < 1 or clusters > r:
        raise ConfigurationError(f"need 1 <= clusters <= {r}, got {clusters}")
    if gap <= 1:
        raise ConfigurationError("gap must be > 1")
    base = gap ** -np.arange(clusters, dtype=np.float64)
    values = np.empty(r)
    for k in range(r):
        cluster = k * clusters // r
        values[k] = base[cluster] * (1.0 + 1e-6 * (k % 7))
    return np.sort(values)[::-1]


def low_rank_plus_noise_spectrum(
    r: int, rank: int, noise: float = 1e-8
) -> np.ndarray:
    """``rank`` significant values over a flat noise floor."""
    _check(r)
    if not (1 <= rank <= r):
        raise ConfigurationError(f"need 1 <= rank <= {r}, got {rank}")
    if noise < 0:
        raise ConfigurationError("noise must be >= 0")
    values = np.full(r, noise)
    values[:rank] = np.linspace(1.0, 0.5, rank)
    return values


#: name -> callable(r) with default parameters, for parametrized tests.
SPECTRUM_FAMILIES = {
    "geometric": geometric_spectrum,
    "polynomial": polynomial_spectrum,
    "clustered": lambda r: clustered_spectrum(r),
    "low-rank": lambda r: low_rank_plus_noise_spectrum(r, max(1, r // 4)),
}


def matrix_with(
    family: str,
    m: int,
    n: int,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Matrix whose spectrum comes from a named family."""
    try:
        make = SPECTRUM_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown spectrum family {family!r}; "
            f"available: {sorted(SPECTRUM_FAMILIES)}"
        ) from None
    spectrum = make(min(m, n))
    return random_with_spectrum(m, n, spectrum, rng=default_rng(rng))


def _check(r: int) -> None:
    if r < 1:
        raise ConfigurationError(f"spectrum length must be >= 1, got {r}")
