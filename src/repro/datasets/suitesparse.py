"""Synthetic stand-ins for the SuiteSparse matrices of Table VII.

The five matrices are specified by their documented dimensions and 2-norm
condition numbers (paper Table VII). :func:`load_matrix` synthesizes a
dense matrix with exactly that size and condition number via a random
orthogonal sandwich around a geometric spectrum — the construction is
seeded per matrix name, so repeated loads are identical.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.matrices import random_with_condition

__all__ = [
    "SuiteSparseSpec",
    "SUITESPARSE_MATRICES",
    "load_matrix",
    "table7_specs",
]


@dataclass(frozen=True)
class SuiteSparseSpec:
    """Documented properties of one SuiteSparse matrix."""

    name: str
    rows: int
    cols: int
    condition: float

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)


#: Table VII's five matrices (name, size, condition number).
SUITESPARSE_MATRICES: dict[str, SuiteSparseSpec] = {
    spec.name: spec
    for spec in (
        SuiteSparseSpec("ash331", 331, 104, 3.10e0),
        SuiteSparseSpec("impcol_d", 425, 425, 2.06e3),
        SuiteSparseSpec("tols340", 340, 340, 2.03e5),
        SuiteSparseSpec("robot24c1_mat5", 404, 302, 3.33e11),
        SuiteSparseSpec("flower_7_1", 463, 393, 8.08e15),
    )
}


def load_matrix(name: str) -> np.ndarray:
    """Synthesize the stand-in for a named SuiteSparse matrix.

    Deterministic: the RNG is seeded from the matrix name, so every call
    returns the same matrix.
    """
    try:
        spec = SUITESPARSE_MATRICES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SuiteSparse matrix {name!r}; "
            f"available: {sorted(SUITESPARSE_MATRICES)}"
        ) from None
    seed = zlib.crc32(name.encode("utf-8"))
    return random_with_condition(
        spec.rows, spec.cols, spec.condition, rng=seed, mode="geometric"
    )


def table7_specs() -> list[SuiteSparseSpec]:
    """Table VII's matrices in the paper's row order (by condition)."""
    return sorted(SUITESPARSE_MATRICES.values(), key=lambda s: s.condition)
