"""Shared result and specification types.

These dataclasses are the currency of the public API: solvers return
:class:`SVDResult` / :class:`EVDResult`, batched drivers return
:class:`BatchedSVDResult`, and the simulated-device layer annotates results
with a :class:`KernelStats` cost record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.errors import FailureReport

__all__ = [
    "SVDResult",
    "EVDResult",
    "BatchedSVDResult",
    "SweepRecord",
    "ConvergenceTrace",
]


@dataclass(frozen=True)
class SweepRecord:
    """Convergence metrics captured after one full sweep.

    Attributes
    ----------
    sweep:
        1-based sweep index.
    off_norm:
        Maximum normalized off-diagonal cosine (one-sided methods) or
        relative off-diagonal Frobenius norm (two-sided methods).
    rotations:
        Number of plane rotations applied during this sweep.
    """

    sweep: int
    off_norm: float
    rotations: int


@dataclass
class ConvergenceTrace:
    """Accumulates per-sweep convergence metrics for a single factorization."""

    records: list[SweepRecord] = field(default_factory=list)

    def append(self, sweep: int, off_norm: float, rotations: int) -> None:
        self.records.append(SweepRecord(sweep, float(off_norm), int(rotations)))

    @staticmethod
    def bulk_append(
        traces: Sequence["ConvergenceTrace"],
        targets: np.ndarray,
        sweep: int,
        off_norms: np.ndarray,
        rotations: np.ndarray,
    ) -> None:
        """Append one sweep's metrics to ``traces[targets[pos]]`` for every
        stack position at once.

        Vectorizes the per-position Python loop the stacked solvers used
        to run each sweep: the float/int conversions happen in two bulk
        ``tolist()`` calls instead of ``2 * len(targets)`` scalar casts.
        Values land bit-identically (``tolist`` yields the same Python
        floats as ``float(x)`` elementwise).
        """
        offs = off_norms.tolist()
        rots = rotations.tolist()
        for pos, orig in enumerate(targets.tolist()):
            traces[orig].records.append(SweepRecord(sweep, offs[pos], rots[pos]))

    @property
    def sweeps(self) -> int:
        """Total number of sweeps recorded."""
        return len(self.records)

    @property
    def total_rotations(self) -> int:
        return sum(r.rotations for r in self.records)

    def off_norms(self) -> np.ndarray:
        """Off-diagonal metric per sweep as a 1-D array."""
        return np.asarray([r.off_norm for r in self.records], dtype=np.float64)

    def sweeps_to(self, tol: float) -> int | None:
        """First sweep index whose metric drops below ``tol``, else ``None``."""
        for record in self.records:
            if record.off_norm < tol:
                return record.sweep
        return None

    def __iter__(self) -> Iterator[SweepRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class SVDResult:
    """Singular value decomposition ``A = U @ diag(S) @ V.T``.

    ``U`` is ``(m, r)``, ``S`` is ``(r,)`` descending, ``V`` is ``(n, r)``
    with ``r = min(m, n)`` (thin factorization). ``trace`` carries per-sweep
    convergence data when the producing solver recorded it.
    """

    U: np.ndarray
    S: np.ndarray
    V: np.ndarray
    trace: ConvergenceTrace | None = None

    @property
    def rank_shape(self) -> tuple[int, int]:
        """(m, n) of the matrix that was decomposed."""
        return (self.U.shape[0], self.V.shape[0])

    def reconstruct(self) -> np.ndarray:
        """Return ``U @ diag(S) @ V.T``."""
        return (self.U * self.S) @ self.V.T

    def reconstruction_error(self, A: np.ndarray) -> float:
        """Relative Frobenius-norm error of the factorization against ``A``."""
        denom = np.linalg.norm(A)
        if denom == 0.0:
            return float(np.linalg.norm(self.reconstruct()))
        return float(np.linalg.norm(A - self.reconstruct()) / denom)

    def truncate(self, rank: int) -> "SVDResult":
        """Return the rank-``rank`` truncation (shares no storage)."""
        rank = int(rank)
        if rank < 1:
            raise ValueError("rank must be >= 1")
        rank = min(rank, self.S.shape[0])
        return SVDResult(
            U=self.U[:, :rank].copy(),
            S=self.S[:rank].copy(),
            V=self.V[:, :rank].copy(),
            trace=self.trace,
        )


@dataclass
class EVDResult:
    """Symmetric eigendecomposition ``B = J @ diag(L) @ J.T``.

    Eigenvalues ``L`` are returned in descending order; ``J`` columns are the
    matching eigenvectors.
    """

    J: np.ndarray
    L: np.ndarray
    trace: ConvergenceTrace | None = None

    def reconstruct(self) -> np.ndarray:
        return (self.J * self.L) @ self.J.T

    def reconstruction_error(self, B: np.ndarray) -> float:
        denom = np.linalg.norm(B)
        if denom == 0.0:
            return float(np.linalg.norm(self.reconstruct()))
        return float(np.linalg.norm(B - self.reconstruct()) / denom)


@dataclass
class BatchedSVDResult:
    """Results of a batched SVD over matrices of (possibly) varying sizes.

    ``failures`` is attached by drivers running in quarantine mode
    (:meth:`repro.core.wcycle.WCycleSVD.decompose_batch` with
    ``on_failure="quarantine"``): a
    :class:`~repro.errors.FailureReport` of every fault survived or
    absorbed. It is ``None`` in raise mode and falsy after a clean
    quarantine-mode run. Unrecovered matrices hold NaN placeholder
    factors in their result slots.
    """

    results: list[SVDResult]
    failures: "FailureReport | None" = None

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SVDResult:
        return self.results[index]

    def __iter__(self) -> Iterator[SVDResult]:
        return iter(self.results)

    def singular_values(self) -> list[np.ndarray]:
        return [r.S for r in self.results]

    def max_reconstruction_error(self, matrices: Sequence[np.ndarray]) -> float:
        """Largest relative reconstruction error across the batch.

        Quarantined-and-unrecovered matrices (NaN placeholder factors,
        listed in ``failures.unrecovered``) are excluded — their slots
        deliberately hold no factorization to measure.
        """
        if len(matrices) != len(self.results):
            raise ValueError(
                f"batch size mismatch: {len(matrices)} inputs vs "
                f"{len(self.results)} results"
            )
        skip = (
            set(self.failures.unrecovered) if self.failures is not None else ()
        )
        errors = [
            r.reconstruction_error(a)
            for i, (r, a) in enumerate(zip(self.results, matrices))
            if i not in skip
        ]
        if not errors:
            return float("nan")
        return max(errors)
