"""Level planning: width schedules and the three-group classification.

The W-cycle's "Setup" step (§III-C) picks the number of levels and the
block width ``w_h`` per level; the "given selection way" used here (and as
the recursion's default) is halving, which matches the paper's Fig. 4
example (``w_1 = 32 -> w_2 = 16``) and the candidate-table widths
{48, 24, ...}. At every level a joined pair falls into one of three groups
(§III-C Step 2):

1. its own SVD fits in shared memory -> in-SM batched SVD kernel;
2. its Gram matrix's EVD fits -> Gram GEMM + in-SM batched EVD kernel;
3. neither -> recurse with the next (smaller) width.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.memory import (
    evd_fits_in_sm,
    max_width_for_evd,
    max_width_for_svd,
    svd_fits_in_sm,
)

__all__ = [
    "Group",
    "LevelDecision",
    "classify_pair",
    "feasible_level_width",
    "select_w1",
    "width_schedule",
]


class Group(enum.Enum):
    """The three groups of §III-C Step 2."""

    SVD_IN_SM = "svd-in-sm"
    EVD_IN_SM = "evd-in-sm"
    RECURSE = "recurse"


@dataclass(frozen=True)
class LevelDecision:
    """Classification of a joined pair at one level."""

    group: Group
    #: Shape of the joined pair (rows, 2 * width).
    pair_shape: tuple[int, int]


def classify_pair(m: int, pair_width: int, device: DeviceSpec) -> LevelDecision:
    """Classify a joined pair of shape ``m x pair_width``.

    The SVD residency test applies the transpose-when-wide rule (the kernel
    factors whichever orientation is taller), matching Observation 2's
    32 x 1024 example where a 32 x 96 pair is SVD-able in SM.

    The decision is a pure function of ``(m, pair_width, device)`` and the
    W-cycle asks it for the same pairs on every sweep, so results are
    memoized (:class:`LevelDecision` is frozen and safely shared).
    """
    if m < 1 or pair_width < 1:
        raise ConfigurationError(
            f"pair shape must be positive, got {(m, pair_width)}"
        )
    return _classify_pair_cached(m, pair_width, device)


@functools.lru_cache(maxsize=65536)
def _classify_pair_cached(
    m: int, pair_width: int, device: DeviceSpec
) -> LevelDecision:
    if svd_fits_in_sm(m, pair_width, device):
        return LevelDecision(Group.SVD_IN_SM, (m, pair_width))
    if evd_fits_in_sm(pair_width, device):
        return LevelDecision(Group.EVD_IN_SM, (m, pair_width))
    return LevelDecision(Group.RECURSE, (m, pair_width))


def feasible_level_width(m: int, device: DeviceSpec) -> int:
    """Largest width whose rotation generation stays in shared memory.

    For a matrix ``m`` rows tall, a level-``h`` pair is ``m x 2w``: the
    rotation comes from an in-SM SVD (feasible up to
    :func:`max_width_for_svd`) or an in-SM Gram EVD (feasible up to
    :func:`max_width_for_evd`). Beyond the larger of the two, the pair must
    recurse — which Observation 2 says to avoid when a feasible width
    exists. Short-and-wide matrices get very large feasible widths (the
    32 x 1024 example admits w = 48 via the SVD path); tall matrices are
    capped by the EVD path (w <= 24-ish for 48 KB).
    """
    return max(max_width_for_svd(m, device), max_width_for_evd(device))


def select_w1(
    m: int,
    n: int,
    device: DeviceSpec,
    *,
    count: int = 1,
    tailoring: bool = True,
    tlp_threshold: float | None = None,
) -> int:
    """Choose the level-1 width for ``count`` copies of an ``m x n`` matrix.

    With tailoring, the auto-tuner balances width against thread-level
    parallelism over the whole group; without it, the widest feasible
    candidate-table width is used. Both are capped by
    :func:`feasible_level_width` and by ``n // 2``.
    """
    # Imported here: autotune depends on gpusim.gemm, which must not be a
    # hard dependency of level planning.
    from repro.tuning.autotune import AutoTuner
    from repro.tuning.candidates import CANDIDATE_TABLE

    feasible = min(feasible_level_width(m, device), max(1, n // 2))
    if tailoring:
        tuner = AutoTuner(device, threshold=tlp_threshold)
        try:
            return tuner.select([(m, n)] * count, max_width=feasible).plan.width
        except ConfigurationError:
            # Every table width exceeds the feasible cap (tiny matrices);
            # fall through to the direct cap.
            return feasible
    widths = sorted({w for w, _, _ in CANDIDATE_TABLE}, reverse=True)
    for w in widths:
        if w <= feasible:
            return w
    return feasible


def width_schedule(
    n: int,
    device: DeviceSpec,
    *,
    w1: int | None = None,
    shrink: int = 2,
    element_bytes: int = 8,
) -> list[int]:
    """Widths ``w_1 > w_2 > ... > w_L`` for a matrix with ``n`` columns.

    ``w1`` defaults to the largest candidate-table width that still leaves
    at least two blocks (``w <= n / 2``); levels shrink by ``shrink`` until
    the EVD of a ``2 w_L x 2 w_L`` Gram matrix fits in shared memory, which
    guarantees the recursion terminates (Algorithm 2's Setup invariant).
    """
    if n < 2:
        raise ConfigurationError(f"width_schedule needs n >= 2, got {n}")
    if shrink < 2:
        raise ConfigurationError(f"shrink must be >= 2, got {shrink}")
    evd_cap = max_width_for_evd(device, element_bytes=element_bytes)
    cap = max(1, n // 2)
    if w1 is None:
        w1 = min(48, cap)
    w1 = max(1, min(int(w1), cap))
    widths = [w1]
    w = w1
    while w > evd_cap:
        w = max(1, w // shrink)
        widths.append(w)
    return widths
