"""Analytic W-cycle cost walker (estimate mode).

Large performance experiments (e.g. 500 SVDs of 1024 x 1024) would take
hours of NumPy arithmetic in execute mode, so this module walks the same
level decisions as :class:`repro.core.wcycle.WCycleSVD` — the same width
schedule, the same three-group classification, the same kernels — but
replaces the arithmetic with predicted sweep counts
(:mod:`repro.jacobi.sweep_model`) and per-sweep kernel cost formulas. Tests
cross-validate the two modes on sizes where both run.

Unlike the executing driver (which processes one matrix at a time), the
estimator batches across matrices exactly the way the GPU algorithm does:
all panels of all same-shape matrices at a level share one kernel launch
per step, which is what drives the occupancy-vs-batch-size behaviour of
Fig. 11(a).
"""

from __future__ import annotations

import functools
import math
from collections import Counter

from repro.errors import ConfigurationError
from repro.core.levels import Group, classify_pair, select_w1, width_schedule
from repro.core.wcycle import WCycleConfig
from repro.gpusim.counters import KernelStats, Profiler, ProfileReport
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.evd_kernel import BatchedEVDKernel, SMEVDKernelConfig
from repro.gpusim.gemm import BatchedGemm, GemmTask, TilingSpec
from repro.gpusim.memory import svd_fits_in_sm
from repro.gpusim.svd_kernel import BatchedSVDKernel, SMSVDKernelConfig
from repro.jacobi.sweep_model import predict_sweeps_block
from repro.runtime.executor import Executor, RuntimeConfig, get_executor
from repro.runtime.scheduler import wcycle_matrix_cost
from repro.tuning.autotune import AutoTuner

__all__ = ["WCycleEstimator"]


def _bucket_shape(m: int, n: int) -> tuple[int, int]:
    """Round each dimension up to the next power of two (floor 4)."""

    def up(x: int) -> int:
        p = 4
        while p < x:
            p *= 2
        return p

    return up(m), up(n)


class WCycleEstimator:
    """Cost-only W-cycle walker mirroring :class:`WCycleSVD`'s decisions.

    Examples
    --------
    >>> from repro.core import WCycleEstimator
    >>> report = WCycleEstimator(device="V100").estimate_batch([(512, 512)] * 100)
    >>> report.total_time > 0
    True
    """

    def __init__(
        self,
        config: WCycleConfig | None = None,
        *,
        device: str | DeviceSpec = "V100",
        runtime: RuntimeConfig | Executor | str | None = None,
    ) -> None:
        self.config = config or WCycleConfig()
        self.device = get_device(device)
        self._executor = get_executor(runtime)

    def close(self) -> None:
        """Release the runtime's pooled workers (idempotent)."""
        self._executor.close()

    # ------------------------------------------------------------------

    def estimate_batch(
        self,
        shapes: list[tuple[int, int]],
        *,
        conditions: list[float] | None = None,
        profiler: Profiler | None = None,
    ) -> ProfileReport:
        """Predicted cost profile for a batched SVD over ``shapes``."""
        if not shapes:
            raise ConfigurationError("batch must not be empty")
        if conditions is None:
            conditions = [None] * len(shapes)  # type: ignore[list-item]
        if len(conditions) != len(shapes):
            raise ConfigurationError(
                f"{len(shapes)} shapes vs {len(conditions)} conditions"
            )
        report = ProfileReport()
        svd_kernel = self._svd_kernel()
        work_shapes = [svd_kernel.working_shape(m, n) for m, n in shapes]
        sm_group = [
            (shape, cond)
            for shape, cond in zip(work_shapes, conditions)
            if svd_fits_in_sm(*shape, self.device)
        ]
        if sm_group:
            stats = svd_kernel.estimate(
                [s for s, _ in sm_group],
                conditions=[c for _, c in sm_group],
            )
            report.add(stats)
        # Group the remaining matrices by (shape, condition) so identical
        # matrices share launches. Highly heterogeneous batches are first
        # bucketed to powers of two: the GPU algorithm batches *different*
        # sizes into the same level launches (its size-obliviousness), and
        # per-exact-shape groups of one would mis-model that as a sea of
        # tiny low-occupancy launches.
        remaining = [
            (shape, cond)
            for shape, cond in zip(work_shapes, conditions)
            if not svd_fits_in_sm(*shape, self.device)
        ]
        if len(set(remaining)) > 8:
            remaining = [
                (_bucket_shape(m, n), cond) for (m, n), cond in remaining
            ]
        rest = Counter(remaining)
        groups = sorted(
            rest.items(), key=lambda item: (item[0][0], str(item[0][1]))
        )
        # The GPU algorithm is size-oblivious: matrices of *different* sizes
        # at the same level share the batched kernel launches. The per-group
        # walk below cannot merge launches across groups, so for mixed
        # batches it runs against an overhead-free device and the launch
        # overhead of the longest group's schedule is added once.
        amortize = len(groups) > 1
        device = self.device
        if amortize:
            from dataclasses import replace

            self.device = replace(device, kernel_launch_overhead=0.0)
        try:
            # Every group's level walk is independent; each task fills a
            # private report and the reports are concatenated in group
            # order — the serial recording sequence — so parallel estimates
            # are identical to serial ones.
            for group_report in self._walk_groups(groups):
                report.extend(group_report)
        finally:
            self.device = device
        if amortize and groups:
            launches = max(
                self._launch_count(
                    m, n, self._widths(m, n, count), 0, cond
                )
                for ((m, n), cond), count in groups
            )
            report.add(
                KernelStats(
                    kernel="level_launch_overhead",
                    blocks=1,
                    threads_per_block=32,
                    shared_bytes_per_block=0,
                    flops=0.0,
                    gm_bytes=0.0,
                    gm_transactions=0,
                    occupancy=0.0,
                    time=launches * device.kernel_launch_overhead,
                )
            )
        if profiler is not None:
            for stats in report.launches:
                profiler.record(stats)
        return report

    def estimate_time(
        self,
        shapes: list[tuple[int, int]],
        *,
        conditions: list[float] | None = None,
    ) -> float:
        """Predicted simulated seconds for the batch."""
        return self.estimate_batch(shapes, conditions=conditions).total_time

    # ------------------------------------------------------------------

    def _walk_groups(self, groups) -> list[ProfileReport]:
        """Run every (shape, condition) group's level walk, one report each.

        Thread workers share ``self`` (``self.device`` is only *read*
        inside the region — the amortize swap happens before the fan-out);
        process workers rebuild a per-process estimator from the frozen
        config and device.
        """
        ex = self._executor
        costs = [
            count * wcycle_matrix_cost(*shape)
            for (shape, _), count in groups
        ]
        if ex.supports_shared_state:

            def task(item) -> ProfileReport:
                ((m, n), cond), count = item
                local = ProfileReport()
                widths = self._widths(m, n, count)
                self._estimate_level(
                    m, n, count, widths, 0, cond, multiplier=1, report=local
                )
                return local

            return ex.map(task, groups, costs=costs)
        items = [
            (self.config, self.device, shape, cond, count)
            for (shape, cond), count in groups
        ]
        return ex.map(_estimate_group_task, items, costs=costs)

    def _svd_kernel(self) -> BatchedSVDKernel:
        cfg = self.config
        return BatchedSVDKernel(
            self.device,
            SMSVDKernelConfig(
                alpha=cfg.alpha,
                cache_inner_products=cfg.cache_inner_products,
                transpose_wide=cfg.transpose_wide,
                ordering=cfg.ordering,
            ),
        )

    def _evd_kernel(self) -> BatchedEVDKernel:
        cfg = self.config
        return BatchedEVDKernel(
            self.device,
            SMEVDKernelConfig(parallel_update=cfg.parallel_evd),
        )

    def _widths(self, m: int, n: int, count: int) -> list[int]:
        """Level-width schedule for ``count`` copies of an ``m x n`` matrix.

        The auto-tuner sees the whole group, so a large batch (already
        parallel) keeps wide blocks for convergence while a small batch
        trades width for thread-level parallelism — the size-oblivious
        behaviour of §III-D.
        """
        cfg = self.config
        w1 = cfg.w1
        if w1 is None:
            w1 = select_w1(
                m,
                n,
                self.device,
                count=count,
                tailoring=cfg.tailoring,
                tlp_threshold=cfg.tlp_threshold,
            )
        return width_schedule(n, self.device, w1=w1, shrink=cfg.shrink)

    def _level_gemm(self, m: int, n: int, w: int, count: int) -> BatchedGemm:
        cfg = self.config
        if cfg.fixed_delta is not None:
            return BatchedGemm(
                self.device,
                TilingSpec(delta=cfg.fixed_delta, width=2 * w, threads=256),
            )
        if cfg.tailoring:
            tuner = AutoTuner(self.device, threshold=cfg.tlp_threshold)
            plan = tuner.select([(m, n)] * count).plan
            tiling = TilingSpec(
                delta=plan.delta, width=2 * w, threads=plan.threads
            )
        else:
            tiling = TilingSpec(delta=m, width=2 * w, threads=256)
        return BatchedGemm(self.device, tiling)

    def _level_plan(
        self, n: int, widths: list[int], depth: int, cond: float | None
    ) -> tuple[int, int, int, int, int]:
        """(w, nb, sweeps, steps, pairs_per_step) at one level."""
        w = max(1, min(widths[min(depth, len(widths) - 1)], n // 2))
        nb = math.ceil(n / w)
        if depth == 0 or self.config.inner_sweeps is None:
            sweeps = predict_sweeps_block(n, w, cond)
        else:
            sweeps = self.config.inner_sweeps
        steps = nb - 1 if nb % 2 == 0 else nb
        return w, nb, sweeps, steps, nb // 2

    def _launch_count(
        self,
        m: int,
        n: int,
        widths: list[int],
        depth: int,
        cond: float | None,
    ) -> int:
        """Kernel launches one matrix's schedule issues (for amortizing
        overhead across a mixed batch)."""
        if n < 2:
            return 0
        w, nb, sweeps, steps, _ = self._level_plan(n, widths, depth, cond)
        pair_width = min(2 * w, n)
        decision = classify_pair(m, pair_width, self.device)
        if decision.group is Group.SVD_IN_SM:
            per_step = 2  # svd + update
        elif decision.group is Group.EVD_IN_SM:
            per_step = 3  # gram + evd + update
        else:
            per_step = 1 + self._launch_count(
                m, pair_width, widths, depth + 1, cond
            )
        return sweeps * steps * per_step

    def _estimate_level(
        self,
        m: int,
        n: int,
        count: int,
        widths: list[int],
        depth: int,
        cond: float | None,
        multiplier: int,
        report: ProfileReport,
    ) -> None:
        """Account the cost of orthogonalizing ``count`` copies of an
        ``m x n`` panel at level ``depth``, scaled by ``multiplier`` (the
        number of times the caller invokes this solve)."""
        if n < 2:
            return
        w, nb, sweeps, steps, pairs_per_step = self._level_plan(
            n, widths, depth, cond
        )
        pair_width = min(2 * w, n)
        decision = classify_pair(m, pair_width, self.device)
        gemm = self._level_gemm(m, n, w, count)
        batch = count * pairs_per_step
        repeats = multiplier * sweeps * steps

        if decision.group is Group.SVD_IN_SM:
            stats = self._svd_kernel().estimate(
                [(m, pair_width)] * batch, conditions=[cond] * batch
            )
            report.add(stats.repeated(repeats))
        elif decision.group is Group.EVD_IN_SM:
            gram = gemm.simulate_gram([GemmTask(m, pair_width)] * batch)
            report.add(gram.repeated(repeats))
            evd = self._evd_kernel().estimate(
                [pair_width] * batch, conditions=[cond] * batch
            )
            report.add(evd.repeated(repeats))
        else:
            self._estimate_level(
                m,
                pair_width,
                batch,
                widths,
                depth + 1,
                cond,
                multiplier=repeats,
                report=report,
            )
        # The level's update GEMM rotates the data panels and the V panels.
        update_tasks = [GemmTask(m, pair_width)] * batch + [
            GemmTask(n, pair_width)
        ] * batch
        update = gemm.simulate_update(update_tasks)
        report.add(update.repeated(repeats))


# -- process-pool task shell --------------------------------------------


@functools.lru_cache(maxsize=8)
def _worker_estimator(
    config: WCycleConfig, device: DeviceSpec
) -> WCycleEstimator:
    """Per-process estimator cache keyed by the frozen (config, device)."""
    return WCycleEstimator(config, device=device)


def _estimate_group_task(item) -> ProfileReport:
    """Worker shell: walk one (shape, condition) group into a report.

    ``device`` arrives already amortized (overhead-free) when the parent
    batch is mixed, so the walk matches the parent's serial walk exactly.
    """
    config, device, shape, cond, count = item
    est = _worker_estimator(config, device)
    m, n = shape
    local = ProfileReport()
    widths = est._widths(m, n, count)
    est._estimate_level(
        m, n, count, widths, 0, cond, multiplier=1, report=local
    )
    return local
