"""Low-precision W-cycle planning (paper §V-E, future work).

The paper sketches two consequences of moving the batched SVD to fp32 or
bf16: larger tiles fit in shared memory (wider ``w_h``, shallower
recursion) and tensor cores accelerate the level GEMMs. This module turns
that sketch into a concrete *planner*: for a workload and precision it
reports the feasible width, the level schedule, the projected speedup of
one W-cycle sweep, and the relative-accuracy floor the precision implies.

The arithmetic in this library stays float64; the planner answers the
capacity/throughput question the paper poses, which is independent of
running the rounding itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.levels import width_schedule
from repro.errors import ConfigurationError
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.memory import max_width_for_evd, max_width_for_svd
from repro.gpusim.precision import FP64, Precision, get_precision
from repro.jacobi.sweep_model import predict_sweeps_block

__all__ = ["LevelPlan", "LowPrecisionPlanner"]


@dataclass(frozen=True)
class LevelPlan:
    """One precision's projected W-cycle configuration for a workload."""

    precision: Precision
    #: Widest feasible level-1 width (EVD or direct-SVD path).
    max_width: int
    #: Level widths the default halving schedule would use.
    widths: tuple[int, ...]
    #: Predicted level-0 sweeps at that width.
    sweeps: int
    #: Per-sweep time of one level round relative to the FP64 plan (< 1 is
    #: faster), combining storage-driven width gains, vector-rate gains on
    #: the rotation kernels, and tensor-core gains on the GEMMs.
    relative_sweep_cost: float
    #: Smallest relative singular value resolvable at this precision.
    accuracy_floor: float


class LowPrecisionPlanner:
    """Plans W-cycle configurations across storage precisions."""

    #: Fraction of a level round spent in the two batched GEMMs (profiled
    #: from the FP64 estimator on mid-size square batches).
    GEMM_FRACTION = 0.45

    def __init__(self, device: str | DeviceSpec = "A100") -> None:
        self.device = get_device(device)

    def plan(
        self,
        m: int,
        n: int,
        precision: str | Precision,
    ) -> LevelPlan:
        """Project the W-cycle configuration for ``m x n`` matrices."""
        if m < 2 or n < 2:
            raise ConfigurationError(f"need a matrix of at least 2x2, got {(m, n)}")
        prec = get_precision(precision)
        feasible = max(
            max_width_for_svd(m, self.device, element_bytes=prec.element_bytes),
            max_width_for_evd(self.device, element_bytes=prec.element_bytes),
        )
        feasible = max(1, min(feasible, n // 2))
        widths = tuple(
            width_schedule(
                n,
                self.device,
                w1=feasible,
                element_bytes=prec.element_bytes,
            )
        )
        sweeps = predict_sweeps_block(n, feasible)
        rel = self._relative_cost(m, n, prec)
        return LevelPlan(
            precision=prec,
            max_width=feasible,
            widths=widths,
            sweeps=sweeps,
            relative_sweep_cost=rel,
            accuracy_floor=prec.sqrt_eps,
        )

    def compare(
        self, m: int, n: int, precisions: list[str] = ("fp64", "fp32", "bf16")
    ) -> list[LevelPlan]:
        """Plans for several precisions, FP64-first order preserved."""
        return [self.plan(m, n, p) for p in precisions]

    # ------------------------------------------------------------------

    def _relative_cost(self, m: int, n: int, prec: Precision) -> float:
        """Per-sweep cost of one level round relative to FP64.

        Work per sweep scales like ``pairs * w^2`` terms whose total is
        roughly linear in ``w`` for the EVD path and constant for the
        GEMMs (see DESIGN.md); the dominant effects are the kernel-rate
        multipliers, the tensor-core GEMM rate, and the sweep-count change
        from a wider block.
        """
        base_width = max(
            max_width_for_svd(m, self.device),
            max_width_for_evd(self.device),
        )
        base_width = max(1, min(base_width, n // 2))
        base_sweeps = predict_sweeps_block(n, base_width)
        width = max(
            max_width_for_svd(m, self.device, element_bytes=prec.element_bytes),
            max_width_for_evd(self.device, element_bytes=prec.element_bytes),
        )
        width = max(1, min(width, n // 2))
        sweeps = predict_sweeps_block(n, width)
        gemm_rate = prec.tensor_gemm_multiplier if (
            self.device.tensor_core_gemm_speedup > 1.0
        ) else prec.flops_multiplier
        kernel_cost = (1.0 - self.GEMM_FRACTION) / prec.flops_multiplier
        # EVD work per sweep grows ~linearly with w; GEMM work is ~flat.
        kernel_cost *= width / base_width
        gemm_cost = self.GEMM_FRACTION / gemm_rate
        sweep_ratio = sweeps / base_sweeps if prec is not FP64 else 1.0
        return (kernel_cost + gemm_cost) * sweep_ratio
