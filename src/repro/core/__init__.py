"""The paper's primary contribution: the W-cycle batched SVD.

- :mod:`~repro.core.levels` — per-matrix level/width schedules (the
  "multiple filters" of §III-D);
- :mod:`~repro.core.wcycle` — the executing multilevel driver
  (Algorithm 2);
- :mod:`~repro.core.estimator` — the analytic cost walker used by
  large-size performance benchmarks.
"""

from repro.core.levels import (
    Group,
    LevelDecision,
    classify_pair,
    feasible_level_width,
    select_w1,
    width_schedule,
)
from repro.core.wcycle import WCycleConfig, WCycleSVD
from repro.core.estimator import WCycleEstimator
from repro.core.lowprec import LevelPlan, LowPrecisionPlanner

__all__ = [
    "Group",
    "LevelDecision",
    "classify_pair",
    "feasible_level_width",
    "select_w1",
    "width_schedule",
    "WCycleConfig",
    "WCycleSVD",
    "WCycleEstimator",
    "LevelPlan",
    "LowPrecisionPlanner",
]
