"""W-cycle SVD: the executing multilevel batched driver (Algorithm 2).

``decompose_batch`` implements the paper's workflow:

1. matrices whose whole SVD fits in shared memory run in one batched in-SM
   SVD kernel launch (Algorithm 2 line 3);
2. every other matrix descends through levels of shrinking block width.
   At each level, a sweep orthogonalizes all column-block pairs; each joined
   pair is classified into the three groups (in-SM SVD / in-SM Gram EVD /
   recurse) and the groups are served by batched kernels;
3. the per-pair rotations are applied by the level's batched update GEMM
   (tailored per §IV-D when enabled);
4. sweeps repeat until all column blocks are mutually orthogonal.

All kernels run real NumPy math while accounting simulated-GPU costs, so a
:class:`~repro.gpusim.counters.Profiler` threaded through ``decompose_batch``
yields the occupancy/transaction/time profile of the whole run.

Host parallelism (the ``runtime`` parameter) shards the independent axes of
the workflow across workers: the per-matrix level recursions, the three
kernel groups of a sweep step, and (inside the kernels) the shape buckets
of each batched launch. Every parallel site hands each task its own
:class:`~repro.gpusim.counters.Profiler` and rotation accumulator and
merges them in the serial iteration order, so parallel runs report
*identical* factors, sweep counts, and simulated-GPU accounting — the
backends trade wall-clock only.
"""

from __future__ import annotations

import functools

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FailureReport,
    NonFiniteError,
)
from repro.gpusim.counters import Profiler
from repro.gpusim.device import DeviceSpec, get_device
from repro.gpusim.evd_kernel import BatchedEVDKernel, SMEVDKernelConfig
from repro.gpusim.gemm import BatchedGemm, TilingSpec
from repro.gpusim.svd_kernel import BatchedSVDKernel, SMSVDKernelConfig
from repro.gpusim.memory import svd_fits_in_sm
from repro.core.levels import Group, classify_pair, select_w1, width_schedule
from repro.jacobi.batched import _nan_svd_result
from repro.jacobi.convergence import gram_offdiagonal_cosine
from repro.jacobi.factors import complete_square_orthogonal, finalize_onesided
from repro.jacobi.onesided_block import column_blocks
from repro.jacobi.onesided_vector import OneSidedConfig, OneSidedJacobiSVD
from repro.orderings import Ordering, get_ordering, sweep_schedule
from repro.runtime import sanitize
from repro.runtime.executor import (
    ON_FAILURE_MODES,
    Executor,
    RuntimeConfig,
    TaskError,
    _CapturedCall,
    get_executor,
)
from repro.runtime.arena import resolve as _arena_resolve
from repro.runtime.resilient import base_executor, policy_of
from repro.runtime.scheduler import (
    evd_stack_cost,
    svd_stack_cost,
    wcycle_matrix_cost,
)
from repro.runtime.shm import export_array, import_array, release
from repro.tuning.autotune import AutoTuner
from repro.types import BatchedSVDResult, ConvergenceTrace, SVDResult
from repro.utils.logging import get_logger
from repro.utils.validation import check_batch

__all__ = ["WCycleConfig", "WCycleSVD"]

_log = get_logger("core.wcycle")


@dataclass(frozen=True)
class _PairPlan:
    """Precomputed per-pair data for one step of a level sweep.

    ``cols`` is the joined pair's gathered column index array (built once
    per level instead of per sweep); ``group`` its three-group
    classification, which depends only on the pair shape and device.
    """

    cols: np.ndarray
    group: Group


@dataclass(frozen=True)
class WCycleConfig:
    """Configuration of the W-cycle batched SVD.

    Attributes
    ----------
    w1:
        Level-1 block width. ``None`` (default) lets each matrix pick the
        widest feasible width (size-oblivious mode); setting it forces the
        same ``w_1`` on every matrix — the "uniform w" the paper argues
        against (ablation D5).
    shrink:
        Width divisor between levels (the "given selection way").
    tailoring:
        Tile the level GEMMs via the auto-tuner (§IV-D). When off, each
        GEMM gets one thread block (``delta = m``).
    fixed_delta:
        Pin the standard-plate height δ for every level GEMM (overrides
        both the tuner and the no-tailoring default) — how Tables I/V and
        Figs. 12/15(b) sweep fixed tailoring plans.
    tlp_threshold:
        Auto-tuner threshold override (``None`` = the library default).
    alpha:
        α-warp policy for the in-SM SVD kernel: ``"auto"`` (default) picks
        the fastest candidate per launch (the decision-tree oracle), a
        float pins it, ``None`` uses the GCD rule.
    cache_inner_products / transpose_wide / parallel_evd:
        Kernel optimization switches (ablations D1, D6, D3).
    gram_cache:
        Run the in-SM SVD kernel's sweeps off a full Gram-matrix cache
        (:attr:`repro.jacobi.onesided_vector.OneSidedConfig.gram_cache`).
        Requires ``cache_inner_products``; same accuracy contract, not
        bit-identical to the default path.
    qr_precondition:
        Factor tall matrices as ``A = QR`` and run the W-cycle on the
        ``n x n`` triangular factor (refs [5], [42]) — an optional
        extension beyond the paper's Algorithm 2.
    tol / max_sweeps / ordering:
        Outer-sweep control at level 0 (1e-12, the paper's accuracy bar).
    inner_sweeps:
        Sweeps a recursed (level >= 1) solve performs per visit. The paper's
        W-cycle runs **one** sweep per visit — the workflow descends, sweeps
        once, and returns, like a multigrid W-cycle (Fig. 4's narrative) —
        so 1 is the default. ``None`` converges each inner solve fully
        (a V-cycle-like variant, much more expensive per outer sweep).
    inner_tol / inner_max_sweeps:
        Convergence control for inner solves when ``inner_sweeps`` is None.
        Inner rotations only need to be *good*, not exact — the outer
        sweeps absorb their residual — so the default stops comfortably
        above the EVD kernels' attainable floor on graded panels.
    """

    w1: int | None = None
    shrink: int = 2
    tailoring: bool = True
    fixed_delta: int | None = None
    tlp_threshold: float | None = None
    alpha: float | str | None = "auto"
    cache_inner_products: bool = True
    gram_cache: bool = False
    transpose_wide: bool = True
    parallel_evd: bool = True
    qr_precondition: bool = False
    tol: float = 1e-12
    max_sweeps: int = 60
    ordering: str = "round-robin"
    inner_sweeps: int | None = 1
    inner_tol: float = 1e-10
    inner_max_sweeps: int = 60

    def __post_init__(self) -> None:
        if not (0.0 < self.tol < 1.0):
            raise ConfigurationError(f"tol must be in (0, 1), got {self.tol}")
        if self.max_sweeps < 1:
            raise ConfigurationError(
                f"max_sweeps must be >= 1, got {self.max_sweeps}"
            )
        if self.gram_cache and not self.cache_inner_products:
            raise ConfigurationError(
                "gram_cache requires cache_inner_products=True"
            )
        if self.w1 is not None and self.w1 < 1:
            raise ConfigurationError(f"w1 must be >= 1, got {self.w1}")
        if self.shrink < 2:
            raise ConfigurationError(f"shrink must be >= 2, got {self.shrink}")
        if self.inner_sweeps is not None and self.inner_sweeps < 1:
            raise ConfigurationError(
                f"inner_sweeps must be None or >= 1, got {self.inner_sweeps}"
            )
        if self.fixed_delta is not None and self.fixed_delta < 1:
            raise ConfigurationError(
                f"fixed_delta must be None or >= 1, got {self.fixed_delta}"
            )


class WCycleSVD:
    """The W-cycle batched SVD solver.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import WCycleSVD
    >>> rng = np.random.default_rng(3)
    >>> batch = [rng.standard_normal((32, 24)), rng.standard_normal((8, 8))]
    >>> results = WCycleSVD(device="V100").decompose_batch(batch)
    >>> results.max_reconstruction_error(batch) < 1e-10
    True
    """

    def __init__(
        self,
        config: WCycleConfig | None = None,
        *,
        device: str | DeviceSpec = "V100",
        runtime: RuntimeConfig | Executor | str | None = None,
    ) -> None:
        self.config = config or WCycleConfig()
        self.device = get_device(device)
        self._executor = get_executor(runtime)
        self._ordering: Ordering = get_ordering(self.config.ordering)
        #: Rotations applied per level depth in the most recent call.
        self.last_level_rotations: dict[int, int] = {}
        #: Failure/recovery record of the most recent batch call.
        self.last_failures = FailureReport()
        # Batch size of the call in progress; informs the width tuner the
        # way the GPU algorithm's batch-wide auto-tuning does.
        self._batch_hint: int = 1
        # Per-instance caches — valid for the solver's lifetime because
        # config and device are both immutable. The kernels are built once
        # (not per sweep step), tailored GEMM engines and per-level sweep
        # plans are memoized per (m, n, w).
        self._svd_kernel_cache: BatchedSVDKernel | None = None
        self._evd_kernel_cache: BatchedEVDKernel | None = None
        self._gemm_cache: dict[tuple[int, int, int], BatchedGemm] = {}
        self._plan_cache: dict[tuple[int, int, int], list[list[_PairPlan]]] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the runtime's pooled workers (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "WCycleSVD":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def decompose(
        self, A: np.ndarray, *, profiler: Profiler | None = None
    ) -> SVDResult:
        """SVD of a single matrix through the W-cycle workflow."""
        return self.decompose_batch([A], profiler=profiler)[0]

    def decompose_batch(
        self,
        matrices: list[np.ndarray],
        *,
        profiler: Profiler | None = None,
        on_failure: str | None = None,
    ) -> BatchedSVDResult:
        """Batched SVD of matrices with (possibly) different sizes.

        ``on_failure`` selects the failure mode: ``"raise"`` propagates
        the first :class:`~repro.errors.ConvergenceError`;
        ``"quarantine"`` re-solves failing matrices through the reference
        per-matrix path and attaches a
        :class:`~repro.errors.FailureReport` to the returned batch
        (``result.failures``). ``None`` inherits the runtime's
        :class:`~repro.runtime.resilient.RetryPolicy` (default: raise).
        """
        if on_failure is None:
            policy = policy_of(self._executor)
            on_failure = policy.on_failure if policy is not None else "raise"
        if on_failure not in ON_FAILURE_MODES:
            raise ConfigurationError(
                f"on_failure must be one of {ON_FAILURE_MODES}, "
                f"got {on_failure!r}"
            )
        quarantine = on_failure == "quarantine"
        matrices = check_batch(matrices)
        self.last_level_rotations = {}
        self.last_failures = report = FailureReport()
        self._batch_hint = len(matrices)
        results: list[SVDResult | None] = [None] * len(matrices)
        svd_kernel = self._svd_kernel()
        # Group (Algorithm 2 line 2): whole SVD resident in SM.
        sm_indices = [
            i
            for i, a in enumerate(matrices)
            if svd_fits_in_sm(*svd_kernel.working_shape(*a.shape), self.device)
        ]
        _log.debug(
            "batch of %d: %d whole-SVD-in-SM, %d through levels",
            len(matrices),
            len(sm_indices),
            len(matrices) - len(sm_indices),
        )
        if sm_indices:
            sm_results, _ = svd_kernel.run(
                [matrices[i] for i in sm_indices],
                profiler=profiler,
                on_failure=on_failure,
            )
            # The kernel's failure entries are sm-group-local; remap them
            # into caller batch indices before attaching.
            for e in svd_kernel.last_failures:
                report.add(
                    index=sm_indices[e.index] if e.index >= 0 else -1,
                    stage=e.stage,
                    cause=e.cause,
                    message=e.message,
                    attempts=e.attempts,
                    recovered=e.recovered,
                )
            for i, res in zip(sm_indices, sm_results):
                results[i] = res
        large = [i for i in range(len(matrices)) if results[i] is None]
        if large:
            for i, out in zip(
                large,
                self._run_large(matrices, large, profiler, quarantine, report),
            ):
                results[i] = out
        return BatchedSVDResult(
            results=results,  # type: ignore[arg-type]
            failures=report if quarantine else None,
        )

    def _run_large(
        self,
        matrices: list[np.ndarray],
        large: list[int],
        profiler: Profiler | None,
        quarantine: bool = False,
        report: FailureReport | None = None,
    ) -> list[SVDResult]:
        """Solve the through-the-levels matrices, possibly across workers.

        Each matrix's level recursion is independent; tasks run with a
        private profiler and rotation accumulator, and the per-task records
        are merged **in batch index order** — the order the serial loop
        records in — so parallel runs report identical accounting.

        With ``quarantine`` set, a task that fails terminally (numerically,
        or after the executor's retries) is rescued per matrix: inline
        re-solve for infrastructure faults (bit-identical), the reference
        per-matrix solver for numerical failures, NaN placeholders last.
        """
        ex = self._executor
        on_error = "return" if quarantine else "raise"
        costs = [wcycle_matrix_cost(*matrices[i].shape) for i in large]
        if ex.supports_shared_state:
            # Build both kernels before fanning out so worker threads share
            # one instance instead of racing to construct it.
            self._svd_kernel()
            self._evd_kernel()

            def task(i: int):
                local = Profiler()
                rotations: dict[int, int] = {}
                res = self._factorize_large(
                    matrices[i], local, level_rotations=rotations
                )
                return res, local.report, rotations

            outs = ex.map(task, large, costs=costs, on_error=on_error)
        elif len(large) == 1:
            # A single large matrix gains nothing from a matrix-level
            # process fan-out; solving it here lets the kernels' engine
            # shard its bucket work across the process pool instead.
            def solve_inline(i: int):
                local = Profiler()
                rotations: dict[int, int] = {}
                res = self._factorize_large(
                    matrices[i], local, level_rotations=rotations
                )
                return res, local.report, rotations

            run = _CapturedCall(solve_inline) if quarantine else solve_inline
            outs = [run(large[0])]
        elif getattr(base_executor(ex), "arena_transport", False):
            # Persistent backend: inputs travel as arena slot leases (no
            # per-task segment create/attach/unlink); the small factor
            # triples pickle back with the worker's profiler records.
            arena = base_executor(ex).arena
            leases, items = [], []
            try:
                for i in large:
                    ref = arena.place(matrices[i])
                    leases.append(ref)
                    items.append(
                        (self.config, self.device, ref, self._batch_hint)
                    )
                outs = ex.map(
                    _factorize_large_arena_task, items, costs=costs,
                    on_error=on_error,
                )
            finally:
                for ref in leases:
                    arena.release_lease(ref)
        else:
            segments, items = [], []
            try:
                for i in large:
                    seg, ref = export_array(matrices[i])
                    segments.append(seg)
                    items.append(
                        (self.config, self.device, ref, self._batch_hint)
                    )
                outs = ex.map(
                    _factorize_large_task, items, costs=costs,
                    on_error=on_error,
                )
            finally:
                for seg in segments:
                    release(seg, unlink=True)
        # The merge below must fold per-task records in batch-index order
        # (the serial recording sequence); the sanitizer asserts it.
        sanitize.check_merge_order("WCycleSVD._run_large", large)
        results: list[SVDResult] = []
        for i, out in zip(large, outs):
            if isinstance(out, TaskError):
                out = self._rescue_large(matrices[i], i, out, report)
            res, rep, rotations = out
            results.append(res)
            if profiler is not None:
                profiler.report.extend(rep)
            for depth, count in rotations.items():
                self.last_level_rotations[depth] = (
                    self.last_level_rotations.get(depth, 0) + count
                )
        return results

    def _rescue_large(
        self,
        A: np.ndarray,
        index: int,
        task_error: TaskError,
        report: FailureReport | None,
    ):
        """Per-matrix quarantine ladder for a failed level-recursion task.

        Infrastructure faults re-solve inline (the parent reproduces the
        exact serial bits); deterministic numerical failures descend to the
        reference per-matrix solver; a matrix failing even that keeps NaN
        placeholder factors. Every outcome lands in ``report``.
        """
        exc: BaseException = task_error.error
        attempts = max(1, len(task_error.failures))
        if report is None:
            report = FailureReport()
        if not isinstance(exc, (ConvergenceError, NonFiniteError)):
            # Infrastructure fault: replay on the executor-free serial
            # solver (the bit-exact reference path — and out of reach of
            # the shared executor's fault frames and pool state).
            serial = _worker_solver(self.config, self.device)
            serial._batch_hint = self._batch_hint
            try:
                local = Profiler()
                rotations: dict[int, int] = {}
                res = serial._factorize_large(
                    A, local, level_rotations=rotations
                )
            except (ConvergenceError, NonFiniteError) as inline_exc:
                exc = inline_exc
                attempts += 1
            else:
                report.add(
                    index=index,
                    stage="wcycle",
                    cause=type(exc).__name__,
                    message=str(exc),
                    attempts=attempts + 1,
                    recovered=True,
                )
                return res, local.report, rotations
        try:
            res = self._reference_solver().decompose(A)
        except (ConvergenceError, NonFiniteError) as ref_exc:
            report.add(
                index=index,
                stage="wcycle",
                cause=type(ref_exc).__name__,
                message=str(ref_exc),
                attempts=attempts + 2,
                recovered=False,
            )
            return _nan_svd_result(A.shape), [], {}
        report.add(
            index=index,
            stage="wcycle",
            cause=type(exc).__name__,
            message=str(exc),
            attempts=attempts + 2,
            recovered=True,
        )
        return res, [], {}

    def _reference_solver(self) -> OneSidedJacobiSVD:
        """The flat per-matrix Jacobi solver used as the quarantine rung."""
        cfg = self.config
        return OneSidedJacobiSVD(
            OneSidedConfig(
                tol=cfg.tol,
                max_sweeps=cfg.max_sweeps,
                ordering=cfg.ordering,
                cache_inner_products=cfg.cache_inner_products,
                transpose_wide=cfg.transpose_wide,
            )
        )

    # ------------------------------------------------------------------
    # large-matrix path
    # ------------------------------------------------------------------

    def _svd_kernel(self) -> BatchedSVDKernel:
        if self._svd_kernel_cache is None:
            cfg = self.config
            self._svd_kernel_cache = BatchedSVDKernel(
                self.device,
                SMSVDKernelConfig(
                    alpha=cfg.alpha,
                    cache_inner_products=cfg.cache_inner_products,
                    gram_cache=cfg.gram_cache,
                    transpose_wide=cfg.transpose_wide,
                    ordering=cfg.ordering,
                ),
                executor=self._executor,
            )
        return self._svd_kernel_cache

    def _evd_kernel(self) -> BatchedEVDKernel:
        if self._evd_kernel_cache is None:
            cfg = self.config
            # The in-SM EVD always solves to machine accuracy: it is cheap,
            # and the rotation quality it produces bounds what the outer
            # sweeps can reach (inner_tol only governs recursed *level*
            # solves).
            self._evd_kernel_cache = BatchedEVDKernel(
                self.device,
                SMEVDKernelConfig(
                    parallel_update=cfg.parallel_evd,
                    tol=1e-14,
                    max_sweeps=cfg.inner_max_sweeps,
                    ordering=cfg.ordering,
                ),
                executor=self._executor,
            )
        return self._evd_kernel_cache

    def _factorize_large(
        self,
        A: np.ndarray,
        profiler: Profiler | None,
        *,
        level_rotations: dict[int, int] | None = None,
    ) -> SVDResult:
        if level_rotations is None:
            level_rotations = self.last_level_rotations
        cfg = self.config
        m, n = A.shape
        if cfg.transpose_wide and m < n:
            inner = self._factorize_large(
                A.T.copy(), profiler, level_rotations=level_rotations
            )
            return SVDResult(U=inner.V, S=inner.S, V=inner.U, trace=inner.trace)
        if cfg.qr_precondition:
            from repro.jacobi.preconditioning import qr_precondition_decompose

            return qr_precondition_decompose(
                A, lambda R: self._solve_any(R, profiler, level_rotations)
            )
        return self._factorize_tall(A.copy(), profiler, level_rotations)

    def _solve_any(
        self,
        A: np.ndarray,
        profiler: Profiler | None,
        level_rotations: dict[int, int],
    ) -> SVDResult:
        """Route a matrix through the in-SM kernel or the level recursion,
        whichever its size admits (used by the QR-preconditioned path,
        whose triangular factor is often small enough for shared memory)."""
        kernel = self._svd_kernel()
        if svd_fits_in_sm(*kernel.working_shape(*A.shape), self.device):
            # Explicit raise mode: quarantine granularity is the top-level
            # batch matrix, so inner failures must propagate to the rescue
            # ladder instead of silently NaN-ing a panel.
            results, _ = kernel.run([A], profiler=profiler, on_failure="raise")
            return results[0]
        return self._factorize_tall(A.copy(), profiler, level_rotations)

    def _factorize_tall(
        self,
        work: np.ndarray,
        profiler: Profiler | None,
        level_rotations: dict[int, int],
    ) -> SVDResult:
        m, n = work.shape
        V = np.eye(n)
        trace = ConvergenceTrace()
        cfg = self.config
        w1 = cfg.w1
        if w1 is None:
            w1 = select_w1(
                m,
                n,
                self.device,
                count=self._batch_hint,
                tailoring=cfg.tailoring,
                tlp_threshold=cfg.tlp_threshold,
            )
        widths = width_schedule(n, self.device, w1=w1, shrink=cfg.shrink)
        _log.debug(
            "factorizing %dx%d on %s: widths %s", m, n, self.device.name, widths
        )
        self._orthogonalize(
            work,
            V,
            widths,
            depth=0,
            tol=self.config.tol,
            max_sweeps=self.config.max_sweeps,
            profiler=profiler,
            level_rotations=level_rotations,
            trace=trace,
        )
        return finalize_onesided(work, V, trace)

    # ------------------------------------------------------------------
    # the W-cycle recursion
    # ------------------------------------------------------------------

    def _orthogonalize(
        self,
        work: np.ndarray,
        V: np.ndarray,
        widths: list[int],
        depth: int,
        tol: float,
        max_sweeps: int,
        profiler: Profiler | None,
        level_rotations: dict[int, int],
        trace: ConvergenceTrace | None = None,
        fixed_sweeps: int | None = None,
    ) -> None:
        """Orthogonalize the columns of ``work`` at level ``depth``.

        Runs block-Jacobi sweeps with width ``widths[depth]``, serving each
        joined pair via the group-appropriate batched kernel; group-3 pairs
        recurse into ``depth + 1``. ``V`` accumulates the rotations; per-depth
        rotation counts go into the caller-owned ``level_rotations`` (each
        parallel task gets its own, merged additively afterwards).

        With ``fixed_sweeps`` set this is one W-cycle *visit*: exactly that
        many sweeps run, no convergence check (the rotation returned to the
        parent level is then approximate, which the parent's own sweeping
        absorbs — the multigrid character of the W-cycle).
        """
        m, n = work.shape
        if n < 2:
            return
        w = max(1, min(widths[min(depth, len(widths) - 1)], n // 2))
        plan = self._level_plan(m, n, w)
        gemm = self._level_gemm(m, n, w)
        sweep_budget = fixed_sweeps if fixed_sweeps is not None else max_sweeps
        for sweep_index in range(1, sweep_budget + 1):
            rotations = 0
            for step in plan:
                rotations += self._apply_step(
                    work, V, step, widths, depth, gemm, profiler,
                    level_rotations,
                )
            level_rotations[depth] = (
                level_rotations.get(depth, 0) + rotations
            )
            if fixed_sweeps is not None:
                continue
            off = gram_offdiagonal_cosine(work)
            if trace is not None:
                trace.append(sweep_index, off, rotations)
            if off < tol:
                return
        if fixed_sweeps is not None:
            return
        raise ConvergenceError(
            f"W-cycle level {depth} (w={w}) did not converge in "
            f"{max_sweeps} sweeps (residual {off:.3e})",
            sweeps=max_sweeps,
            residual=off,
        )

    def _level_plan(self, m: int, n: int, w: int) -> list[list[_PairPlan]]:
        """Precomputed sweep plan for a level of an ``m x n`` worked matrix.

        Builds, once per ``(m, n, w)``, what the seed driver rebuilt every
        sweep step: the ordering's schedule over column blocks, each joined
        pair's gathered column indices (the ``np.r_[...]`` arrays), and its
        three-group classification. All of it is a pure function of the
        level geometry and the device, so repeated sweeps — and repeated
        W-cycle visits at the same level — reuse one plan.
        """
        key = (m, n, w)
        plan = self._plan_cache.get(key)
        if plan is None:
            blocks = column_blocks(n, w)
            if isinstance(self.config.ordering, str):
                # Named orderings share the process-wide memoized schedule
                # (one build per (ordering, n) across solver instances).
                schedule = sweep_schedule(self.config.ordering, len(blocks))
            else:
                schedule = self._ordering.sweep(len(blocks))
            plan = [
                [
                    _PairPlan(
                        cols=(
                            cols := np.r_[slice(*blocks[bi]), slice(*blocks[bj])]
                        ),
                        group=classify_pair(m, len(cols), self.device).group,
                    )
                    for bi, bj in step
                ]
                for step in schedule
            ]
            self._plan_cache[key] = plan
        return plan

    def _level_gemm(self, m: int, n: int, w: int) -> BatchedGemm:
        """The (possibly tailored) GEMM engine for one level, memoized —
        repeated sweeps must not re-run the auto-tuner on an identical
        query (its plan is a pure function of shape, device, and config)."""
        key = (m, n, w)
        gemm = self._gemm_cache.get(key)
        if gemm is None:
            cfg = self.config
            if cfg.fixed_delta is not None:
                tiling = TilingSpec(
                    delta=cfg.fixed_delta, width=2 * w, threads=256
                )
            elif cfg.tailoring:
                tuner = AutoTuner(self.device, threshold=cfg.tlp_threshold)
                plan = tuner.select([(m, n)]).plan
                tiling = TilingSpec(
                    delta=plan.delta, width=2 * w, threads=plan.threads
                )
            else:
                tiling = TilingSpec(delta=m, width=2 * w, threads=256)
            gemm = BatchedGemm(self.device, tiling)
            self._gemm_cache[key] = gemm
        return gemm

    def _apply_step(
        self,
        work: np.ndarray,
        V: np.ndarray,
        step: Sequence[_PairPlan],
        widths: list[int],
        depth: int,
        gemm: BatchedGemm,
        profiler: Profiler | None,
        level_rotations: dict[int, int],
    ) -> int:
        """One parallel step: run the group kernels, apply batched updates.

        Pair columns and classifications come precomputed via
        :meth:`_level_plan`. Gathering ``work[:, cols]`` with an index
        array already yields a private copy, so no further defensive copy
        is taken; recursed pairs are orthogonalized *in place* in that
        gathered copy and the update GEMM re-gathers their original
        columns from ``work`` (untouched until the final write-back).

        The three kernel groups and the individual recursed pairs are
        mutually independent, so with a thread-capable executor they run as
        parallel tasks. Each task's launches land in a private profiler and
        rotation accumulator; merging them in the serial task order (SVD
        group, EVD group, recursed pairs by step index) reproduces the
        serial recording sequence exactly.
        """
        if not step:
            return 0
        panels = [work[:, pair.cols] for pair in step]

        svd_idx = [i for i, p in enumerate(step) if p.group is Group.SVD_IN_SM]
        evd_idx = [i for i, p in enumerate(step) if p.group is Group.EVD_IN_SM]
        rec_idx = [i for i, p in enumerate(step) if p.group is Group.RECURSE]

        _GroupOut = tuple  # (rotations piece, ProfileReport, level rotations)
        tasks: list = []
        costs: list[float] = []

        if svd_idx:

            def run_svd() -> _GroupOut:
                local = Profiler()
                out: dict[int, np.ndarray] = {}
                # Raise mode always: a quarantined (NaN) panel rotation
                # would corrupt the level update silently; panel failures
                # must surface to the whole-matrix rescue ladder.
                sub_results, _ = self._svd_kernel().run(
                    [panels[i] for i in svd_idx],
                    profiler=local,
                    on_failure="raise",
                )
                for i, res in zip(svd_idx, sub_results):
                    k = panels[i].shape[1]
                    J = res.V
                    if J.shape[1] < k:
                        J = complete_square_orthogonal(J, k)
                    out[i] = J
                return out, local.report, {}

            tasks.append(run_svd)
            costs.append(
                sum(svd_stack_cost(panels[i].shape) for i in svd_idx)
            )
        if evd_idx:

            def run_evd() -> _GroupOut:
                local = Profiler()
                grams, _ = gemm.gram(
                    [panels[i] for i in evd_idx], profiler=local
                )
                evd_results, _ = self._evd_kernel().run(
                    grams, profiler=local, on_failure="raise"
                )
                out = {i: res.J for i, res in zip(evd_idx, evd_results)}
                return out, local.report, {}

            tasks.append(run_evd)
            costs.append(
                sum(evd_stack_cost(panels[i].shape[1]) for i in evd_idx)
            )
        for i in rec_idx:

            def run_rec(i: int = i) -> _GroupOut:
                local = Profiler()
                acc: dict[int, int] = {}
                panel = panels[i]
                subV = np.eye(panel.shape[1])
                self._orthogonalize(
                    panel,
                    subV,
                    widths,
                    depth + 1,
                    tol=self.config.inner_tol,
                    max_sweeps=self.config.inner_max_sweeps,
                    profiler=local,
                    level_rotations=acc,
                    fixed_sweeps=self.config.inner_sweeps,
                )
                return {i: subV}, local.report, acc

            tasks.append(run_rec)
            costs.append(wcycle_matrix_cost(*panels[i].shape))

        ex = self._executor
        if ex.supports_shared_state and len(tasks) > 1:
            outs = ex.map(lambda fn: fn(), tasks, costs=costs)
        else:
            # Process pools cannot share the in-place panel state; their
            # parallelism lands inside the kernels' bucket sharding instead.
            outs = [fn() for fn in tasks]

        rotations_by_index: dict[int, np.ndarray] = {}
        for out, report, acc in outs:
            rotations_by_index.update(out)
            if profiler is not None:
                profiler.report.extend(report)
            for d, count in acc.items():
                level_rotations[d] = level_rotations.get(d, 0) + count

        # The level's second batched GEMM: rotate the data panels and the
        # accumulated V panels with the same J (one tailored launch).
        # Recursed panels were consumed (mutated) by the recursion above,
        # so their originals are re-gathered from the still-unmodified work.
        ordered = sorted(rotations_by_index)
        # Panel write-back and the preceding profiler fold both follow the
        # serial pair order within the step; non-canonical order here would
        # silently break the bit-identical accounting contract.
        sanitize.check_merge_order("WCycleSVD._apply_step", ordered)
        rec = set(rec_idx)
        update_panels = [
            work[:, step[i].cols] if i in rec else panels[i] for i in ordered
        ] + [V[:, step[i].cols] for i in ordered]
        update_rotations = [rotations_by_index[i] for i in ordered] * 2
        updated, _ = gemm.update(update_panels, update_rotations, profiler=profiler)
        half = len(ordered)
        for pos, i in enumerate(ordered):
            work[:, step[i].cols] = updated[pos]
            V[:, step[i].cols] = updated[half + pos]
        return len(step)


# -- process-pool task shell --------------------------------------------


@functools.lru_cache(maxsize=8)
def _worker_solver(config: WCycleConfig, device: DeviceSpec) -> WCycleSVD:
    """Per-process solver cache: one serial WCycleSVD per (config, device).

    The worker's solver carries no executor of its own — matrix-level
    process parallelism already owns the fan-out, and its plan/GEMM caches
    persist across the tasks a worker serves.
    """
    return WCycleSVD(config, device=device)


def _factorize_large_task(item):
    """Worker shell: solve one through-the-levels matrix from shared memory.

    Returns ``(SVDResult, ProfileReport, level_rotations)`` — the same
    triple the thread path produces — so the parent merges process results
    with the identical order-preserving reduction.
    """
    config, device, ref, batch_hint = item
    seg, A = import_array(ref)
    try:
        solver = _worker_solver(config, device)
        # The width tuner sees the whole batch's size, exactly as it would
        # in the parent (w_1 selection must not depend on the fan-out).
        solver._batch_hint = batch_hint
        local = Profiler()
        rotations: dict[int, int] = {}
        res = solver._factorize_large(A, local, level_rotations=rotations)
    finally:
        release(seg)
    return res, local.report, rotations


def _factorize_large_arena_task(item):
    """Persistent-worker shell: one large matrix read from an arena slot.

    The slot was attached when the worker spawned, so the task pays no
    shared-memory setup at all; the input is read in place (the level
    recursion never mutates it, so ladder retries of the same lease stay
    bit-identical) and the ordinary result triple pickles back.
    """
    config, device, ref, batch_hint = item
    A = _arena_resolve(ref)
    solver = _worker_solver(config, device)
    solver._batch_hint = batch_hint
    local = Profiler()
    rotations: dict[int, int] = {}
    res = solver._factorize_large(A, local, level_rotations=rotations)
    return res, local.report, rotations
