"""Baseline files: adopt the analyzer on a codebase with open findings.

A baseline is a checked-in JSON inventory of the findings a project has
decided to live with (for now). ``repro-lint --baseline FILE`` subtracts
them from the run — CI stays green on legacy debt but fails the build
the moment a *new* finding appears. ``--update-baseline`` rewrites the
file from the current run, which is how debt gets retired: fix some
findings, regenerate, and the shrinking file documents the progress.

Fingerprints must survive unrelated edits, so they hash the finding's
*content* — rule id, file path, the stripped text of the flagged line,
and the message — never the line number. Inserting a docstring above a
suppressed finding does not resurrect it; changing the flagged line
(or the rule's message for it) does, which is the desired tripwire.
Identical findings on identical lines (a copy-pasted sin) disambiguate
by occurrence index. The file also records the ruleset signature purely
as a human hint of staleness — an old baseline still subtracts, it just
may no longer cover rules added since.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Sequence

from repro.analysis.framework import Finding, ruleset_signature

__all__ = [
    "compute_fingerprints",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

_FORMAT_VERSION = 1


def compute_fingerprints(findings: Sequence[Finding]) -> list[str]:
    """Stable content fingerprints, parallel to ``findings``.

    The n-th duplicate of an identical (rule, path, line-text, message)
    tuple gets ``#n`` appended so two equal sins need two baseline
    entries.
    """
    line_cache: dict[str, list[str]] = {}

    def _text(path: str, line: int) -> str:
        if path not in line_cache:
            try:
                with open(path, encoding="utf-8") as fh:
                    line_cache[path] = fh.read().splitlines()
            except OSError:
                line_cache[path] = []
        lines = line_cache[path]
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""

    seen: dict[str, int] = {}
    fingerprints = []
    for f in findings:
        basis = "\0".join(
            (f.rule, f.path.replace("\\", "/"), _text(f.path, f.line), f.message)
        )
        digest = hashlib.sha256(basis.encode("utf-8")).hexdigest()[:24]
        n = seen.get(digest, 0)
        seen[digest] = n + 1
        fingerprints.append(digest if n == 0 else f"{digest}#{n}")
    return fingerprints


def load_baseline(path: str) -> set[str]:
    """The fingerprint set of a baseline file (missing file -> empty)."""
    if not os.path.exists(path):
        return set()
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline (expected version "
            f"{_FORMAT_VERSION})"
        )
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Serialize ``findings`` as the new baseline at ``path``."""
    fingerprints = compute_fingerprints(findings)
    entries = [
        {
            "fingerprint": fp,
            "rule": f.rule,
            "path": f.path.replace("\\", "/"),
            "line": f.line,
            "message": f.message,
        }
        for f, fp in zip(findings, fingerprints)
    ]
    entries.sort(key=lambda e: (e["path"], e["line"], e["rule"]))
    payload = {
        "version": _FORMAT_VERSION,
        "ruleset": ruleset_signature(),
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baselined: set[str]
) -> tuple[list[Finding], int]:
    """Split findings into (new, suppressed-count) against a baseline."""
    if not baselined:
        return list(findings), 0
    fingerprints = compute_fingerprints(findings)
    fresh = [
        f for f, fp in zip(findings, fingerprints) if fp not in baselined
    ]
    return fresh, len(findings) - len(fresh)
