"""Content-hash incremental cache for ``repro-lint``.

The flow-sensitive rules do real work — CFG construction plus fixpoint
dataflow per function — and CI runs the analyzer on every push over a
tree where almost nothing changed. Lint results are a pure function of
``(file content, ruleset)``, which makes them perfectly cacheable:

- the cache key is ``sha256(source)``, so edits anywhere else in the
  tree (or mere ``mtime`` churn from a fresh checkout) never invalidate
  a file's entry;
- entries live under a directory named by
  :func:`~repro.analysis.framework.ruleset_signature`, which folds in
  ``ANALYZER_VERSION`` and the exact rule ids run — bumping a rule or
  linting with a different ``--select`` reads a different namespace, so
  stale semantics can never be served;
- a hit deserializes the findings; a miss lints and writes. Writes go
  through ``os.replace`` so a parallel CI job racing the same key just
  wins twice.

Corrupt or unreadable entries degrade to a miss — the cache can always
be deleted wholesale (it is pure derived state).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Callable, Iterable, Sequence

from repro.analysis.framework import (
    DEFAULT_EXCLUDES,
    Finding,
    all_rules,
    get_rule,
    iter_python_files,
    lint_source,
    ruleset_signature,
)

__all__ = ["LintCache", "lint_paths_cached"]


class LintCache:
    """One ruleset's cache namespace under ``cache_dir``."""

    def __init__(self, cache_dir: str, *, signature: str) -> None:
        self.root = os.path.join(cache_dir, signature)
        os.makedirs(self.root, exist_ok=True)
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> list[Finding] | None:
        try:
            with open(self._entry_path(key), encoding="utf-8") as fh:
                data = json.load(fh)
            findings = [Finding(**entry) for entry in data["findings"]]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> None:
        self.misses += 1
        payload = json.dumps(
            {"findings": [f.to_json() for f in findings]}
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(payload)
            os.replace(tmp, self._entry_path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def lint_paths_cached(
    paths: Iterable[str],
    cache_dir: str,
    *,
    select: Sequence[str] | None = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    on_file: Callable[[str], None] | None = None,
) -> tuple[list[Finding], LintCache]:
    """:func:`lint_paths` with a content-hash cache; returns (findings, cache).

    Findings are cached with the paths they were produced under, so a
    renamed (but byte-identical) file misses — path is part of the
    finding, not the key, and serving the old path would mislocate it.
    """
    rules = [get_rule(r) for r in select] if select is not None else None
    signature = ruleset_signature(
        rules if rules is not None else all_rules()
    )
    cache = LintCache(cache_dir, signature=signature)
    findings: list[Finding] = []
    for path in iter_python_files(paths, excludes=excludes):
        if on_file is not None:
            on_file(path)
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        key = cache.key_for(f"{path}\0{source}")
        cached = cache.get(key)
        if cached is None:
            cached = lint_source(source, filename=path, rules=rules)
            cache.put(key, cached)
        findings.extend(cached)
    findings.sort(key=Finding.sort_key)
    return findings, cache
