"""Project-specific static analysis: the ``repro-lint`` framework.

The parallel runtime of :mod:`repro.runtime` made correctness depend on
invariants no single unit test can see holistically: determinism of the
kernel hot paths, the shared-memory ownership protocol, fork-pickle safety
of process-pool tasks, ``einsum`` subscript/operand agreement, and
exception hygiene in the scheduler. This package holds those invariants
statically, as AST lint rules that run over the whole tree in CI.

Layout
------
:mod:`repro.analysis.framework`
    ``Finding``, ``Rule``, the rule registry, ``# repro: noqa[RULE]``
    suppression parsing, and the per-file visitor pipeline.
:mod:`repro.analysis.rules`
    The project rules (``DET01``, ``SHM01``, ``PICK01``, ``SHAPE01``,
    ``EXC01``). Importing :mod:`repro.analysis` registers all of them.
:mod:`repro.analysis.cli`
    The ``repro-lint`` command line (also ``python -m repro.analysis``):
    text and JSON output, ``--select``, default fixture excludes, exit
    codes 0 (clean) / 1 (findings) / 2 (usage or parse failure).

Examples
--------
>>> from repro.analysis import lint_source
>>> src = "import numpy as np\\n" + "x = np.einsum('ij,jk->ik', a)\\n"
>>> [f.rule for f in lint_source(src, filename="mod.py")]
['SHAPE01']
"""

from repro.analysis.framework import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
)

# Importing the rules package registers every shipped rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
