"""Project-specific static analysis: the ``repro-lint`` framework.

The parallel runtime of :mod:`repro.runtime` made correctness depend on
invariants no single unit test can see holistically: determinism of the
kernel hot paths, the shared-memory lease lifecycle on *every* control
path (exception unwinds included), lock discipline around shared
telemetry, fork safety, fork-pickle safety of process-pool tasks,
``einsum`` subscript/operand agreement, and exception hygiene in the
scheduler. This package holds those invariants statically — lexical AST
rules where a line tells the whole story, and CFG-based forward
dataflow where the property is a path property — over the whole tree in
CI.

Layout
------
:mod:`repro.analysis.framework`
    ``Finding``, ``Rule``, the rule registry and alias table,
    ``# repro: noqa[RULE]`` suppression parsing (logical-line scoped),
    and the per-file pipeline.
:mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`
    The flow-sensitive engine: basic-block CFGs with normal and
    exception edges, and worklist-fixpoint forward dataflow over them.
:mod:`repro.analysis.symbols`
    A lightweight cross-module symbol table resolving the
    ``repro.runtime`` API through import aliases and method receivers.
:mod:`repro.analysis.rules`
    The project rules (``DET01``, ``EXC01``, ``FORK01``, ``LOCK01``,
    ``PICK01``, ``RET01``, ``SHAPE01``, ``SHM03``; retired ``SHM01``/
    ``SHM02`` alias to ``SHM03``). Importing :mod:`repro.analysis`
    registers all of them.
:mod:`repro.analysis.sarif` / :mod:`repro.analysis.baseline` /
:mod:`repro.analysis.cache`
    CI surfaces: SARIF 2.1.0 emission, baseline subtraction for
    adopting rules over existing debt, and the content-hash
    incremental cache.
:mod:`repro.analysis.cli`
    The ``repro-lint`` command line (also ``python -m repro.analysis``):
    text/JSON/SARIF output, ``--select``, ``--baseline`` /
    ``--update-baseline``, ``--cache-dir``, default fixture excludes,
    exit codes 0 (clean) / 1 (findings) / 2 (usage or parse failure).

Examples
--------
>>> from repro.analysis import lint_source
>>> src = "import numpy as np\\n" + "x = np.einsum('ij,jk->ik', a)\\n"
>>> [f.rule for f in lint_source(src, filename="mod.py")]
['SHAPE01']
"""

from repro.analysis.framework import (
    Finding,
    Rule,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
)

# Importing the rules package registers every shipped rule.
from repro.analysis import rules as _rules  # noqa: F401

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]
