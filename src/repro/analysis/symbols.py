"""Lightweight cross-module symbol table for the flow-sensitive rules.

Rules need to answer "what *kind* of object is this expression" without
a type checker: is ``self._spawn_lock`` a lock, is ``ctx`` a fork
multiprocessing context, is ``pool`` a thread pool? This module keeps a
curated table of the canonical dotted names the project's concurrency
surface actually uses — the :mod:`repro.runtime` API plus the stdlib
constructors it is built from — and layers two resolution passes on
top:

1. **Import aliases** ride on :meth:`FileContext.resolve`, so
   ``from threading import Lock as L; L()`` and
   ``from repro.runtime import arena as ar; ar.Arena()`` both resolve
   to their canonical names before the kind lookup.
2. **Method receivers**: a per-class scan records ``self.<attr>``
   assignments whose right-hand side is a recognized constructor
   (``self._lock = threading.Lock()`` in ``__init__`` makes
   ``self._lock`` lock-kinded in *every* method of the class), which is
   what lets LOCK01 treat ``with self._lock:`` bodies as critical
   sections and FORK01 see a held executor lock at a spawn site.

The table is deliberately small and explicit — a full cross-module type
inference would dwarf the rules it serves. When the runtime grows a new
lock-holding or fork-adjacent API, add its canonical name here; the
``lint-self`` CI check keeps the analyzer honest against its own rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.framework import FileContext

__all__ = [
    "KIND_LOCK",
    "KIND_THREAD",
    "KIND_POOL",
    "KIND_FORK_CONTEXT",
    "KIND_FORK_PROCESS",
    "KIND_ARENA",
    "KIND_EXECUTOR",
    "SymbolTable",
]

KIND_LOCK = "lock"
KIND_THREAD = "thread"
KIND_POOL = "thread_pool"
KIND_FORK_CONTEXT = "fork_context"
KIND_FORK_PROCESS = "fork_process"
KIND_ARENA = "arena"
KIND_EXECUTOR = "executor"

#: Canonical constructor/factory name -> kind of the value it produces.
API_KINDS: dict[str, str] = {
    # stdlib locks (threading + multiprocessing share the discipline)
    "threading.Lock": KIND_LOCK,
    "threading.RLock": KIND_LOCK,
    "threading.Condition": KIND_LOCK,
    "threading.Semaphore": KIND_LOCK,
    "threading.BoundedSemaphore": KIND_LOCK,
    "multiprocessing.Lock": KIND_LOCK,
    "multiprocessing.RLock": KIND_LOCK,
    # threads and pools
    "threading.Thread": KIND_THREAD,
    "concurrent.futures.ThreadPoolExecutor": KIND_POOL,
    "concurrent.futures.thread.ThreadPoolExecutor": KIND_POOL,
    # repro.runtime surface (through any import alias)
    "repro.runtime.ThreadExecutor": KIND_EXECUTOR,
    "repro.runtime.executor.ThreadExecutor": KIND_EXECUTOR,
    "repro.runtime.ProcessExecutor": KIND_EXECUTOR,
    "repro.runtime.executor.ProcessExecutor": KIND_EXECUTOR,
    "repro.runtime.persistent.PersistentExecutor": KIND_EXECUTOR,
    "repro.runtime.get_executor": KIND_EXECUTOR,
    "repro.runtime.executor.get_executor": KIND_EXECUTOR,
    "repro.runtime.resilient.ResilientExecutor": KIND_EXECUTOR,
    "repro.runtime.Arena": KIND_ARENA,
    "repro.runtime.arena.Arena": KIND_ARENA,
    "repro.runtime.arena.attach": KIND_ARENA,
}

#: Dotted names whose *call* is itself a fork of the current process.
FORK_CALLS = frozenset({"os.fork", "os.forkpty"})


def _is_fork_context_call(ctx: FileContext, call: ast.Call) -> bool:
    """``multiprocessing.get_context("fork")`` (or an alias of it)."""
    target = ctx.resolve(call.func)
    if target not in (
        "multiprocessing.get_context",
        "multiprocessing.context.get_context",
    ):
        return False
    if not call.args:
        return False  # platform default; don't guess
    arg = call.args[0]
    return isinstance(arg, ast.Constant) and arg.value == "fork"


@dataclass
class SymbolTable:
    """Kinds for module globals and ``self.<attr>`` receivers of one file."""

    ctx: FileContext
    #: module-level name -> kind
    module_vars: dict = field(default_factory=dict)
    #: class name -> {attr name -> kind}
    class_attrs: dict = field(default_factory=dict)

    @classmethod
    def build(cls, ctx: FileContext) -> "SymbolTable":
        table = cls(ctx=ctx)
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                kind = table.call_kind(stmt.value)
                if kind is not None:
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            table.module_vars[tgt.id] = kind
            elif isinstance(stmt, ast.ClassDef):
                table.class_attrs[stmt.name] = table._scan_class(stmt)
        return table

    def _scan_class(self, cls_node: ast.ClassDef) -> dict:
        attrs: dict[str, str] = {}
        for node in ast.walk(cls_node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            kind = self.call_kind(node.value)
            if kind is None:
                continue
            for tgt in node.targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    attrs[tgt.attr] = kind
        return attrs

    # -- queries ---------------------------------------------------------

    def call_kind(self, call: ast.Call) -> str | None:
        """Kind of the value a constructor/factory call produces."""
        target = self.ctx.resolve(call.func)
        if target is not None and target in API_KINDS:
            return API_KINDS[target]
        if _is_fork_context_call(self.ctx, call):
            return KIND_FORK_CONTEXT
        return None

    def expr_kind(self, expr: ast.expr, *, class_name: str | None = None) -> str | None:
        """Kind of a ``Name`` / ``self.<attr>`` expression, if known.

        Locals are the rules' own (flow-sensitive) business; this
        resolves the two shared namespaces — module globals and the
        receiver attributes of the enclosing class.
        """
        if isinstance(expr, ast.Name):
            return self.module_vars.get(expr.id)
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            if class_name is not None:
                return self.class_attrs.get(class_name, {}).get(expr.attr)
            for attrs in self.class_attrs.values():
                if expr.attr in attrs:
                    return attrs[expr.attr]
        return None

    def lock_name(self, expr: ast.expr, *, class_name: str | None = None) -> str | None:
        """Canonical token for a lock-valued expression, else ``None``.

        ``self._lock`` -> ``"self._lock"``; a module-global lock ``L``
        -> ``"L"``. Used as the dataflow token for held-lock sets, so
        the same lock names the same token in every method.
        """
        if self.expr_kind(expr, class_name=class_name) != KIND_LOCK:
            return None
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Attribute):
            return f"self.{expr.attr}"
        return None


def methods_of(cls_node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """The directly-defined methods of a class (no nested classes)."""
    for stmt in cls_node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt
