"""Control-flow graphs over function bodies.

The lexical rules of PR 3 walked statement suites top to bottom and could
not answer the questions the concurrent runtime now poses: *does this
lease reach a release on every path, including the one where the solver
raises mid-batch?* — *is any thread live when this worker forks?*  Those
are path properties, and this module gives rules the graph to ask them
on: :func:`build_cfg` lowers one function body into basic blocks
connected by normal and exception edges, covering branches, loops,
``try``/``except``/``else``/``finally``, ``with``, early returns,
``break``/``continue``, and ``raise``.

Granularity and conventions
---------------------------
- A :class:`Block` holds a straight-line list of *instructions*: plain
  statements plus a few structural markers. Compound statements are
  decomposed — an ``if``/``while``/``for`` node appears once as the
  branch instruction of its head block (rules read ``.test`` /
  ``.target`` / ``.iter`` off it), an ``except`` handler's binding is
  the :class:`ast.ExceptHandler` node itself, and ``with`` bodies are
  bracketed by synthetic :class:`WithEnter` / :class:`WithExit`
  instructions so an analysis can model ``__enter__``/``__exit__``
  effects (lock acquire/release) on *both* the normal and the
  exceptional path.
- Every block carries at most one exception successor (:attr:`Block.exc`)
  — the target an exception raised by any of its instructions unwinds
  to. Blocks are split whenever the enclosing handler context changes,
  so the mapping is exact at block granularity.
- ``finally`` suites are inlined once per distinct exit kind (normal
  fall-through, exceptional unwind, and each early ``return`` /
  ``break`` / ``continue`` that crosses them). Duplication keeps every
  path explicit, which is what makes "released on *all* paths" a plain
  reachability question.
- Two synthetic sinks terminate every function: :attr:`CFG.exit`
  (normal return or fall-off) and :attr:`CFG.raise_exit` (an exception
  escapes the function). A dataflow fact that reaches ``raise_exit``
  but not ``exit`` describes a bug on the exception edge only — the
  class of leak PR 7's review caught by hand.

The graph is deliberately conservative: any instruction may raise
(analyses refine this through their ``can_raise`` hook), ``while``
loops keep their exit edge unless the test is a literal ``True``, and
unreachable statements after a ``return``/``raise`` are still lowered
(into unlinked blocks) so downstream passes never crash on dead code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence, Union

__all__ = [
    "Block",
    "CFG",
    "WithEnter",
    "WithExit",
    "Instr",
    "build_cfg",
    "function_cfgs",
    "instr_exprs",
]


class WithEnter:
    """Synthetic instruction: one ``with`` item's ``__enter__``.

    Carries the :class:`ast.With` statement and the specific
    :class:`ast.withitem`; ``lineno``/``col_offset`` proxy to the item's
    context expression so findings anchor on the managed expression.
    """

    __slots__ = ("node", "item")

    def __init__(self, node: ast.With | ast.AsyncWith, item: ast.withitem):
        self.node = node
        self.item = item

    @property
    def lineno(self) -> int:
        return self.item.context_expr.lineno

    @property
    def col_offset(self) -> int:
        return self.item.context_expr.col_offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WithEnter@{self.lineno}"


class WithExit:
    """Synthetic instruction: one ``with`` item's ``__exit__``.

    Emitted on the normal path, on the exceptional unwind, and on every
    early ``return``/``break``/``continue`` that leaves the block — the
    context manager releases on all of them, and so must any analysis
    modelling it.
    """

    __slots__ = ("node", "item")

    def __init__(self, node: ast.With | ast.AsyncWith, item: ast.withitem):
        self.node = node
        self.item = item

    @property
    def lineno(self) -> int:
        return self.item.context_expr.lineno

    @property
    def col_offset(self) -> int:
        return self.item.context_expr.col_offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WithExit@{self.lineno}"


#: What a block's ``instrs`` list holds.
Instr = Union[ast.AST, WithEnter, WithExit]


@dataclass
class Block:
    """One basic block: straight-line instructions plus its out-edges."""

    id: int
    label: str = ""
    instrs: list = field(default_factory=list)
    #: Normal successors (branch targets, fall-through, loop edges).
    succ: "list[Block]" = field(default_factory=list)
    #: Where an exception raised by any instruction here unwinds to.
    exc: "Block | None" = None

    def add_succ(self, other: "Block") -> None:
        if other not in self.succ:
            self.succ.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        succ = ",".join(str(b.id) for b in self.succ)
        exc = "" if self.exc is None else f" exc->{self.exc.id}"
        tag = f" {self.label}" if self.label else ""
        return f"<B{self.id}{tag} [{len(self.instrs)} instr] ->{succ}{exc}>"

    def __hash__(self) -> int:
        return self.id


@dataclass
class CFG:
    """The control-flow graph of one function body."""

    fn: ast.FunctionDef | ast.AsyncFunctionDef
    blocks: list  # list[Block]
    entry: Block
    exit: Block
    raise_exit: Block

    def render(self) -> str:
        """Human-readable dump, for tests and debugging."""
        lines = [f"cfg {self.fn.name}: entry=B{self.entry.id} "
                 f"exit=B{self.exit.id} raise=B{self.raise_exit.id}"]
        for b in self.blocks:
            names = []
            for ins in b.instrs:
                if isinstance(ins, (WithEnter, WithExit)):
                    names.append(type(ins).__name__)
                else:
                    names.append(type(ins).__name__ + f"@{getattr(ins, 'lineno', '?')}")
            succ = ",".join(f"B{s.id}" for s in b.succ) or "-"
            exc = f" exc=B{b.exc.id}" if b.exc is not None else ""
            tag = f" {b.label}" if b.label else ""
            lines.append(f"  B{b.id}{tag}: [{' '.join(names)}] -> {succ}{exc}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Unwind:
    """One pending cleanup crossed by an early exit.

    Either a ``finally`` suite (``suite`` set) or a ``with`` item's
    ``__exit__`` (``withitem`` set). ``ctx`` is the builder context the
    cleanup itself executes under (its exceptions go *outward*).
    """

    suite: tuple | None
    withitem: "tuple | None"
    ctx: "_Ctx"


@dataclass(frozen=True)
class _Loop:
    head: Block
    exit: Block
    #: ``len(ctx.unwinds)`` at loop entry: a ``break`` runs only the
    #: cleanups accumulated *inside* the loop.
    depth: int


@dataclass(frozen=True)
class _Ctx:
    """Builder state: exception target, pending cleanups, loop targets."""

    exc: Block
    unwinds: tuple = ()  # innermost first
    loop: "_Loop | None" = None


class _Builder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.fn = fn
        self.blocks: list[Block] = []
        self.exit = self._block("exit")
        self.raise_exit = self._block("raise-exit")

    def _block(self, label: str = "", exc: Block | None = None) -> Block:
        b = Block(id=len(self.blocks), label=label, exc=exc)
        self.blocks.append(b)
        return b

    def build(self) -> CFG:
        ctx = _Ctx(exc=self.raise_exit)
        entry = self._block("entry", exc=ctx.exc)
        end = self._suite(self.fn.body, entry, ctx)
        if end is not None:
            end.add_succ(self.exit)
        return CFG(
            fn=self.fn,
            blocks=self.blocks,
            entry=entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    # -- plumbing --------------------------------------------------------

    def _sync(self, cur: Block, ctx: _Ctx) -> Block:
        """Blocks are homogeneous in exception target; split on change."""
        if cur.exc is not ctx.exc:
            nb = self._block(exc=ctx.exc)
            cur.add_succ(nb)
            return nb
        return cur

    def _suite(
        self, stmts: Sequence[ast.stmt], cur: Block | None, ctx: _Ctx
    ) -> Block | None:
        for stmt in stmts:
            if cur is None:
                # Dead code after return/raise/break: lower it into an
                # unlinked block so analyses see well-formed structure.
                cur = self._block("unreachable", exc=ctx.exc)
            cur = self._stmt(stmt, cur, ctx)
        return cur

    def _unwind(
        self, cur: Block, unwinds: Sequence[_Unwind], dest: Block
    ) -> None:
        """Route an early exit through pending cleanups into ``dest``."""
        for uw in unwinds:
            if uw.withitem is not None:
                nb = self._block("with-exit", exc=uw.ctx.exc)
                cur.add_succ(nb)
                nb.instrs.append(WithExit(*uw.withitem))
                cur = nb
            else:
                nb = self._block("finally-copy", exc=uw.ctx.exc)
                cur.add_succ(nb)
                end = self._suite(list(uw.suite or ()), nb, uw.ctx)
                if end is None:
                    return  # the finally itself diverted control
                cur = end
        cur.add_succ(dest)

    # -- statement lowering ----------------------------------------------

    def _stmt(self, stmt: ast.stmt, cur: Block, ctx: _Ctx) -> Block | None:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur, ctx)
        if isinstance(stmt, ast.Return):
            cur = self._sync(cur, ctx)
            cur.instrs.append(stmt)
            self._unwind(cur, ctx.unwinds, self.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cur = self._sync(cur, ctx)
            cur.instrs.append(stmt)
            return None  # flows only along the exception edge
        if isinstance(stmt, ast.Break):
            if ctx.loop is not None:
                inner = ctx.unwinds[: len(ctx.unwinds) - ctx.loop.depth]
                self._unwind(cur, inner, ctx.loop.exit)
            return None
        if isinstance(stmt, ast.Continue):
            if ctx.loop is not None:
                inner = ctx.unwinds[: len(ctx.unwinds) - ctx.loop.depth]
                self._unwind(cur, inner, ctx.loop.head)
            return None
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur, ctx)
        # Plain statement (incl. nested def/class, which analyses treat
        # as opaque name bindings — their bodies get their own CFGs).
        cur = self._sync(cur, ctx)
        cur.instrs.append(stmt)
        return cur

    def _if(self, stmt: ast.If, cur: Block, ctx: _Ctx) -> Block | None:
        cur = self._sync(cur, ctx)
        cur.instrs.append(stmt)
        then_entry = self._block("then", exc=ctx.exc)
        cur.add_succ(then_entry)
        then_end = self._suite(stmt.body, then_entry, ctx)
        outs = [then_end] if then_end is not None else []
        if stmt.orelse:
            else_entry = self._block("else", exc=ctx.exc)
            cur.add_succ(else_entry)
            else_end = self._suite(stmt.orelse, else_entry, ctx)
            if else_end is not None:
                outs.append(else_end)
        else:
            outs.append(cur)
        if not outs:
            return None
        after = self._block("endif", exc=ctx.exc)
        for b in outs:
            b.add_succ(after)
        return after

    @staticmethod
    def _is_literal_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value) is True

    def _while(self, stmt: ast.While, cur: Block, ctx: _Ctx) -> Block | None:
        cur = self._sync(cur, ctx)
        head = self._block("while-head", exc=ctx.exc)
        cur.add_succ(head)
        head.instrs.append(stmt)
        after = self._block("while-exit", exc=ctx.exc)
        loop_ctx = replace(
            ctx, loop=_Loop(head=head, exit=after, depth=len(ctx.unwinds))
        )
        body_entry = self._block("while-body", exc=ctx.exc)
        head.add_succ(body_entry)
        body_end = self._suite(stmt.body, body_entry, loop_ctx)
        if body_end is not None:
            body_end.add_succ(head)
        if self._is_literal_true(stmt.test):
            # ``while True`` exits only through break (which targets
            # ``after`` directly); no fall-through edge keeps the
            # analysis precise on infinite dispatch loops.
            return after
        if stmt.orelse:
            orelse_entry = self._block("while-else", exc=ctx.exc)
            head.add_succ(orelse_entry)
            orelse_end = self._suite(stmt.orelse, orelse_entry, ctx)
            if orelse_end is not None:
                orelse_end.add_succ(after)
        else:
            head.add_succ(after)
        return after

    def _for(
        self, stmt: ast.For | ast.AsyncFor, cur: Block, ctx: _Ctx
    ) -> Block | None:
        cur = self._sync(cur, ctx)
        head = self._block("for-head", exc=ctx.exc)
        cur.add_succ(head)
        head.instrs.append(stmt)
        after = self._block("for-exit", exc=ctx.exc)
        loop_ctx = replace(
            ctx, loop=_Loop(head=head, exit=after, depth=len(ctx.unwinds))
        )
        body_entry = self._block("for-body", exc=ctx.exc)
        head.add_succ(body_entry)
        body_end = self._suite(stmt.body, body_entry, loop_ctx)
        if body_end is not None:
            body_end.add_succ(head)
        if stmt.orelse:
            orelse_entry = self._block("for-else", exc=ctx.exc)
            head.add_succ(orelse_entry)
            orelse_end = self._suite(stmt.orelse, orelse_entry, ctx)
            if orelse_end is not None:
                orelse_end.add_succ(after)
        else:
            head.add_succ(after)
        return after

    def _try(self, stmt: ast.Try, cur: Block, ctx: _Ctx) -> Block | None:
        outer = ctx
        # Exceptional finally copy: runs on unwind, then re-raises.
        if stmt.finalbody:
            f_exc_entry = self._block("finally-exc", exc=outer.exc)
            f_exc_end = self._suite(stmt.finalbody, f_exc_entry, outer)
            if f_exc_end is not None:
                f_exc_end.add_succ(outer.exc)
            unmatched: Block = f_exc_entry
        else:
            unmatched = outer.exc

        handler_entries: list[Block] = []
        if stmt.handlers:
            dispatch = self._block("except-dispatch", exc=unmatched)
            # An exception no handler matches unwinds onward (through
            # the finally when present) — unless some handler is a
            # catch-all, in which case the unmatched path is dead.
            # ``except Exception`` counts: the escapees (KeyboardInterrupt,
            # SystemExit) are teardown paths no resource rule should
            # build findings on.
            if not any(_is_catch_all(h) for h in stmt.handlers):
                dispatch.add_succ(unmatched)
            body_exc: Block = dispatch
            for handler in stmt.handlers:
                hb = self._block("except", exc=unmatched)
                hb.instrs.append(handler)  # binds ``as name``
                dispatch.add_succ(hb)
                handler_entries.append(hb)
        else:
            body_exc = unmatched

        unwinds = ctx.unwinds
        if stmt.finalbody:
            unwinds = (_Unwind(tuple(stmt.finalbody), None, outer),) + unwinds

        body_ctx = _Ctx(exc=body_exc, unwinds=unwinds, loop=ctx.loop)
        body_entry = self._block("try-body", exc=body_exc)
        cur = self._sync(cur, ctx)
        cur.add_succ(body_entry)
        body_end = self._suite(stmt.body, body_entry, body_ctx)

        # ``else`` runs after a clean body; its exceptions are NOT
        # caught by this try's handlers.
        if stmt.orelse and body_end is not None:
            orelse_ctx = _Ctx(exc=unmatched, unwinds=unwinds, loop=ctx.loop)
            orelse_entry = self._block("try-else", exc=unmatched)
            body_end.add_succ(orelse_entry)
            body_end = self._suite(stmt.orelse, orelse_entry, orelse_ctx)

        handler_ctx = _Ctx(exc=unmatched, unwinds=unwinds, loop=ctx.loop)
        outs = [body_end] if body_end is not None else []
        for handler, hb in zip(stmt.handlers, handler_entries):
            h_end = self._suite(handler.body, hb, handler_ctx)
            if h_end is not None:
                outs.append(h_end)

        if not outs:
            return None
        if stmt.finalbody:
            f_norm_entry = self._block("finally", exc=outer.exc)
            for b in outs:
                b.add_succ(f_norm_entry)
            return self._suite(stmt.finalbody, f_norm_entry, outer)
        after = self._block("endtry", exc=ctx.exc)
        for b in outs:
            b.add_succ(after)
        return after

    def _with(
        self, stmt: ast.With | ast.AsyncWith, cur: Block, ctx: _Ctx
    ) -> Block | None:
        inner_ctx = ctx
        cur = self._sync(cur, ctx)
        for item in stmt.items:
            cur = self._sync(cur, inner_ctx)
            cur.instrs.append(WithEnter(stmt, item))
            cleanup = self._block("with-cleanup", exc=inner_ctx.exc)
            cleanup.instrs.append(WithExit(stmt, item))
            cleanup.add_succ(inner_ctx.exc)
            inner_ctx = _Ctx(
                exc=cleanup,
                unwinds=(_Unwind(None, (stmt, item), inner_ctx),)
                + inner_ctx.unwinds,
                loop=inner_ctx.loop,
            )
        body_entry = self._block("with-body", exc=inner_ctx.exc)
        cur.add_succ(body_entry)
        body_end = self._suite(stmt.body, body_entry, inner_ctx)
        if body_end is None:
            return None
        # Normal completion: run the __exit__s innermost-first.
        for item in reversed(stmt.items):
            nb = self._block("with-exit", exc=ctx.exc)
            body_end.add_succ(nb)
            nb.instrs.append(WithExit(stmt, item))
            body_end = nb
        return body_end

    def _match(self, stmt: ast.Match, cur: Block, ctx: _Ctx) -> Block | None:
        cur = self._sync(cur, ctx)
        cur.instrs.append(stmt)  # evaluates the subject
        after = self._block("match-exit", exc=ctx.exc)
        for case in stmt.cases:
            entry = self._block("case", exc=ctx.exc)
            cur.add_succ(entry)
            end = self._suite(case.body, entry, ctx)
            if end is not None:
                end.add_succ(after)
        cur.add_succ(after)  # no case matched
        return after


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:``, ``except BaseException:``, ``except Exception:``."""
    if handler.type is None:
        return True
    names = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for name in names:
        if isinstance(name, ast.Name) and name.id in (
            "BaseException",
            "Exception",
        ):
            return True
    return False


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body into a :class:`CFG`."""
    return _Builder(fn).build()


def instr_exprs(instr: Instr) -> Iterator[ast.AST]:
    """The expression subtrees evaluated *at* this instruction.

    Compound statements (``for``/``while``/``if``/``try``/``with``)
    appear in a block only as their header — their suites live in other
    blocks — so walking the raw statement node would attribute body
    expressions to the header's dataflow state. This yields only what
    the header itself evaluates: the loop iterable, the branch test,
    the ``with`` item expressions (via the synthetic markers). Nested
    ``def``/``class`` bodies are opaque here; they get their own CFGs.
    """
    if isinstance(instr, (WithEnter, WithExit)):
        yield instr.item.context_expr
        return
    if not isinstance(instr, ast.AST):
        return
    if isinstance(instr, (ast.For, ast.AsyncFor)):
        yield instr.iter
        return
    if isinstance(instr, (ast.While, ast.If)):
        yield instr.test
        return
    if isinstance(instr, ast.Match):
        yield instr.subject
        return
    if isinstance(
        instr,
        (
            ast.Try,
            ast.With,
            ast.AsyncWith,
            ast.FunctionDef,
            ast.AsyncFunctionDef,
            ast.ClassDef,
        ),
    ):
        return
    yield instr


def function_cfgs(tree: ast.AST) -> Iterator[CFG]:
    """CFGs for every function in ``tree``, nested ones included.

    Each function's graph treats nested ``def``s as opaque bindings;
    the nested bodies show up as their own CFGs later in the walk.
    """
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield build_cfg(node)
