"""SARIF 2.1.0 serialization for ``repro-lint`` findings.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest for inline PR annotations: upload one ``.sarif`` file from CI
and every finding lands as a review comment on the exact line. The
emitter here targets the minimum viable, spec-valid subset — one run,
one tool driver listing the registered rules (aliases resolved away),
one result per finding with a physical location — because consumers
ignore everything else anyway.

``PARSE`` pseudo-findings map to ``error`` level (the file could not be
analyzed at all); real rule findings are ``warning`` so a merge queue
can distinguish "the analyzer broke" from "the analyzer objects".
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.framework import (
    ANALYZER_VERSION,
    Finding,
    Rule,
    all_rules,
)

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/SARIF-schema-2.1.0.json"
)


def to_sarif(
    findings: Sequence[Finding], *, rules: Sequence[Rule] | None = None
) -> dict:
    """Build the SARIF log object (a plain JSON-ready dict)."""
    rule_list = list(rules) if rules is not None else all_rules()
    rule_index = {rule.id: i for i, rule in enumerate(rule_list)}
    descriptors = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
        }
        for rule in rule_list
    ]

    results = []
    for f in findings:
        result = {
            "ruleId": f.rule,
            "level": "error" if f.rule == "PARSE" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": f.line,
                            # SARIF columns are 1-based; Finding.col is
                            # the 0-based AST offset.
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.rule in rule_index:
            result["ruleIndex"] = rule_index[f.rule]
        results.append(result)

    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": ANALYZER_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], *, rules: Sequence[Rule] | None = None
) -> str:
    return json.dumps(to_sarif(findings, rules=rules), indent=2)
