"""Lint framework: findings, the rule registry, noqa, and the pipeline.

A :class:`Rule` sees one file at a time through a :class:`FileContext`
(path, source, parsed AST, import alias map, suppression table) and yields
:class:`Finding` records. The pipeline parses each file once, runs every
selected rule over the shared context, and filters findings through the
``# repro: noqa[RULE]`` suppression table afterwards — suppression is a
property of the *line*, so a rule never needs to know about it.

Suppression syntax::

    seg = acquire()          # repro: noqa[SHM01] handed to the pool below
    value = time.time()      # repro: noqa[DET01,EXC01]
    anything_goes()          # repro: noqa

A bare ``noqa`` (no rule list) suppresses every rule on that line; the
bracketed form suppresses only the named rules. Trailing prose after the
bracket is encouraged — it documents *why* the finding is a false
positive.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "DEFAULT_EXCLUDES",
]

#: Directory names skipped during directory walks. ``fixtures`` holds the
#: analyzer's own seeded-violation corpus: those files *must* trip rules,
#: so the walk never descends into them (explicit file arguments still
#: lint them, which is how the tests drive the corpus).
DEFAULT_EXCLUDES = ("fixtures", "__pycache__", ".git", "build", "dist")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9, ]+)\])?", re.ASCII
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class FileContext:
    """Everything a rule may consult about one file.

    ``imports`` maps local alias -> canonical dotted name for every
    ``import``/``from-import`` binding in the module (``np`` ->
    ``numpy``, ``perf_counter`` -> ``time.perf_counter``), so rules can
    resolve call targets without guessing at naming conventions.
    """

    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)

    @property
    def path_parts(self) -> tuple[str, ...]:
        norm = self.path.replace(os.sep, "/")
        return tuple(p for p in norm.split("/") if p not in ("", "."))

    def in_directory(self, *names: str) -> bool:
        """True when any path component matches one of ``names``."""
        return bool(set(names) & set(self.path_parts))

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        returns ``None`` for expressions that are not plain dotted
        chains (calls, subscripts, ...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for a lint rule. Subclasses set ``id``/``title`` and
    implement :meth:`check`; :func:`register` adds them to the registry."""

    id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in id order."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None


# ---------------------------------------------------------------------------
# file pipeline
# ---------------------------------------------------------------------------


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _collect_suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules)."""
    table: dict[int, set[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            rules = m.group("rules")
            if rules is None:
                table[tok.start[0]] = None
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                prev = table.get(tok.start[0])
                if prev is None and tok.start[0] in table:
                    continue  # already suppress-all
                table[tok.start[0]] = (prev or set()) | ids
    except tokenize.TokenError:  # pragma: no cover - parse already failed
        pass
    return table


def _suppressed(finding: Finding, table: dict[int, set[str] | None]) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    return rules is None or finding.rule in rules


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string; parse failures surface as a ``PARSE`` finding."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=filename,
        source=source,
        tree=tree,
        imports=_collect_imports(tree),
        suppressions=_collect_suppressions(source),
    )
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(ctx))
    findings = [f for f in findings if not _suppressed(f, ctx.suppressions)]
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str, *, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, filename=path, rules=rules)


def iter_python_files(
    paths: Iterable[str],
    *,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Directory walks skip ``excludes`` components; explicitly named files
    are always yielded (that is how the fixture corpus gets linted on
    purpose).
    """
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in excludes
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def lint_paths(
    paths: Iterable[str],
    *,
    select: Sequence[str] | None = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    on_file: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Lint files and directory trees; the main library entry point."""
    rules = [get_rule(r) for r in select] if select is not None else None
    findings: list[Finding] = []
    for path in iter_python_files(paths, excludes=excludes):
        if on_file is not None:
            on_file(path)
        findings.extend(lint_file(path, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings
