"""Lint framework: findings, the rule registry, noqa, and the pipeline.

A :class:`Rule` sees one file at a time through a :class:`FileContext`
(path, source, parsed AST, import alias map, suppression table) and yields
:class:`Finding` records. The pipeline parses each file once, runs every
selected rule over the shared context, and filters findings through the
``# repro: noqa[RULE]`` suppression table afterwards — suppression is a
property of the *line*, so a rule never needs to know about it.

Suppression syntax::

    seg = acquire()          # repro: noqa[SHM01] handed to the pool below
    value = time.time()      # repro: noqa[DET01,EXC01]
    anything_goes()          # repro: noqa

A bare ``noqa`` (no rule list) suppresses every rule on that line; the
bracketed form suppresses only the named rules. Trailing prose after the
bracket is encouraged — it documents *why* the finding is a false
positive.

Suppression is scoped to the *logical* line: a ``noqa`` anywhere inside
a multi-line statement (a bracketed call spanning five physical lines,
say) covers every physical line of that statement, so it reaches
findings anchored on the statement's first line no matter which
physical line carries the comment. A comment standing on its own line
covers only that line. Rule ids in the bracket resolve through the
alias table — ``noqa[SHM01]`` keeps suppressing the findings of the
flow-sensitive ``SHM03`` engine that superseded the old lexical rule.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "alias",
    "all_rules",
    "get_rule",
    "rule_aliases",
    "ruleset_signature",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "ANALYZER_VERSION",
    "DEFAULT_EXCLUDES",
]

#: Bumped whenever rule semantics change in a way that must invalidate
#: incremental-cache entries produced by earlier analyzer builds. The
#: cache key is this constant plus the selected rule ids (see
#: :func:`ruleset_signature`), so a stale bump costs one cold run.
ANALYZER_VERSION = "8.0"

#: Directory names skipped during directory walks. ``fixtures`` holds the
#: analyzer's own seeded-violation corpus: those files *must* trip rules,
#: so the walk never descends into them (explicit file arguments still
#: lint them, which is how the tests drive the corpus).
DEFAULT_EXCLUDES = ("fixtures", "__pycache__", ".git", "build", "dist")

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9, ]+)\])?", re.ASCII
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class FileContext:
    """Everything a rule may consult about one file.

    ``imports`` maps local alias -> canonical dotted name for every
    ``import``/``from-import`` binding in the module (``np`` ->
    ``numpy``, ``perf_counter`` -> ``time.perf_counter``), so rules can
    resolve call targets without guessing at naming conventions.
    """

    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)

    @property
    def path_parts(self) -> tuple[str, ...]:
        norm = self.path.replace(os.sep, "/")
        return tuple(p for p in norm.split("/") if p not in ("", "."))

    def in_directory(self, *names: str) -> bool:
        """True when any path component matches one of ``names``."""
        return bool(set(names) & set(self.path_parts))

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` under ``import numpy as np``;
        returns ``None`` for expressions that are not plain dotted
        chains (calls, subscripts, ...).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for a lint rule. Subclasses set ``id``/``title`` and
    implement :meth:`check`; :func:`register` adds them to the registry."""

    id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}

#: Retired rule id -> the rule that superseded it. Aliases stay valid
#: everywhere an id appears — ``--select``, ``noqa[...]`` brackets,
#: :func:`get_rule` — so annotations written against the old lexical
#: rules keep working against their flow-sensitive replacements.
_ALIASES: dict[str, str] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate the rule and add it to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY or cls.id in _ALIASES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def alias(old_id: str, canonical_id: str) -> None:
    """Keep a retired rule id selectable/suppressible as ``canonical_id``."""
    if canonical_id not in _REGISTRY:
        raise ValueError(f"alias target {canonical_id!r} is not registered")
    if old_id in _REGISTRY or old_id in _ALIASES:
        raise ValueError(f"duplicate rule id {old_id}")
    _ALIASES[old_id] = canonical_id


def all_rules() -> list[Rule]:
    """Registered rules in id order (aliases are not separate entries)."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def rule_aliases() -> dict[str, str]:
    """Retired id -> canonical id, for listings and docs."""
    return dict(_ALIASES)


def get_rule(rule_id: str) -> Rule:
    canonical = _ALIASES.get(rule_id, rule_id)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        aliased = ", ".join(sorted(_ALIASES))
        if aliased:
            known = f"{known} (aliases: {aliased})"
        raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}") from None


def ruleset_signature(rules: Sequence[Rule] | None = None) -> str:
    """Content key for the incremental cache: analyzer version + rules.

    Two runs share cache entries only when this signature matches —
    same :data:`ANALYZER_VERSION`, same selected rule ids. File content
    is hashed separately per entry.
    """
    import hashlib

    ids = sorted(r.id for r in (rules if rules is not None else all_rules()))
    payload = ANALYZER_VERSION + "::" + ",".join(ids)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


# ---------------------------------------------------------------------------
# file pipeline
# ---------------------------------------------------------------------------


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _apply_suppression(
    table: dict[int, set[str] | None], line: int, rules: set[str] | None
) -> None:
    """Merge one noqa entry into the table for one physical line.

    A bare ``noqa`` (``rules is None``) wins over any bracketed list;
    bracketed lists accumulate. Both forms on the same line therefore
    collapse to suppress-all, in either order.
    """
    if rules is None:
        table[line] = None
        return
    prev = table.get(line, set())
    if prev is None:
        return  # already suppress-all
    table[line] = prev | rules


def _collect_suppressions(source: str) -> dict[int, set[str] | None]:
    """Map physical line number -> suppressed rule ids (``None`` = all).

    Scoping is by *logical* line: a noqa comment inside a multi-line
    statement covers every physical line the statement spans, so a
    finding anchored on the statement's first line is reachable from a
    trailing comment on its last. A comment on a line of its own (the
    tokenizer never opens a logical line for it) covers only that line.
    """
    table: dict[int, set[str] | None] = {}
    try:
        pending: list[set[str] | None] = []
        logical_start: int | None = None
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                # One comment can carry several markers ("# repro: noqa
                # repro: noqa[EXC01]"); each merges independently, so a
                # bare one wins regardless of order.
                for m in _NOQA_RE.finditer(tok.string):
                    rules_text = m.group("rules")
                    entry: set[str] | None = None
                    if rules_text is not None:
                        entry = {
                            r.strip()
                            for r in rules_text.split(",")
                            if r.strip()
                        }
                    if logical_start is None:
                        # Standalone comment line: covers itself only.
                        _apply_suppression(table, tok.start[0], entry)
                    else:
                        pending.append(entry)
            elif tok.type == tokenize.NEWLINE:
                # End of a logical line: pending comments cover its
                # whole physical span.
                if pending and logical_start is not None:
                    for line in range(logical_start, tok.start[0] + 1):
                        for entry in pending:
                            _apply_suppression(table, line, entry)
                pending.clear()
                logical_start = None
            elif tok.type in (
                tokenize.NL,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                continue
            elif logical_start is None:
                logical_start = tok.start[0]
    except tokenize.TokenError:  # pragma: no cover - parse already failed
        pass
    return table


def _suppressed(finding: Finding, table: dict[int, set[str] | None]) -> bool:
    if finding.line not in table:
        return False
    rules = table[finding.line]
    if rules is None:
        return True
    if finding.rule in rules:
        return True
    # A noqa written against a retired id keeps covering the rule that
    # superseded it (noqa[SHM01] suppresses SHM03 findings).
    return any(_ALIASES.get(r) == finding.rule for r in rules)


def lint_source(
    source: str,
    *,
    filename: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint a source string; parse failures surface as a ``PARSE`` finding."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                rule="PARSE",
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=filename,
        source=source,
        tree=tree,
        imports=_collect_imports(tree),
        suppressions=_collect_suppressions(source),
    )
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        findings.extend(rule.check(ctx))
    findings = [f for f in findings if not _suppressed(f, ctx.suppressions)]
    findings.sort(key=Finding.sort_key)
    return findings


def lint_file(
    path: str, *, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, filename=path, rules=rules)


def iter_python_files(
    paths: Iterable[str],
    *,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> Iterator[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    Directory walks skip ``excludes`` components; explicitly named files
    are always yielded (that is how the fixture corpus gets linted on
    purpose).
    """
    seen: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in excludes
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(dirpath, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def lint_paths(
    paths: Iterable[str],
    *,
    select: Sequence[str] | None = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    on_file: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Lint files and directory trees; the main library entry point."""
    rules = [get_rule(r) for r in select] if select is not None else None
    findings: list[Finding] = []
    for path in iter_python_files(paths, excludes=excludes):
        if on_file is not None:
            on_file(path)
        findings.extend(lint_file(path, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings
