"""SHM02 — arena slot-lease lifecycle violations.

:mod:`repro.runtime.arena` documents a lease protocol on top of the
pre-pinned segments: every slot leased with ``.place(...)`` or
``.reserve(...)`` must reach exactly one ``release_lease`` on *all*
paths, including exceptional ones, unless ownership escapes the function
(the ref is returned, or handed to a longer-lived container such as
``self._arena_leases`` that a later call drains).

The rule performs a per-function, lexically scoped audit:

- **missing release** — a leased ref never passed to ``release_lease``,
  never appended to a container that is drained through
  ``release_lease`` in a loop or that itself escapes, and never
  returned;
- **not exception-safe** — every release of the ref sits outside any
  ``finally`` block (an exception between lease and release strands the
  slot on the free list until teardown-time reclamation);
- **view-after-release** — a load of a parent-side window adopted with
  ``.view(ref)`` in a statement after the ``release_lease(ref)``
  statement of the same suite (the slot may be re-leased and
  overwritten under the view; copy out before returning the lease).

The audit is intentionally lexical — it does not chase aliases across
function boundaries. Suppress deliberate protocol departures with an
annotated ``# repro: noqa[SHM02]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.framework import FileContext, Finding, Rule, register

#: Attribute-call tails that lease a slot (``arena.place`` / ``.reserve``).
_LEASE_ATTRS = ("place", "reserve")

_RELEASE = "release_lease"


def _attr_tail(node: ast.expr) -> str | None:
    """Attribute name of an ``<obj>.method`` callee, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _call_tail(node: ast.expr) -> str | None:
    """Last identifier of a Name/Attribute callee."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _arg_names(arg: ast.expr) -> list[str]:
    """Names carried by a direct Name or a Tuple/List of Names."""
    if isinstance(arg, ast.Name):
        return [arg.id]
    if isinstance(arg, (ast.Tuple, ast.List)):
        return [e.id for e in arg.elts if isinstance(e, ast.Name)]
    return []


@dataclass
class _Lease:
    node: ast.AST
    ref_name: str


@dataclass
class _Scope:
    """Per-function audit state."""

    leases: list[_Lease] = field(default_factory=list)
    #: ref name -> was any release inside a ``finally``?
    releases: dict[str, bool] = field(default_factory=dict)
    #: container name -> ref names appended/extended into it
    containers: dict[str, list[str]] = field(default_factory=dict)
    #: containers drained via ``for r in c: release_lease(r)`` -> in finally?
    drained: dict[str, bool] = field(default_factory=dict)
    #: names whose ownership left the function (returned, or handed to a
    #: longer-lived attribute container like ``self._arena_leases``)
    escaped: set[str] = field(default_factory=set)
    #: view name -> the ref it was adopted from (``v = arena.view(ref)``)
    views: dict[str, str] = field(default_factory=dict)


@register
class Shm02ArenaLeaseLifecycle(Rule):
    id = "SHM02"
    title = "arena slot-lease lifecycle violation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    # -- per-function audit ---------------------------------------------

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        scope = _Scope()
        self._walk_suite(fn.body, scope, in_finally=False, loop_var=None)
        for lease in scope.leases:
            name = lease.ref_name
            if self._escapes(name, scope):
                continue
            released = name in scope.releases
            drained_via = [
                scope.drained[c]
                for c, members in scope.containers.items()
                if name in members and c in scope.drained
            ]
            if not released and not drained_via:
                yield self.finding(
                    ctx,
                    lease.node,
                    f"arena lease `{name}` is taken but never returned "
                    f"(no `release_lease({name})`, container drain, or "
                    f"ownership escape)",
                )
                continue
            safe = scope.releases.get(name, False) or any(drained_via)
            if not safe:
                yield self.finding(
                    ctx,
                    lease.node,
                    f"arena lease `{name}` is released outside any "
                    f"`finally` block; an exception between lease and "
                    f"release strands the slot until teardown",
                )
        yield from self._check_view_after_release(ctx, fn, scope)

    @staticmethod
    def _escapes(name: str, scope: _Scope) -> bool:
        """Ownership left the function — directly or via a container."""
        if name in scope.escaped:
            return True
        return any(
            name in members and container in scope.escaped
            for container, members in scope.containers.items()
        )

    # -- statement walker -------------------------------------------------

    def _walk_suite(
        self,
        suite: Sequence[ast.stmt],
        scope: _Scope,
        *,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        for stmt in suite:
            self._walk_stmt(stmt, scope, in_finally=in_finally, loop_var=loop_var)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        scope: _Scope,
        *,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes audit separately
        if isinstance(stmt, ast.Assign):
            self._record_assign(stmt, scope)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name):
                        scope.escaped.add(sub.id)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                self._record_call(stmt.value, scope, in_finally, loop_var)
            return
        if isinstance(stmt, ast.Try):
            for suite in (stmt.body, stmt.orelse):
                self._walk_suite(
                    suite, scope, in_finally=in_finally, loop_var=loop_var
                )
            for handler in stmt.handlers:
                self._walk_suite(
                    handler.body, scope, in_finally=in_finally, loop_var=loop_var
                )
            self._walk_suite(
                stmt.finalbody, scope, in_finally=True, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            inner: tuple[str, str] | None = None
            if isinstance(stmt.target, ast.Name) and isinstance(stmt.iter, ast.Name):
                inner = (stmt.target.id, stmt.iter.id)
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=inner)
            self._walk_suite(
                stmt.orelse, scope, in_finally=in_finally, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=loop_var)
            self._walk_suite(
                stmt.orelse, scope, in_finally=in_finally, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=loop_var)
            return

    # -- site recording --------------------------------------------------

    def _record_assign(self, node: ast.Assign, scope: _Scope) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name) or target.id == "_":
            return
        tail = _attr_tail(call.func)
        if tail in _LEASE_ATTRS:
            scope.leases.append(_Lease(node=node, ref_name=target.id))
        elif tail == "view" and call.args and isinstance(call.args[0], ast.Name):
            scope.views[target.id] = call.args[0].id

    def _record_call(
        self,
        call: ast.Call,
        scope: _Scope,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        tail = _call_tail(call.func)
        if tail == _RELEASE and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Name):
                name = arg.id
                if loop_var is not None and name == loop_var[0]:
                    scope.drained[loop_var[1]] = (
                        scope.drained.get(loop_var[1], False) or in_finally
                    )
                else:
                    scope.releases[name] = (
                        scope.releases.get(name, False) or in_finally
                    )
        elif tail in ("append", "extend") and isinstance(call.func, ast.Attribute):
            owner = call.func.value
            names = _arg_names(call.args[0]) if call.args else []
            if isinstance(owner, ast.Name):
                scope.containers.setdefault(owner.id, []).extend(names)
            elif isinstance(owner, ast.Attribute):
                # ``self._arena_leases.append/extend(...)`` — ownership
                # handed to a longer-lived container the engine's
                # ``finally`` drains on the next batch boundary.
                scope.escaped.update(names)

    # -- view-after-release ----------------------------------------------

    def _check_view_after_release(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: _Scope,
    ) -> Iterator[Finding]:
        if not scope.views:
            return
        refs_to_views: dict[str, list[str]] = {}
        for view, ref in scope.views.items():
            refs_to_views.setdefault(ref, []).append(view)
        for suite in self._suites(fn):
            for pos, stmt in enumerate(suite):
                for ref in self._released_refs(stmt):
                    for view in refs_to_views.get(ref, ()):
                        use = self._first_use(suite[pos + 1:], view)
                        if use is not None:
                            yield self.finding(
                                ctx,
                                use,
                                f"view `{view}` used after its lease "
                                f"`{ref}` was returned; the slot may be "
                                f"re-leased and overwritten — copy out "
                                f"before `release_lease`",
                            )

    def _suites(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[list[ast.stmt]]:
        """Every straight-line statement suite of ``fn``, nested scopes excluded."""
        suites: list[list[ast.stmt]] = []

        def visit(node: ast.AST) -> None:
            for attr in ("body", "orelse", "finalbody"):
                suite = getattr(node, attr, None)
                if (
                    isinstance(suite, list)
                    and suite
                    and isinstance(suite[0], ast.stmt)
                ):
                    suites.append(suite)
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    suites.append(handler.body)
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                visit(child)

        visit(fn)
        return suites

    @staticmethod
    def _released_refs(stmt: ast.stmt) -> list[str]:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return []
        call = stmt.value
        if (
            _call_tail(call.func) == _RELEASE
            and call.args
            and isinstance(call.args[0], ast.Name)
        ):
            return [call.args[0].id]
        return []

    @staticmethod
    def _first_use(stmts: Sequence[ast.stmt], view: str) -> ast.AST | None:
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(sub, ast.Name) and sub.id == view:
                    return sub
        return None
