"""The shipped project rules. Importing this package registers them all.

``SHM01``/``SHM02`` (the lexical shared-memory and arena-lease audits)
were superseded by the flow-sensitive ``SHM03`` in
:mod:`repro.analysis.rules.lease_lifecycle`; their ids stay registered
as aliases so selections and ``noqa`` annotations written against them
keep working.
"""

from repro.analysis.framework import alias
from repro.analysis.rules.determinism import Det01UnseededRandomness
from repro.analysis.rules.exceptions import Exc01OverbroadExcept
from repro.analysis.rules.fork_safety import Fork01ForkSafety
from repro.analysis.rules.lease_lifecycle import Shm03LeaseLifecycle
from repro.analysis.rules.lock_discipline import Lock01LockDiscipline
from repro.analysis.rules.pickling import Pick01NonPicklableTask
from repro.analysis.rules.retry import Ret01UnboundedRetryLoop
from repro.analysis.rules.shapes import Shape01EinsumSubscripts

alias("SHM01", "SHM03")
alias("SHM02", "SHM03")

__all__ = [
    "Det01UnseededRandomness",
    "Exc01OverbroadExcept",
    "Fork01ForkSafety",
    "Lock01LockDiscipline",
    "Pick01NonPicklableTask",
    "Ret01UnboundedRetryLoop",
    "Shape01EinsumSubscripts",
    "Shm03LeaseLifecycle",
]
