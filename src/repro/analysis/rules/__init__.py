"""The shipped project rules. Importing this package registers them all."""

from repro.analysis.rules.arena import Shm02ArenaLeaseLifecycle
from repro.analysis.rules.determinism import Det01UnseededRandomness
from repro.analysis.rules.exceptions import Exc01OverbroadExcept
from repro.analysis.rules.pickling import Pick01NonPicklableTask
from repro.analysis.rules.retry import Ret01UnboundedRetryLoop
from repro.analysis.rules.shapes import Shape01EinsumSubscripts
from repro.analysis.rules.shm import Shm01SharedMemoryOwnership

__all__ = [
    "Det01UnseededRandomness",
    "Exc01OverbroadExcept",
    "Pick01NonPicklableTask",
    "Ret01UnboundedRetryLoop",
    "Shape01EinsumSubscripts",
    "Shm01SharedMemoryOwnership",
    "Shm02ArenaLeaseLifecycle",
]
