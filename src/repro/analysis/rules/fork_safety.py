"""FORK01 — fork-safety: nothing concurrency-shaped may straddle a fork.

``fork(2)`` copies exactly one thread into the child. Any lock held by
the parent at fork time is copied *locked* with nobody left to unlock
it; any live helper thread simply does not exist in the child, leaving
whatever it owned (queues, buffers, the logging lock) in a torn state;
an open thread pool's workers vanish while its bookkeeping says they
are running. The persistent runtime forks workers on purpose
(:mod:`repro.runtime.persistent` pre-forks so workers inherit the
shared arena mapping), which makes this a discipline to *check*, not a
pattern to ban.

Fork sites are ``os.fork()``/``os.forkpty()`` calls and ``.start()`` on
a process created from an explicit fork context
(``multiprocessing.get_context("fork").Process(...)``), resolved
through import aliases and local bindings by the symbol table plus a
per-function kind dataflow. At each site the rule inspects the
flow-analysis state on the incoming edge:

- **held locks** — the same held-lock analysis LOCK01 uses (``with``
  bodies and explicit ``acquire``/``release``);
- **live threads** — locals that were ``Thread(...)``-constructed and
  ``.start()``-ed on some path without an intervening ``.join()``;
- **open pools** — ``ThreadPoolExecutor`` locals not yet shut down
  (``with``-scoped pools close at the block exit in the CFG, so a fork
  *after* the ``with`` is clean).

Because the check is flow-sensitive, the canonical safe shape — fork
every worker first, start the pump threads after — passes even though
both live in one function body; a lexical scan would have to flag it.
A deliberate exception (forking under a short-lived guard the child
provably never touches) takes an annotated ``# repro: noqa[FORK01]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.cfg import WithEnter, WithExit, build_cfg, instr_exprs
from repro.analysis.dataflow import Env, solve
from repro.analysis.framework import FileContext, Finding, Rule, register
from repro.analysis.rules.lock_discipline import _HELD, _HeldLocks
from repro.analysis.symbols import (
    FORK_CALLS,
    KIND_FORK_CONTEXT,
    KIND_FORK_PROCESS,
    KIND_POOL,
    KIND_THREAD,
    SymbolTable,
    _is_fork_context_call,
)

_THREADS = "T"  # Env key: names of started, un-joined threads
_POOLS = "P"  # Env key: names of open thread pools


class _ForkState(_HeldLocks):
    """Held locks (inherited) + local kinds, live threads, open pools."""

    def _kind_of(self, expr: ast.expr, state: Env) -> str | None:
        if isinstance(expr, ast.Name):
            local = state.get(f"k:{expr.id}")
            if local:
                return next(iter(local))
        return self.table.expr_kind(expr, class_name=self.class_name)

    def transfer(self, instr, state: Env) -> Env:
        state = super().transfer(instr, state)
        if isinstance(instr, WithEnter):
            item = instr.item
            if (
                isinstance(item.context_expr, ast.Call)
                and self.table.call_kind(item.context_expr) == KIND_POOL
                and isinstance(item.optional_vars, ast.Name)
            ):
                return state.add(_POOLS, item.optional_vars.id)
            return state
        if isinstance(instr, WithExit):
            item = instr.item
            if (
                isinstance(item.context_expr, ast.Call)
                and self.table.call_kind(item.context_expr) == KIND_POOL
                and isinstance(item.optional_vars, ast.Name)
            ):
                return state.set(
                    _POOLS, state.get(_POOLS) - {item.optional_vars.id}
                )
            return state
        if isinstance(instr, ast.Assign) and isinstance(instr.value, ast.Call):
            target = instr.targets[0]
            if not isinstance(target, ast.Name):
                return state
            call = instr.value
            kind = self.table.call_kind(call)
            if kind is None and isinstance(call.func, ast.Attribute):
                recv = self._kind_of(call.func.value, state)
                if recv == KIND_FORK_CONTEXT and call.func.attr == "Process":
                    kind = KIND_FORK_PROCESS
            if _is_fork_context_call(self.table.ctx, call):
                kind = KIND_FORK_CONTEXT
            if kind is not None:
                state = state.set(f"k:{target.id}", frozenset({kind}))
                if kind == KIND_POOL:
                    # A constructed pool is live until shut down.
                    state = state.add(_POOLS, target.id)
            else:
                state = state.discard(f"k:{target.id}")
            return state
        if isinstance(instr, ast.Expr) and isinstance(instr.value, ast.Call):
            call = instr.value
            if isinstance(call.func, ast.Attribute) and isinstance(
                call.func.value, ast.Name
            ):
                name = call.func.value.id
                kind = self._kind_of(call.func.value, state)
                if kind == KIND_THREAD:
                    if call.func.attr == "start":
                        return state.add(_THREADS, name)
                    if call.func.attr == "join":
                        return state.set(
                            _THREADS, state.get(_THREADS) - {name}
                        )
                if kind == KIND_POOL and call.func.attr == "shutdown":
                    return state.set(_POOLS, state.get(_POOLS) - {name})
        return state


@register
class Fork01ForkSafety(Rule):
    id = "FORK01"
    title = "fork while locks are held, threads live, or pools open"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = SymbolTable.build(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                class_name = self._enclosing_class(ctx.tree, node)
                yield from self._check_function(ctx, table, node, class_name)

    @staticmethod
    def _enclosing_class(tree: ast.Module, fn: ast.AST) -> str | None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and fn in node.body:
                return node.name
        return None

    def _check_function(
        self,
        ctx: FileContext,
        table: SymbolTable,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> Iterator[Finding]:
        analysis = _ForkState(table, class_name)
        cfg = build_cfg(fn)
        solution = solve(cfg, analysis)
        seen: set[tuple] = set()
        for block in cfg.blocks:
            if block.id not in solution.block_in:
                continue  # unreachable
            for instr, pre, _post in solution.replay(block):
                for site, what in self._fork_sites(ctx, analysis, instr, pre):
                    key = (site.lineno, site.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield from self._report(ctx, site, what, pre)

    def _fork_sites(
        self, ctx: FileContext, analysis: _ForkState, instr, pre: Env
    ) -> Iterator[tuple[ast.Call, str]]:
        if isinstance(instr, (WithEnter, WithExit)):
            return
        for expr in instr_exprs(instr):
            yield from self._sites_in_expr(ctx, analysis, expr, pre)

    def _sites_in_expr(
        self, ctx: FileContext, analysis: _ForkState, expr: ast.AST, pre: Env
    ) -> Iterator[tuple[ast.Call, str]]:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Call):
                continue
            if ctx.resolve(sub.func) in FORK_CALLS:
                yield sub, "os.fork()"
                continue
            if (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "start"
                and analysis._kind_of(sub.func.value, pre) == KIND_FORK_PROCESS
            ):
                yield sub, "fork-context Process.start()"

    def _report(
        self, ctx: FileContext, site: ast.Call, what: str, pre: Env
    ) -> Iterator[Finding]:
        hazards = []
        held = pre.get(_HELD)
        if held:
            locks = ", ".join(f"`{t}`" for t in sorted(held))
            hazards.append(
                f"lock(s) {locks} held — the child inherits them locked "
                f"with no thread to release them"
            )
        threads = pre.get(_THREADS)
        if threads:
            names = ", ".join(f"`{t}`" for t in sorted(threads))
            hazards.append(
                f"thread(s) {names} may still be running — they do not "
                f"exist in the child, leaving their locks and buffers torn"
            )
        pools = pre.get(_POOLS)
        if pools:
            names = ", ".join(f"`{t}`" for t in sorted(pools))
            hazards.append(
                f"thread pool(s) {names} still open — worker threads "
                f"vanish in the child while the pool believes they run"
            )
        if not hazards:
            return
        yield self.finding(
            ctx,
            site,
            f"{what} with " + "; ".join(hazards),
        )
