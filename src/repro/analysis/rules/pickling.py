"""PICK01 — process-pool tasks must be module-level picklables.

The ``processes`` backend of :mod:`repro.runtime.executor` forks workers
and ships each task function through pickle. Pickle serializes functions
*by reference* — a lambda or a function defined inside another function
has no importable reference, so submitting one raises
``PicklingError`` at runtime (and only on the process backend, which the
fast unit tests rarely exercise).

The rule flags a lambda, or a name bound to a nested ``def``/lambda in
the same enclosing function, passed as the callable argument of an
executor-style dispatch call (``.map(...)``, ``.submit(...)``,
``.apply_async(...)``). Two escape hatches keep the repository's
legitimate thread-backend closures quiet:

- the call is lexically guarded by a ``supports_shared_state`` test (the
  codebase's idiom for "this branch never runs on a process pool");
- the receiver is statically a thread/serial pool: a direct
  ``SerialExecutor()``/``ThreadExecutor()``/``ThreadPoolExecutor()``
  construction, or a name bound to one in the same function (including
  ``with ThreadExecutor(2) as ex:`` bindings).

Anything else is either a real fork-pickle hazard or a pattern worth an
annotated ``# repro: noqa[PICK01]``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule, register

_DISPATCH_METHODS = frozenset({"map", "submit", "apply_async"})
_GUARD_ATTR = "supports_shared_state"
_THREAD_SAFE_POOLS = frozenset(
    {"SerialExecutor", "ThreadExecutor", "ThreadPoolExecutor"}
)


def _pool_tail(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    return None


def _thread_safe_names(fn: ast.AST) -> set[str]:
    """Names bound (assign or ``with ... as``) to shared-state pools."""
    names: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Assign):
                if _pool_tail(child.value) in _THREAD_SAFE_POOLS:
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if (
                        _pool_tail(item.context_expr) in _THREAD_SAFE_POOLS
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        names.add(item.optional_vars.id)
            visit(child)

    visit(fn)
    return names


def _nested_callables(fn: ast.AST) -> set[str]:
    """Names bound to nested defs/lambdas directly inside ``fn``'s scope."""
    names: set[str] = set()

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(child.name)
                continue  # its interior is another scope
            if isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Lambda
            ):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            if isinstance(child, ast.ClassDef):
                continue
            visit(child)

    visit(fn)
    return names


def _guard_mentions(test: ast.expr) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == _GUARD_ATTR
        for sub in ast.walk(test)
    )


@register
class Pick01NonPicklableTask(Rule):
    id = "PICK01"
    title = "closure or lambda submitted to a process-capable executor"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Closures read enclosing bindings, so a nested task function sees
        # the thread-safe pool names of every ancestor scope.
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(ctx.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            nested = _nested_callables(fn)
            safe = _thread_safe_names(fn)
            node: ast.AST = fn
            while node in parents:
                node = parents[node]
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    safe |= _thread_safe_names(node)
            yield from self._check_scope(
                ctx, fn, fn, nested, safe, guarded=False
            )

    def _check_scope(
        self,
        ctx: FileContext,
        fn: ast.AST,
        node: ast.AST,
        nested: set[str],
        safe: set[str],
        *,
        guarded: bool,
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.If) and _guard_mentions(child.test):
                # The true branch runs only with shared state (threads /
                # serial); the orelse branch is the process path and stays
                # audited.
                yield from self._check_scope(
                    ctx, fn, _Suite(child.body), nested, safe, guarded=True
                )
                yield from self._check_scope(
                    ctx, fn, _Suite(child.orelse), nested, safe, guarded=guarded
                )
                continue
            if isinstance(child, ast.Call):
                yield from self._check_call(ctx, child, nested, safe, guarded)
            yield from self._check_scope(
                ctx, fn, child, nested, safe, guarded=guarded
            )

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        nested: set[str],
        safe: set[str],
        guarded: bool,
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _DISPATCH_METHODS or guarded:
            return
        if isinstance(func.value, ast.Name) and func.value.id in safe:
            return
        if _pool_tail(func.value) in _THREAD_SAFE_POOLS:
            return  # e.g. SerialExecutor().map(lambda ...)
        if not call.args:
            return
        task = call.args[0]
        if isinstance(task, ast.Lambda):
            yield self.finding(
                ctx,
                task,
                f"lambda passed to `.{func.attr}(...)`; process pools "
                f"pickle tasks by reference — use a module-level function",
            )
        elif isinstance(task, ast.Name) and task.id in nested:
            yield self.finding(
                ctx,
                task,
                f"nested function `{task.id}` passed to `.{func.attr}(...)`; "
                f"process pools pickle tasks by reference — move it to "
                f"module level or guard the branch with "
                f"`supports_shared_state`",
            )


class _Suite:
    """Adapter exposing a statement list through ``iter_child_nodes``."""

    def __init__(self, body: list[ast.stmt]) -> None:
        self._fields = ("body",)
        self.body = body

    _attributes: tuple = ()
    _fields = ("body",)
