"""SHM03 — flow-sensitive shared-memory segment / arena-lease lifecycle.

Supersedes the lexical SHM01 (segment ownership) and SHM02 (arena lease
lifecycle) audits of PRs 3/7; both retired ids remain registered as
aliases of this rule, so existing ``--select SHM01`` invocations and
``# repro: noqa[SHM01]``/``[SHM02]`` annotations keep working.

Where the old rules pattern-matched statement suites ("is there a
release under a ``finally`` *somewhere*?"), this one builds the
function's control-flow graph (:mod:`repro.analysis.cfg`) and runs a
forward dataflow (:mod:`repro.analysis.dataflow`) whose abstract state
tracks, per acquire site, whether the resource is **held**, **released**,
or **escaped** along every path — including the exception edges the
lexical audit could not see. A function is clean exactly when no
resource reaches either function exit still held:

- reaching the *normal* exit held → a branch (or every path) misses the
  release;
- reaching only the *exceptional* exit held → the happy path releases
  but an exception between acquire and release leaks — the PR 7 class
  of bug, reportable now without a ``finally``-shaped heuristic,
  because inlined ``finally`` copies and ``with`` cleanups are ordinary
  CFG paths here;
- view bindings (``seg, view = import_array(ref)``,
  ``w = arena.view(ref)``) must be **dead before the release**: any
  load of a view whose backing resource is already released on some
  path is a use-after-release.

Tracked acquire sites: ``export_array``/``import_array`` (a
``transfer_ownership=True`` export closes its own mapping and is
exempt), raw ``SharedMemory(...)`` constructions, and the arena lease
calls ``.place(...)``/``.reserve(...)``. Releases: ``release(x)``,
``release_lease(x)``, ``x.close()``/``x.unlink()``, and the bulk
``reclaim``/``reclaim_leases`` sweeps. Ownership escapes: returning or
yielding the handle, storing it on an attribute, or appending it to an
attribute-held container (``self._arena_leases.append(ref)``); local
containers drained through ``for r in refs: release_lease(r)`` are
followed through the loop, on whatever path the drain sits.

The analysis stays per-function (handles passed *into* a function are
the caller's to audit) and joins states by union, so every report names
a path that actually exists in the graph. Suppress deliberate protocol
departures with an annotated ``# repro: noqa[SHM03]`` (or a legacy
``[SHM01]``/``[SHM02]``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.cfg import CFG, WithEnter, WithExit, build_cfg, instr_exprs
from repro.analysis.dataflow import Analysis, Env, solve
from repro.analysis.framework import FileContext, Finding, Rule, register

_SEGMENT_ACQUIRES = ("export_array", "import_array")
_LEASE_ATTRS = ("place", "reserve")
_RELEASE_NAMES = ("release", "release_lease")
_RECLAIM_NAMES = ("reclaim", "reclaim_leases")

HELD = "held"
RELEASED = "released"
ESCAPED = "escaped"
#: Released through a container drain loop (``for r in refs:
#: release(r)``). Kept distinct from RELEASED because the may-join at
#: the loop head re-introduces the pre-drain HELD state (the analysis
#: cannot correlate the drain's trip count with the acquire loop's);
#: a DRAINED resource is treated as released everywhere.
DRAINED = "drained"


def _call_tail(node: ast.expr) -> str | None:
    """Last identifier of a Name/Attribute callee."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _has_kw_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name:
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


@dataclass
class _Site:
    """One acquire site: where, what kind, which variable held it."""

    rid: str
    node: ast.AST
    kind: str  # "segment" | "lease"
    var: str

    @property
    def noun(self) -> str:
        return "segment" if self.kind == "segment" else "arena lease"


class _LifecycleAnalysis(Analysis):
    """The per-function dataflow.

    Env keys: ``v:<name>`` local handle bindings (-> resource ids),
    ``w:<name>`` view bindings (-> backing resource ids), ``c:<name>``
    local container contents, ``r:<rid>`` resource status tokens.
    """

    def __init__(self) -> None:
        self.sites: dict[str, _Site] = {}

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _rids_of(state: Env, name: str) -> frozenset:
        return state.get(f"v:{name}") | state.get(f"c:{name}")

    @staticmethod
    def _mark(state: Env, rids: frozenset, token: str) -> Env:
        for rid in rids:
            if token == ESCAPED:
                prev = state.get(f"r:{rid}")
                state = state.set(f"r:{rid}", (prev - {HELD}) | {ESCAPED})
            else:
                state = state.set(f"r:{rid}", frozenset({token}))
        return state

    def _escape_expr(self, state: Env, expr: ast.expr | None) -> Env:
        """Every handle named anywhere in ``expr`` escapes the function."""
        if expr is None:
            return state
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                rids = self._rids_of(state, sub.id)
                if rids:
                    state = self._mark(state, rids, ESCAPED)
        return state

    def _kill_binding(self, state: Env, name: str) -> Env:
        for prefix in ("v:", "w:", "c:", "d:"):
            state = state.discard(prefix + name)
        return state

    def _acquire_of(self, call: ast.Call) -> str | None:
        """Resource kind acquired by ``call``, or ``None``."""
        tail = _call_tail(call.func)
        if tail in _SEGMENT_ACQUIRES:
            if tail == "export_array" and _has_kw_true(call, "transfer_ownership"):
                # The helper closes its own mapping; the segment slot of
                # the returned tuple is documented to be None.
                return None
            return "segment"
        if tail == "SharedMemory":
            return "segment"
        if isinstance(call.func, ast.Attribute) and tail in _LEASE_ATTRS:
            return "lease"
        return None

    def _site(self, node: ast.AST, kind: str, var: str) -> _Site:
        rid = f"{kind}@{getattr(node, 'lineno', 0)}:{getattr(node, 'col_offset', 0)}"
        site = self.sites.get(rid)
        if site is None:
            site = _Site(rid=rid, node=node, kind=kind, var=var)
            self.sites[rid] = site
        return site

    # -- transfer --------------------------------------------------------

    def transfer(self, instr, state: Env) -> Env:
        if isinstance(instr, (WithEnter, WithExit)):
            return state
        if isinstance(instr, ast.Assign):
            return self._assign(instr, state)
        if isinstance(instr, ast.AnnAssign) and instr.value is not None:
            fake = ast.Assign(targets=[instr.target], value=instr.value)
            ast.copy_location(fake, instr)
            return self._assign(fake, state)
        if isinstance(instr, ast.Expr):
            if isinstance(instr.value, ast.Call):
                return self._call(instr.value, state)
            if isinstance(instr.value, (ast.Yield, ast.YieldFrom)):
                return self._escape_expr(state, instr.value)
            return state
        if isinstance(instr, ast.Return):
            return self._escape_expr(state, instr.value)
        if isinstance(instr, (ast.For, ast.AsyncFor)):
            # Loop head: drain-loop support — iterating a tracked local
            # container binds the target to its members.
            if isinstance(instr.target, ast.Name) and isinstance(
                instr.iter, ast.Name
            ):
                members = state.get(f"c:{instr.iter.id}")
                if members:
                    state = self._kill_binding(state, instr.target.id)
                    state = state.set(f"v:{instr.target.id}", members)
                    return state.set(f"d:{instr.target.id}", frozenset({"1"}))
            return state
        if isinstance(instr, ast.Delete):
            for tgt in instr.targets:
                if isinstance(tgt, ast.Name):
                    state = self._kill_binding(state, tgt.id)
            return state
        if isinstance(instr, ast.Raise):
            # ``raise Exc(ref)`` hands the handle to the error path; the
            # exception machinery (or the handler) owns it now.
            return self._escape_expr(state, instr.exc)
        return state

    def _assign(self, instr: ast.Assign, state: Env) -> Env:
        value = instr.value
        target = instr.targets[0]

        # Attribute / subscript targets: the handle escapes the function.
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            return self._escape_expr(state, value)

        acquired = (
            self._acquire_of(value) if isinstance(value, ast.Call) else None
        )
        if acquired is not None and isinstance(value, ast.Call):
            tail = _call_tail(value.func)
            seg_name = view_name = None
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                first, second = target.elts
                if isinstance(first, ast.Name) and first.id != "_":
                    seg_name = first.id
                if (
                    tail == "import_array"
                    and isinstance(second, ast.Name)
                    and second.id != "_"
                ):
                    view_name = second.id
            elif isinstance(target, ast.Name) and target.id != "_":
                seg_name = target.id
            if seg_name is None:
                return state
            site = self._site(instr, acquired, seg_name)
            state = self._kill_binding(state, seg_name)
            state = state.set(f"v:{seg_name}", frozenset({site.rid}))
            state = state.set(f"r:{site.rid}", frozenset({HELD}))
            if view_name is not None:
                state = self._kill_binding(state, view_name)
                state = state.set(f"w:{view_name}", frozenset({site.rid}))
            return state

        # ``w = arena.view(ref)`` — a window onto a leased slot.
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "view"
            and value.args
            and isinstance(value.args[0], ast.Name)
            and isinstance(target, ast.Name)
        ):
            backing = self._rids_of(state, value.args[0].id)
            state = self._kill_binding(state, target.id)
            if backing:
                return state.set(f"w:{target.id}", backing)
            return state

        # Alias copy: ``b = a`` carries every binding class across.
        if isinstance(target, ast.Name) and isinstance(value, ast.Name):
            state = self._kill_binding(state, target.id)
            for prefix in ("v:", "w:", "c:"):
                tokens = state.get(prefix + value.id)
                if tokens:
                    state = state.set(prefix + target.id, tokens)
            return state

        # Fresh container literal, or any other value: strong rebind.
        if isinstance(target, ast.Name):
            state = self._kill_binding(state, target.id)
            return state
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    state = self._kill_binding(state, elt.id)
        return state

    def _call(self, call: ast.Call, state: Env) -> Env:
        tail = _call_tail(call.func)
        if tail in _RELEASE_NAMES and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Name):
                rids = self._rids_of(state, arg.id)
                token = RELEASED
                if state.get(f"d:{arg.id}"):
                    token = DRAINED
                return self._mark(state, rids, token)
            return state
        if tail in _RECLAIM_NAMES:
            # Bulk sweeps retire every outstanding resource in scope.
            return state.map_values(
                lambda k, v: frozenset({RELEASED}) if k.startswith("r:") else v
            )
        if tail in ("close", "unlink") and isinstance(call.func, ast.Attribute):
            owner = call.func.value
            if isinstance(owner, ast.Name):
                rids = self._rids_of(state, owner.id)
                token = RELEASED
                if state.get(f"d:{owner.id}"):
                    token = DRAINED
                return self._mark(state, rids, token)
            return state
        if tail in ("append", "extend", "add") and isinstance(
            call.func, ast.Attribute
        ):
            owner = call.func.value
            names: list[str] = []
            if call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Name):
                    names = [arg.id]
                elif isinstance(arg, (ast.Tuple, ast.List)):
                    names = [e.id for e in arg.elts if isinstance(e, ast.Name)]
            rids = frozenset()
            for name in names:
                rids = rids | self._rids_of(state, name)
            if not rids:
                return state
            if isinstance(owner, ast.Name):
                # Local container: remembered so a later drain loop (or
                # the container escaping) settles the members' fate.
                return state.add(f"c:{owner.id}", *rids)
            if isinstance(owner, ast.Attribute):
                # ``self._arena_leases.append(ref)`` — ownership handed
                # to a longer-lived container another call drains.
                return self._mark(state, rids, ESCAPED)
        return state

    # -- exception modelling ---------------------------------------------

    @staticmethod
    def _is_release_stmt(instr) -> bool:
        if not isinstance(instr, ast.Expr) or not isinstance(instr.value, ast.Call):
            return False
        tail = _call_tail(instr.value.func)
        return tail in _RELEASE_NAMES + _RECLAIM_NAMES + ("close", "unlink")

    def can_raise(self, instr) -> bool:
        if isinstance(instr, ast.Assign) and isinstance(
            instr.value, (ast.Name, ast.Constant, ast.List, ast.Tuple, ast.Dict)
        ):
            # Plain rebinds and container literals cannot meaningfully
            # raise; exempting them keeps exception-path reports about
            # real call/attribute traffic.
            if isinstance(instr.value, (ast.List, ast.Tuple, ast.Dict)):
                return any(
                    isinstance(sub, ast.Call) for sub in ast.walk(instr.value)
                )
            return False
        if isinstance(instr, ast.Return):
            # A raising return expression is possible but reporting it
            # as a leak path buries the real findings; the handle is
            # escaping either way.
            return False
        return super().can_raise(instr)

    def exception_state(self, instr, pre: Env, post: Env) -> Env:
        if self._is_release_stmt(instr):
            # A release that raises has still retired the resource for
            # leak-accounting purposes (the sanitizer owns that failure
            # mode); carrying the pre-state would report a phantom leak
            # from inside the ``finally`` itself.
            return post
        return pre


@register
class Shm03LeaseLifecycle(Rule):
    id = "SHM03"
    title = "shm segment / arena lease lifecycle violation (flow-sensitive)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        cfg = build_cfg(fn)
        analysis = _LifecycleAnalysis()
        solution = solve(cfg, analysis)
        if not analysis.sites:
            return
        yield from self._leak_findings(ctx, analysis, solution)
        yield from self._use_after_release(ctx, analysis, solution, cfg)

    def _leak_findings(
        self, ctx: FileContext, analysis: _LifecycleAnalysis, solution
    ) -> Iterator[Finding]:
        exit_state = solution.exit_state()
        raise_state = solution.raise_state()
        for rid, site in analysis.sites.items():
            exit_tokens = exit_state.get(f"r:{rid}")
            raise_tokens = raise_state.get(f"r:{rid}")
            if DRAINED in (exit_tokens | raise_tokens):
                # A drain loop retires every member of its container;
                # the residual HELD from the may-join is the analysis's
                # trip-count blindness, not a path in the program.
                continue
            release_verb = (
                f"release_lease({site.var})"
                if site.kind == "lease"
                else f"release({site.var})"
            )
            if HELD in exit_tokens:
                if RELEASED in (exit_tokens | raise_tokens):
                    message = (
                        f"{site.noun} `{site.var}` is released on some "
                        f"paths but leaks on at least one other path to "
                        f"the function exit; every branch must release, "
                        f"drain, or escape it"
                    )
                else:
                    message = (
                        f"{site.noun} `{site.var}` is acquired but never "
                        f"released on any path (no `{release_verb}`, "
                        f"container drain, or ownership escape)"
                    )
                yield self.finding(ctx, site.node, message)
            elif HELD in raise_tokens:
                yield self.finding(
                    ctx,
                    site.node,
                    f"{site.noun} `{site.var}` is released on the happy "
                    f"path but leaks when an exception unwinds before "
                    f"the release; move `{release_verb}` into a "
                    f"`finally` block",
                )

    def _use_after_release(
        self,
        ctx: FileContext,
        analysis: _LifecycleAnalysis,
        solution,
        cfg: CFG,
    ) -> Iterator[Finding]:
        seen: set[tuple] = set()
        for block in cfg.blocks:
            if block.id not in solution.block_in:
                continue  # unreachable
            for instr, pre, _post in solution.replay(block):
                if isinstance(instr, (WithEnter, WithExit)):
                    continue
                loads = self._view_loads(instr)
                if not loads:
                    continue
                for name, node in loads:
                    backing = pre.get(f"w:{name}")
                    for rid in backing:
                        if not ({RELEASED, DRAINED} & pre.get(f"r:{rid}")):
                            continue
                        site = analysis.sites.get(rid)
                        if site is None:
                            continue
                        key = (name, rid, node.lineno, node.col_offset)
                        if key in seen:
                            continue
                        seen.add(key)
                        if site.kind == "lease":
                            message = (
                                f"view `{name}` used after its lease "
                                f"`{site.var}` was returned on some path; "
                                f"the slot may be re-leased and "
                                f"overwritten — copy out before "
                                f"`release_lease`"
                            )
                        else:
                            message = (
                                f"view `{name}` used after its segment "
                                f"`{site.var}` was released on some path; "
                                f"copy the data out before releasing"
                            )
                        yield self.finding(ctx, node, message)

    @staticmethod
    def _view_loads(instr) -> list:
        """(name, node) pairs for every Name load evaluated at ``instr``.

        Scoped to the instruction's own expressions (a compound head
        does not speak for its body — those statements replay with
        their own states).
        """
        loads = []
        for expr in instr_exprs(instr):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    loads.append((sub.id, sub))
        return loads
