"""EXC01 — no swallowed bare/overbroad exceptions in runtime code.

The scheduler and executor must never eat an error: a worker failure that
gets swallowed turns into a silent wrong answer (or a deadlocked merge)
instead of a crash. In ``runtime``/``scheduler`` modules the rule flags
``except:``, ``except Exception:``, and ``except BaseException:``
handlers that *swallow* — i.e. neither re-``raise`` nor propagate by
raising a new exception on every path.

A handler that logs and continues is still swallowing; either narrow the
exception type to the failures the code genuinely expects, re-raise, or
document the deliberate cases with ``# repro: noqa[EXC01] <why>``.

Scope: files with a ``runtime`` or ``scheduler`` path component. Bare
``except:`` (which also catches ``KeyboardInterrupt``/``SystemExit``) is
flagged in *every* file.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule, register

_RUNTIME_PARTS = ("runtime", "scheduler", "executor")
_BROAD = ("Exception", "BaseException")


def _handler_raises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body always re-raises (directly or nested)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Raise):
            return True
    return False


def _exception_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Tuple):
        names = []
        for elt in node.elts:
            names.extend(_exception_names(elt))
        return names
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    return []


@register
class Exc01OverbroadExcept(Rule):
    id = "EXC01"
    title = "swallowed bare/overbroad exception handler"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        runtime_module = ctx.in_directory(*_RUNTIME_PARTS)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_raises(node):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` swallows every exception including "
                    "KeyboardInterrupt/SystemExit; name the exceptions "
                    "this code expects",
                )
                continue
            if not runtime_module:
                continue
            broad = [n for n in _exception_names(node.type) if n in _BROAD]
            if broad:
                yield self.finding(
                    ctx,
                    node,
                    f"`except {broad[0]}` in runtime/scheduler code "
                    f"swallows worker errors; narrow the exception type "
                    f"or re-raise",
                )
