"""RET01 — no unbounded retry loops around task dispatch in runtime code.

A retry loop that can spin forever converts a persistent fault (a worker
that always dies, a segment that never comes back) into a hang — strictly
worse than the crash it was trying to absorb, because nothing ever reaches
the degradation ladder or the failure report. In ``runtime``/``scheduler``
modules the rule flags ``while True:`` (and ``while 1:``) loops that
dispatch work — a ``.submit(...)`` or ``.map(...)`` call anywhere in the
loop body — without either:

- an **attempt bound**: any identifier in the loop matching
  ``attempt``/``retry``/``retries``/``tries``/``budget`` (the loop counts
  what it has consumed and can give up), or
- a **deterministic backoff**: a call to
  :func:`repro.runtime.scheduler.retry_backoff` or ``time.sleep`` (the
  loop at least paces itself on the policy's schedule, which is bounded by
  :class:`~repro.runtime.resilient.RetryPolicy`).

Bounded loops (``for attempt in range(...)``, ``while attempt <= limit``)
never trip the rule. Deliberate infinite dispatch loops (a supervisor's
accept loop, for instance) can be documented with
``# repro: noqa[RET01] <why>``.

Scope: files with a ``runtime``, ``scheduler``, or ``executor`` path
component — the same surface EXC01 polices, for the same reason: this is
where a swallowed or endlessly re-queued failure corrupts the run instead
of stopping it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule, register

_RUNTIME_PARTS = ("runtime", "scheduler", "executor")

#: Attribute names whose call dispatches work to an executor/pool.
_DISPATCH_ATTRS = frozenset({"submit", "map"})

#: Identifiers that signal the loop tracks an attempt budget.
_BOUND_RE = re.compile(r"attempt|retr(y|ies)|\btries\b|budget", re.IGNORECASE)

#: Call targets that pace the loop on a bounded backoff schedule.
_BACKOFF_CALLS = frozenset({"time.sleep", "repro.runtime.scheduler.retry_backoff"})
_BACKOFF_NAMES = frozenset({"sleep", "retry_backoff"})


def _is_forever(test: ast.expr) -> bool:
    """True for ``while True:`` / ``while 1:`` tests."""
    return isinstance(test, ast.Constant) and bool(test.value) and (
        test.value is True or isinstance(test.value, int)
    )


def _dispatch_call(loop: ast.While) -> ast.Call | None:
    """First ``.submit(...)``/``.map(...)`` call inside the loop body."""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _DISPATCH_ATTRS
            ):
                return node
    return None


def _has_attempt_bound(loop: ast.While) -> bool:
    """Any identifier in the loop that names an attempt/retry budget."""
    for stmt in loop.body:
        for node in ast.walk(stmt):
            name: str | None = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.arg):
                name = node.arg
            if name is not None and _BOUND_RE.search(name):
                return True
    return False


def _has_backoff(loop: ast.While, ctx: FileContext) -> bool:
    for stmt in loop.body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target is not None and target in _BACKOFF_CALLS:
                return True
            if target is not None and target.split(".")[-1] in _BACKOFF_NAMES:
                return True
    return False


@register
class Ret01UnboundedRetryLoop(Rule):
    id = "RET01"
    title = "unbounded retry loop around task dispatch"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_directory(*_RUNTIME_PARTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) or not _is_forever(node.test):
                continue
            call = _dispatch_call(node)
            if call is None:
                continue
            if _has_attempt_bound(node) or _has_backoff(node, ctx):
                continue
            assert isinstance(call.func, ast.Attribute)
            yield self.finding(
                ctx,
                node,
                f"`while True` loop re-dispatches `.{call.func.attr}(...)` "
                f"with no attempt bound or backoff; count attempts against "
                f"a budget (RetryPolicy.max_retries) or pace the loop with "
                f"retry_backoff",
            )
