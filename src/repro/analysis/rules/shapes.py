"""SHAPE01 — ``einsum`` subscripts validated against operands.

The batched engine's inner loops are stacked ``einsum`` reductions; a
subscript/operand mismatch there surfaces only at runtime, usually deep
inside a parallel worker with the shape context long gone. The rule
validates every ``np.einsum("...", ops...)`` call with a literal
subscript string:

- the subscript must parse (ASCII letters plus one optional ``...`` per
  term, ``->`` at most once);
- the number of comma-separated input terms must equal the number of
  operand arguments;
- every output label must appear in some input term, and appear in the
  output at most once;
- where an operand's rank is statically known (a name assigned in the
  same function from ``np.eye``/``np.zeros``-style constructors, a
  nested ``einsum``, or rank-preserving wrappers like ``.copy()``), the
  term's label count must equal that rank.

Calls whose subscript is not a string literal, use sublist (interleaved)
form, or involve ``*args`` are skipped — this is a static rule, not a
shape checker.
"""

from __future__ import annotations

import ast
import string
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule, register

_LABELS = set(string.ascii_letters)

#: NumPy constructors whose result rank follows from the call shape.
_RANK_PRESERVING = frozenset(
    {"copy", "ascontiguousarray", "asfortranarray", "asarray", "abs",
     "conj", "conjugate", "sqrt", "exp", "clip", "nan_to_num"}
)


def _split_terms(subscripts: str) -> tuple[list[str], str | None] | None:
    """Parse ``"bij,bjk->bik"`` into (input terms, output | None)."""
    compact = subscripts.replace(" ", "")
    if compact.count("->") > 1:
        return None
    if "->" in compact:
        lhs, out = compact.split("->")
    else:
        lhs, out = compact, None
    return lhs.split(","), out


def _term_ok(term: str) -> bool:
    return term.count("...") <= 1 and all(
        ch in _LABELS for ch in term.replace("...", "")
    )


def _term_rank(term: str) -> int | None:
    """Exact rank a term demands, or None when ``...`` makes it open-ended."""
    if "..." in term:
        return None
    return len(term)


class _RankTracker(ast.NodeVisitor):
    """Best-effort local rank inference for plain ``name = <expr>`` bindings."""

    def __init__(self) -> None:
        self.ranks: dict[str, int] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: do not leak bindings

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            rank = self.infer(node.value)
            name = node.targets[0].id
            if rank is not None:
                self.ranks[name] = rank
            else:
                self.ranks.pop(name, None)
        self.generic_visit(node)

    def infer(self, expr: ast.expr) -> int | None:
        if isinstance(expr, ast.Call):
            tail = (
                expr.func.attr
                if isinstance(expr.func, ast.Attribute)
                else expr.func.id
                if isinstance(expr.func, ast.Name)
                else None
            )
            if tail == "eye":
                return 2
            if tail in ("zeros", "ones", "empty", "full"):
                if expr.args and isinstance(expr.args[0], ast.Tuple):
                    return len(expr.args[0].elts)
                if expr.args and isinstance(expr.args[0], ast.Constant):
                    return 1
                return None
            if tail == "einsum":
                if expr.args and isinstance(expr.args[0], ast.Constant) and isinstance(
                    expr.args[0].value, str
                ):
                    parsed = _split_terms(expr.args[0].value)
                    if parsed is not None and parsed[1] is not None:
                        return _term_rank(parsed[1])
                return None
            if tail in _RANK_PRESERVING:
                base = (
                    expr.func.value
                    if isinstance(expr.func, ast.Attribute)
                    else expr.args[0]
                    if expr.args
                    else None
                )
                if isinstance(base, ast.Name):
                    return self.ranks.get(base.id)
            return None
        if isinstance(expr, ast.Name):
            return self.ranks.get(expr.id)
        return None


@register
class Shape01EinsumSubscripts(Rule):
    id = "SHAPE01"
    title = "invalid einsum subscripts for the given operands"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scopes: list[ast.AST] = [ctx.tree]
        scopes.extend(
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            tracker = _RankTracker()
            for stmt in scope.body:  # type: ignore[attr-defined]
                tracker.visit(stmt)
            for node in self._scope_calls(scope):
                yield from self._check_call(ctx, node, tracker)

    @staticmethod
    def _scope_calls(scope: ast.AST) -> Iterator[ast.Call]:
        """Call nodes belonging directly to ``scope`` (nested defs excluded,
        so each call is audited exactly once, with its own scope's ranks)."""

        def visit(node: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from visit(child)

        return visit(scope)

    def _check_call(
        self,
        ctx: FileContext,
        call: ast.Call,
        tracker: _RankTracker,
    ) -> Iterator[Finding]:
        target = ctx.resolve(call.func)
        if target is None or not target.endswith("einsum"):
            return
        if not call.args:
            return
        sub = call.args[0]
        if not (isinstance(sub, ast.Constant) and isinstance(sub.value, str)):
            return  # sublist form or computed subscripts: out of scope
        operands = call.args[1:]
        if any(isinstance(op, ast.Starred) for op in operands):
            return
        parsed = _split_terms(sub.value)
        if parsed is None:
            yield self.finding(
                ctx, sub, f"einsum subscripts {sub.value!r} contain more "
                f"than one `->`"
            )
            return
        terms, out = parsed
        bad = [t for t in terms if not _term_ok(t)]
        if out is not None and not _term_ok(out):
            bad.append(out)
        if bad:
            yield self.finding(
                ctx,
                sub,
                f"einsum subscripts {sub.value!r} contain invalid "
                f"term(s) {bad}",
            )
            return
        if len(terms) != len(operands):
            yield self.finding(
                ctx,
                sub,
                f"einsum subscripts {sub.value!r} name {len(terms)} "
                f"operand(s) but the call passes {len(operands)}",
            )
            return
        if out is not None:
            in_labels = {
                ch for t in terms for ch in t.replace("...", "")
            }
            out_plain = out.replace("...", "")
            missing = [ch for ch in out_plain if ch not in in_labels]
            if missing:
                yield self.finding(
                    ctx,
                    sub,
                    f"einsum output label(s) {missing} in {sub.value!r} "
                    f"appear in no input term",
                )
            dupes = sorted(
                {ch for ch in out_plain if out_plain.count(ch) > 1}
            )
            if dupes:
                yield self.finding(
                    ctx,
                    sub,
                    f"einsum output in {sub.value!r} repeats label(s) "
                    f"{dupes}",
                )
        for term, op in zip(terms, operands):
            want = _term_rank(term)
            if want is None or not isinstance(op, ast.Name):
                continue
            known = tracker.ranks.get(op.id)
            if known is not None and known != want:
                yield self.finding(
                    ctx,
                    op,
                    f"einsum term {term!r} expects a rank-{want} operand "
                    f"but `{op.id}` is rank {known} here",
                )
