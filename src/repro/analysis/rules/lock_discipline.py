"""LOCK01 — lock discipline: guarded attributes stay guarded.

Seeded from a real race in :mod:`repro.runtime.executor`: the dispatch
telemetry dict was bumped with ``self._dispatch_counts[key] = ... + 1``
on the submit path *without* the counter lock, while ``dispatch_stats``
read it under ``self._counts_lock`` — lost updates under the thread
backend. The fixed code routes every touch through the lock; this rule
keeps it (and every future shared attribute) that way.

The discipline is inferred, not declared. For each class, every method
body is run through the held-lock dataflow: ``with self._lock:`` bodies
and explicit ``.acquire()``/``.release()`` pairs produce a per-
instruction set of held lock tokens (lock-kinded attributes come from
the :mod:`repro.analysis.symbols` table — ``self._lock =
threading.Lock()`` in ``__init__`` makes ``self._lock`` a lock in every
method). An attribute written at least once with a lock held elects
that lock as its guard — the intersection across its locked writes —
and then **every** read and write of the attribute, in every method,
must hold that guard. The CFG makes this exception-correct for free: a
``with`` body's unwind edge passes through the synthesized lock
release, so code after the ``with`` is correctly unguarded even on
paths a lexical scan cannot see.

Exemptions, to keep reports about real races:

- ``__init__``/``__new__``/``__del__`` run before publication / after
  the last reference dies; construction-time writes need no lock.
- Attributes that are themselves locks (or other synchronizers) are the
  guard, not the guarded.
- Attributes written under *different* locks in different places get no
  inferred guard (the intent is ambiguous; a human should annotate).

The join is a union (may-held), so a conditionally-acquired lock counts
as held — the rule under-reports rather than crying wolf. Deliberate
unguarded access (a stats snapshot that tolerates tearing, a
double-checked fast path) takes an annotated ``# repro: noqa[LOCK01]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.cfg import WithEnter, WithExit, build_cfg, instr_exprs
from repro.analysis.dataflow import Analysis, Env, solve
from repro.analysis.framework import FileContext, Finding, Rule, register
from repro.analysis.symbols import KIND_LOCK, SymbolTable, methods_of

_EXEMPT_METHODS = frozenset({"__init__", "__new__", "__del__", "__repr__"})

#: Methods on a container attribute that mutate it in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "add",
        "insert",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
    }
)

_HELD = "L"  # Env key: the set of lock tokens currently held


def _self_attr(expr: ast.expr) -> str | None:
    """``self.X`` -> ``"X"``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


class _HeldLocks(Analysis):
    """Forward may-analysis of which lock tokens are held.

    ``entry_held`` seeds the function-entry state: private helpers that
    every intra-class call site invokes with a lock held analyze as if
    they held it too (the caller's critical section extends into them).
    """

    def __init__(
        self,
        table: SymbolTable,
        class_name: str | None,
        entry_held: frozenset = frozenset(),
    ) -> None:
        self.table = table
        self.class_name = class_name
        self.entry_held = entry_held

    def initial(self, cfg) -> Env:
        if self.entry_held:
            return Env({_HELD: self.entry_held})
        return Env()

    def _lock_token(self, expr: ast.expr) -> str | None:
        return self.table.lock_name(expr, class_name=self.class_name)

    def transfer(self, instr, state: Env) -> Env:
        if isinstance(instr, WithEnter):
            token = self._lock_token(instr.item.context_expr)
            if token is not None:
                return state.add(_HELD, token)
            return state
        if isinstance(instr, WithExit):
            token = self._lock_token(instr.item.context_expr)
            if token is not None:
                return state.set(_HELD, state.get(_HELD) - {token})
            return state
        if isinstance(instr, ast.Expr) and isinstance(instr.value, ast.Call):
            call = instr.value
            if isinstance(call.func, ast.Attribute) and call.func.attr in (
                "acquire",
                "release",
            ):
                token = self._lock_token(call.func.value)
                if token is not None:
                    if call.func.attr == "acquire":
                        return state.add(_HELD, token)
                    return state.set(_HELD, state.get(_HELD) - {token})
        return state

    def exception_state(self, instr, pre: Env, post: Env) -> Env:
        # A raising ``release()`` has still dropped the lock; everything
        # else unwinds with its pre-state (the ``with`` cleanup chain in
        # the CFG models the release on exception paths).
        if (
            isinstance(instr, ast.Expr)
            and isinstance(instr.value, ast.Call)
            and isinstance(instr.value.func, ast.Attribute)
            and instr.value.func.attr == "release"
        ):
            return post
        return pre


@dataclass
class _Access:
    """One read or write of ``self.<attr>`` with the locks held there."""

    attr: str
    node: ast.AST
    method: str
    is_write: bool
    held: frozenset


@register
class Lock01LockDiscipline(Rule):
    id = "LOCK01"
    title = "attribute guarded by a lock accessed without it"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        table = SymbolTable.build(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, table, node)

    def _check_class(
        self, ctx: FileContext, table: SymbolTable, cls_node: ast.ClassDef
    ) -> Iterator[Finding]:
        lock_attrs = {
            attr
            for attr, kind in table.class_attrs.get(cls_node.name, {}).items()
            if kind == KIND_LOCK
        }
        methods = list(methods_of(cls_node))

        # Pass 1: solve every method from an empty entry state and
        # record the held set at each intra-class ``self._helper(...)``
        # call site. A private helper whose every call site holds a lock
        # inherits it as entry state in pass 2 — critical sections
        # commonly hold the lock and delegate to ``_locked``-style
        # helpers, and without this the helper's accesses all look bare.
        solutions: dict[str, tuple] = {}
        callsite_held: dict[str, frozenset] = {}
        for method in methods:
            analysis = _HeldLocks(table, cls_node.name)
            cfg = build_cfg(method)
            solution = solve(cfg, analysis)
            solutions[method.name] = (cfg, solution)
            if method.name in _EXEMPT_METHODS:
                # Construction/teardown runs single-threaded; a helper
                # called lockless from ``__init__`` is still
                # lock-guarded everywhere it matters.
                continue
            for block in cfg.blocks:
                if block.id not in solution.block_in:
                    continue  # unreachable
                for instr, pre, _post in solution.replay(block):
                    held = pre.get(_HELD)
                    for expr in instr_exprs(instr):
                        for sub in ast.walk(expr):
                            if (
                                isinstance(sub, ast.Call)
                                and _self_attr(sub.func) is not None
                            ):
                                callee = sub.func.attr
                                prev = callsite_held.get(callee)
                                callsite_held[callee] = (
                                    held if prev is None else prev & held
                                )

        accesses: list[_Access] = []
        for method in methods:
            seed = frozenset()
            if method.name.startswith("_") and not method.name.startswith("__"):
                seed = callsite_held.get(method.name, frozenset())
            if seed:
                analysis = _HeldLocks(table, cls_node.name, entry_held=seed)
                cfg = build_cfg(method)
                solution = solve(cfg, analysis)
            else:
                cfg, solution = solutions[method.name]
            for block in cfg.blocks:
                if block.id not in solution.block_in:
                    continue  # unreachable
                for instr, pre, _post in solution.replay(block):
                    held = pre.get(_HELD)
                    for access in self._accesses_in(instr, method.name, held):
                        accesses.append(access)

        # Elect guards: intersection of held sets over locked writes,
        # outside the construction-exempt methods.
        guards: dict[str, frozenset | None] = {}
        for acc in accesses:
            if not acc.is_write or acc.method in _EXEMPT_METHODS:
                continue
            if acc.attr in lock_attrs or not acc.held:
                continue
            prev = guards.get(acc.attr)
            guards[acc.attr] = acc.held if prev is None else (prev & acc.held)

        seen: set[tuple] = set()
        for acc in accesses:
            guard = guards.get(acc.attr)
            if not guard:  # unguarded attr, or ambiguous (empty intersection)
                continue
            if acc.method in _EXEMPT_METHODS:
                continue
            if guard <= acc.held:
                continue
            key = (acc.attr, acc.node.lineno, acc.node.col_offset, acc.is_write)
            if key in seen:
                continue
            seen.add(key)
            lock_desc = " and ".join(f"`{g}`" for g in sorted(guard))
            verb = "written" if acc.is_write else "read"
            yield self.finding(
                ctx,
                acc.node,
                f"`self.{acc.attr}` is {verb} in `{acc.method}` without "
                f"holding {lock_desc}, but other writes hold that lock — "
                f"racy access to a guarded attribute",
            )

    # -- access extraction -------------------------------------------------

    def _accesses_in(
        self, instr, method: str, held: frozenset
    ) -> Iterator[_Access]:
        if isinstance(instr, (WithEnter, WithExit)):
            return
        write_nodes: set[int] = set()

        def _emit_write(expr: ast.expr, anchor: ast.AST) -> Iterator[_Access]:
            attr = _self_attr(expr)
            if attr is not None:
                write_nodes.add(id(expr))
                yield _Access(attr, anchor, method, True, held)

        if isinstance(instr, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                instr.targets
                if isinstance(instr, ast.Assign)
                else [instr.target]
            )
            for tgt in targets:
                base = tgt
                # ``self._counts[key] = v`` mutates ``self._counts``.
                while isinstance(base, ast.Subscript):
                    base = base.value
                yield from _emit_write(base, tgt)
        elif isinstance(instr, ast.Expr) and isinstance(instr.value, ast.Call):
            call = instr.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATORS
            ):
                yield from _emit_write(call.func.value, call)
        elif isinstance(instr, ast.Delete):
            for tgt in instr.targets:
                base = tgt
                while isinstance(base, ast.Subscript):
                    base = base.value
                yield from _emit_write(base, tgt)

        for expr in instr_exprs(instr):
            parents: dict[int, ast.AST] = {}
            for node in ast.walk(expr):
                for child in ast.iter_child_nodes(node):
                    parents[id(child)] = node
            for sub in ast.walk(expr):
                if id(sub) in write_nodes:
                    continue
                attr = _self_attr(sub)
                if attr is None:
                    continue
                if isinstance(sub.ctx, (ast.Store, ast.Del)):
                    yield _Access(attr, sub, method, True, held)
                elif isinstance(sub.ctx, ast.Load) and self._is_elemental_read(
                    sub, parents.get(id(sub))
                ):
                    yield _Access(attr, sub, method, False, held)

    @staticmethod
    def _is_elemental_read(node: ast.AST, parent: ast.AST | None) -> bool:
        """Whether a ``self.X`` load actually observes guarded state.

        Indexing, iterating, calling through, or branching on the value
        races with a concurrent mutation; passing the bare *reference*
        along (an argument, a tuple element, a return value) does not —
        the attribute binding itself is not what the lock guards.
        """
        if parent is None:
            # The whole header expression: an ``if self._closed:`` test
            # or a ``for w in self._workers:`` iterable.
            return True
        if isinstance(parent, (ast.Subscript, ast.Attribute)):
            return getattr(parent, "value", None) is node
        return isinstance(
            parent, (ast.Compare, ast.BinOp, ast.UnaryOp, ast.BoolOp)
        )
