"""DET01 — no unseeded randomness or wall-clock values in hot paths.

The repository's reproducibility contract (parallel == serial, bit for
bit; simulated KernelStats identical across backends) dies the moment a
kernel, engine, or runtime module consults an unseeded RNG or the wall
clock to make a decision. Seeded generators (``np.random.default_rng(0)``,
``Generator`` parameters threaded by the caller) are fine — the rule only
rejects sources of *irreproducible* values:

- the legacy NumPy global RNG (``np.random.rand``/``seed``/... — global,
  cross-module mutable state);
- ``np.random.default_rng()`` with no argument or an explicit ``None``
  (OS-entropy seeded);
- the stdlib ``random`` module's global functions and unseeded
  ``random.Random()``;
- wall-clock reads (``time.time``/``perf_counter``/``monotonic``/...,
  ``datetime.now``/``utcnow``/``today``) and ``uuid.uuid1/4``.

Scope: only *hot-path* modules — files with a ``gpusim``, ``jacobi``,
``runtime``, ``core``, ``kernels``, or ``engine`` path component. The
benchmark harness and dataset generators may legitimately read the clock
or accept entropy; the kernels must not.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import FileContext, Finding, Rule, register

#: Path components that mark a module as reproducibility-critical.
HOT_PATH_PARTS = frozenset(
    {"gpusim", "jacobi", "runtime", "core", "kernels", "engine", "serve"}
)

#: Dotted call targets that are always nondeterministic.
_FORBIDDEN_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbelow",
    }
)

#: ``random``-module globals that draw from (or reseed) the shared state.
_RANDOM_GLOBALS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)


def _is_unseeded_call(node: ast.Call) -> bool:
    """True when the call passes no seed (no args, or an explicit None)."""
    seedlike = [a for a in node.args if not isinstance(a, ast.Starred)]
    for kw in node.keywords:
        if kw.arg in (None, "seed"):
            seedlike.append(kw.value)
    if not seedlike:
        return True
    first = seedlike[0]
    return isinstance(first, ast.Constant) and first.value is None


@register
class Det01UnseededRandomness(Rule):
    id = "DET01"
    title = "unseeded randomness / wall-clock value in a hot path"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_directory(*HOT_PATH_PARTS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target is None:
                continue
            if target in _FORBIDDEN_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"nondeterministic value source `{target}` in a "
                    f"hot-path module; thread a seeded value in from the "
                    f"caller instead",
                )
            elif target.startswith("numpy.random."):
                tail = target.removeprefix("numpy.random.")
                if tail == "default_rng":
                    if _is_unseeded_call(node):
                        yield self.finding(
                            ctx,
                            node,
                            "`np.random.default_rng()` without a seed is "
                            "OS-entropy seeded; pass an explicit seed or "
                            "accept a Generator parameter",
                        )
                elif tail not in ("Generator", "SeedSequence", "BitGenerator",
                                  "PCG64", "Philox", "SFC64", "MT19937"):
                    yield self.finding(
                        ctx,
                        node,
                        f"legacy global-state RNG `np.random.{tail}`; use a "
                        f"seeded `np.random.default_rng(...)` Generator",
                    )
            elif target == "random.Random":
                if _is_unseeded_call(node):
                    yield self.finding(
                        ctx,
                        node,
                        "`random.Random()` without a seed; pass one",
                    )
            elif (
                target.startswith("random.")
                and target.removeprefix("random.") in _RANDOM_GLOBALS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib `{target}` draws from the process-global RNG; "
                    f"use a locally seeded generator",
                )
