"""SHM01 — shared-memory ownership protocol violations.

:mod:`repro.runtime.shm` documents a strict protocol: every segment
acquired with ``export_array``/``import_array`` (or a raw
``SharedMemory(...)`` constructor) must reach exactly one ``release`` on
*all* paths, including exceptional ones, unless ownership escapes the
function (returned to the caller, or exported with
``transfer_ownership=True``, which closes the local mapping itself).

The rule performs a per-function, lexically scoped audit:

- **missing release** — an acquired segment never passed to ``release``
  (or ``.close()``/``.unlink()``), never appended to a container that is
  drained through ``release`` in a loop, and never returned;
- **not exception-safe** — every release of the segment sits outside any
  ``finally`` block (an exception between acquire and release leaks the
  segment, and an *unlinked* leak survives the process);
- **use-after-release** — a load of the array view bound alongside the
  segment (``seg, view = import_array(ref)``) in a statement after the
  ``release(seg)`` statement of the same suite (the mapping behind the
  view is gone; copy before releasing).

The audit is intentionally lexical — it does not chase aliases across
function boundaries. Suppress deliberate protocol departures with an
annotated ``# repro: noqa[SHM01]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.analysis.framework import FileContext, Finding, Rule, register

_ACQUIRE_FUNCS = ("export_array", "import_array")


def _call_tail(node: ast.expr) -> str | None:
    """Last identifier of a Name/Attribute callee (``shm.release`` -> ``release``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _has_kw_true(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name:
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


@dataclass
class _Acquire:
    node: ast.AST
    seg_name: str
    view_name: str | None


@dataclass
class _Scope:
    """Per-function audit state."""

    acquires: list[_Acquire] = field(default_factory=list)
    #: segment name -> was any release inside a ``finally``?
    releases: dict[str, bool] = field(default_factory=dict)
    #: container name -> segment names appended into it
    containers: dict[str, list[str]] = field(default_factory=dict)
    #: containers drained via ``for s in c: release(s)`` -> inside-finally?
    drained: dict[str, bool] = field(default_factory=dict)
    returned: set[str] = field(default_factory=set)


@register
class Shm01SharedMemoryOwnership(Rule):
    id = "SHM01"
    title = "shared-memory segment ownership violation"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    # -- per-function audit ---------------------------------------------

    def _check_function(
        self, ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        scope = _Scope()
        self._walk_suite(fn.body, scope, in_finally=False, loop_var=None)
        for acq in scope.acquires:
            name = acq.seg_name
            if name in scope.returned:
                continue
            released = name in scope.releases
            drained_via = [
                scope.drained[c]
                for c, members in scope.containers.items()
                if name in members and c in scope.drained
            ]
            if not released and not drained_via:
                yield self.finding(
                    ctx,
                    acq.node,
                    f"segment `{name}` is acquired but never released "
                    f"(no `release({name})`, container drain, or "
                    f"ownership escape)",
                )
                continue
            safe = scope.releases.get(name, False) or any(drained_via)
            if not safe:
                yield self.finding(
                    ctx,
                    acq.node,
                    f"segment `{name}` is released outside any `finally` "
                    f"block; an exception between acquire and release "
                    f"leaks the mapping",
                )
        yield from self._check_use_after_release(ctx, fn, scope)

    # -- statement walker -------------------------------------------------

    def _walk_suite(
        self,
        suite: Sequence[ast.stmt],
        scope: _Scope,
        *,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        for stmt in suite:
            self._walk_stmt(stmt, scope, in_finally=in_finally, loop_var=loop_var)

    def _walk_stmt(
        self,
        stmt: ast.stmt,
        scope: _Scope,
        *,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes audit separately
        if isinstance(stmt, ast.Assign):
            self._record_assign(stmt, scope)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for sub in ast.walk(stmt.value):
                    if isinstance(sub, ast.Name):
                        scope.returned.add(sub.id)
            return
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call):
                self._record_call(stmt.value, scope, in_finally, loop_var)
            return
        if isinstance(stmt, ast.Try):
            for suite in (stmt.body, stmt.orelse):
                self._walk_suite(
                    suite, scope, in_finally=in_finally, loop_var=loop_var
                )
            for handler in stmt.handlers:
                self._walk_suite(
                    handler.body, scope, in_finally=in_finally, loop_var=loop_var
                )
            self._walk_suite(
                stmt.finalbody, scope, in_finally=True, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            inner: tuple[str, str] | None = None
            if isinstance(stmt.target, ast.Name) and isinstance(stmt.iter, ast.Name):
                inner = (stmt.target.id, stmt.iter.id)
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=inner)
            self._walk_suite(
                stmt.orelse, scope, in_finally=in_finally, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=loop_var)
            self._walk_suite(
                stmt.orelse, scope, in_finally=in_finally, loop_var=loop_var
            )
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._walk_suite(stmt.body, scope, in_finally=in_finally, loop_var=loop_var)
            return

    # -- site recording --------------------------------------------------

    def _record_assign(self, node: ast.Assign, scope: _Scope) -> None:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        tail = _call_tail(call.func)
        if tail in _ACQUIRE_FUNCS:
            if tail == "export_array" and _has_kw_true(call, "transfer_ownership"):
                # The helper closes its own mapping; the segment slot of
                # the returned tuple is documented to be None.
                return
            seg_name = view_name = None
            target = node.targets[0]
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                first, second = target.elts
                if isinstance(first, ast.Name) and first.id != "_":
                    seg_name = first.id
                if isinstance(second, ast.Name) and second.id != "_":
                    view_name = second.id
            elif isinstance(target, ast.Name):
                seg_name = target.id
            if seg_name is None:
                return
            scope.acquires.append(
                _Acquire(
                    node=node,
                    seg_name=seg_name,
                    view_name=view_name if tail == "import_array" else None,
                )
            )
        elif tail == "SharedMemory":
            target = node.targets[0]
            if isinstance(target, ast.Name):
                scope.acquires.append(
                    _Acquire(node=node, seg_name=target.id, view_name=None)
                )

    def _record_call(
        self,
        call: ast.Call,
        scope: _Scope,
        in_finally: bool,
        loop_var: tuple[str, str] | None,
    ) -> None:
        tail = _call_tail(call.func)
        if tail == "release" and call.args:
            arg = call.args[0]
            if isinstance(arg, ast.Name):
                name = arg.id
                if loop_var is not None and name == loop_var[0]:
                    scope.drained[loop_var[1]] = (
                        scope.drained.get(loop_var[1], False) or in_finally
                    )
                else:
                    scope.releases[name] = (
                        scope.releases.get(name, False) or in_finally
                    )
        elif tail in ("close", "unlink") and isinstance(call.func, ast.Attribute):
            owner = call.func.value
            if isinstance(owner, ast.Name):
                scope.releases[owner.id] = (
                    scope.releases.get(owner.id, False) or in_finally
                )
        elif tail == "append" and isinstance(call.func, ast.Attribute):
            owner = call.func.value
            if isinstance(owner, ast.Name) and call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Name):
                    scope.containers.setdefault(owner.id, []).append(arg.id)

    # -- use-after-release ----------------------------------------------

    def _check_use_after_release(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: _Scope,
    ) -> Iterator[Finding]:
        views = {
            a.seg_name: a.view_name for a in scope.acquires if a.view_name
        }
        if not views:
            return
        for suite in self._suites(fn):
            for pos, stmt in enumerate(suite):
                for seg in self._released_segs(stmt):
                    view = views.get(seg)
                    if view is None:
                        continue
                    use = self._first_use(suite[pos + 1:], view)
                    if use is not None:
                        yield self.finding(
                            ctx,
                            use,
                            f"view `{view}` used after its segment `{seg}` "
                            f"was released; copy the data out before "
                            f"releasing",
                        )

    def _suites(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[list[ast.stmt]]:
        """Every straight-line statement suite of ``fn``, nested scopes excluded."""
        suites: list[list[ast.stmt]] = []

        def visit(node: ast.AST) -> None:
            for attr in ("body", "orelse", "finalbody"):
                suite = getattr(node, attr, None)
                if (
                    isinstance(suite, list)
                    and suite
                    and isinstance(suite[0], ast.stmt)
                ):
                    suites.append(suite)
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    suites.append(handler.body)
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                visit(child)

        visit(fn)
        return suites

    @staticmethod
    def _released_segs(stmt: ast.stmt) -> list[str]:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return []
        segs = []
        call = stmt.value
        tail = _call_tail(call.func)
        if tail == "release" and call.args and isinstance(call.args[0], ast.Name):
            segs.append(call.args[0].id)
        elif (
            tail == "close"
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
        ):
            segs.append(call.func.value.id)
        return segs

    @staticmethod
    def _first_use(stmts: Sequence[ast.stmt], view: str) -> ast.AST | None:
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
                if isinstance(sub, ast.Name) and sub.id == view:
                    return sub
        return None
