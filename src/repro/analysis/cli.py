"""``repro-lint``: the analyzer's command line.

Usage::

    repro-lint src/ tests/                 # lint trees (fixtures excluded)
    repro-lint --format json src/ > out.json
    repro-lint --format sarif src/ > lint.sarif   # PR annotations
    repro-lint --select SHM03,DET01 src/repro/runtime
    repro-lint --baseline lint-baseline.json src/ tests/
    repro-lint --baseline lint-baseline.json --update-baseline src/ tests/
    repro-lint --cache-dir .lint-cache src/ tests/
    repro-lint --list-rules
    python -m repro.analysis src/ tests/   # identical entry point

Exit codes: ``0`` clean (or every finding baselined), ``1`` new findings
reported, ``2`` usage error or a file that failed to parse (a ``PARSE``
finding).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cache import lint_paths_cached
from repro.analysis.framework import (
    DEFAULT_EXCLUDES,
    all_rules,
    get_rule,
    lint_paths,
    rule_aliases,
)
from repro.analysis.sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "project-specific static analysis for the W-cycle SVD "
            "reproduction (determinism, flow-sensitive shared-memory "
            "lifecycles, lock discipline, fork safety, fork-pickle "
            "safety, einsum shapes, exception hygiene)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directory trees to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help=(
            "comma-separated rule ids to run (default: all registered; "
            "retired aliases like SHM01 resolve to their successor)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "subtract the findings recorded in FILE from the run; "
            "missing file means an empty baseline"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite --baseline FILE from this run's findings and exit 0"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "content-hash incremental cache: unchanged files replay "
            "their stored findings instead of re-analyzing"
        ),
    )
    parser.add_argument(
        "--exclude",
        metavar="NAMES",
        default=",".join(DEFAULT_EXCLUDES),
        help=(
            "comma-separated directory names skipped during tree walks "
            f"(default: {','.join(DEFAULT_EXCLUDES)}); explicitly named "
            "files are always linted"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules (and aliases) and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        for old, canonical in sorted(rule_aliases().items()):
            print(f"{old}  (alias of {canonical})")
        return 0

    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        try:
            for rule_id in select:
                get_rule(rule_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    excludes = tuple(
        name.strip() for name in args.exclude.split(",") if name.strip()
    )
    if args.cache_dir:
        findings, cache = lint_paths_cached(
            args.paths, args.cache_dir, select=select, excludes=excludes
        )
        print(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es)",
            file=sys.stderr,
        )
    else:
        findings = lint_paths(args.paths, select=select, excludes=excludes)

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"baseline: wrote {len(findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baselined_count = 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, baselined_count = apply_baseline(findings, known)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        rules = (
            [get_rule(r) for r in select] if select is not None else None
        )
        print(render_sarif(findings, rules=rules))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    if baselined_count:
        print(
            f"baseline: {baselined_count} finding(s) suppressed",
            file=sys.stderr,
        )

    if any(f.rule == "PARSE" for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
