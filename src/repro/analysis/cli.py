"""``repro-lint``: the analyzer's command line.

Usage::

    repro-lint src/ tests/                 # lint trees (fixtures excluded)
    repro-lint --format json src/ > out.json
    repro-lint --select SHM01,DET01 src/repro/runtime
    repro-lint --list-rules
    python -m repro.analysis src/ tests/   # identical entry point

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error or a
file that failed to parse (a ``PARSE`` finding).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.framework import (
    DEFAULT_EXCLUDES,
    all_rules,
    get_rule,
    lint_paths,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "project-specific static analysis for the W-cycle SVD "
            "reproduction (determinism, shared-memory ownership, "
            "fork-pickle safety, einsum shapes, exception hygiene)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directory trees to lint (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--exclude",
        metavar="NAMES",
        default=",".join(DEFAULT_EXCLUDES),
        help=(
            "comma-separated directory names skipped during tree walks "
            f"(default: {','.join(DEFAULT_EXCLUDES)}); explicitly named "
            "files are always linted"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.title}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
        try:
            for rule_id in select:
                get_rule(rule_id)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    excludes = tuple(
        name.strip() for name in args.exclude.split(",") if name.strip()
    )
    findings = lint_paths(args.paths, select=select, excludes=excludes)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "count": len(findings),
                },
                indent=2,
            )
        )
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)

    if any(f.rule == "PARSE" for f in findings):
        return 2
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
