"""Forward dataflow over :mod:`repro.analysis.cfg` graphs.

A flow-sensitive rule is three decisions: what a variable's abstract
state is (the lattice), how one instruction changes it (the transfer
function), and how states merge where paths join (the join). This
module supplies the rest — worklist fixpoint iteration over a CFG,
per-edge propagation that keeps normal and exceptional outcomes
distinct, and a replay helper that walks a solved graph instruction by
instruction so rules can emit findings with exact pre/post states in
hand.

The provided :class:`Env` lattice is the one every shipped rule uses: a
persistent map from variable/fact keys to *sets* of abstract tokens,
joined pointwise by union. Union-joins make the analysis a may-analysis
("on some path this lease is still held"), which is the right polarity
for the leak/race/fork rules: a fact that holds on any path is a bug on
that path.

Exception edges get their own out-state. By default an instruction's
exceptional out-state is its *pre*-state — an ``x = acquire()`` that
raises never bound ``x``, so the resource does not leak along that
edge. Rules override :meth:`Analysis.exception_state` for instructions
whose effect should survive the unwind (a ``release(x)`` that raises
has still, for our purposes, retired the lease) and
:meth:`Analysis.can_raise` to exempt instructions that cannot throw at
all (``pass``, constant binds), which keeps exception-path reports from
drowning in impossible edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.analysis.cfg import CFG, Block, Instr, WithEnter, WithExit

__all__ = ["Env", "Analysis", "Solution", "solve"]


class Env(Mapping):
    """Immutable map ``key -> frozenset[token]``; pointwise-union join.

    Keys are strings chosen by the rule (variable names, resource ids,
    ``"self._lock"`` attribute paths); tokens are strings too. Absent
    keys mean bottom (no information). Instances hash-compare by value,
    which is what lets the fixpoint detect convergence.
    """

    __slots__ = ("_d", "_hash")

    def __init__(self, d: dict | None = None):
        self._d: dict[str, frozenset] = dict(d) if d else {}
        self._hash: int | None = None

    # -- Mapping protocol -------------------------------------------------

    def __getitem__(self, key: str) -> frozenset:
        return self._d[key]

    def __iter__(self):
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def get(self, key: str, default: frozenset = frozenset()) -> frozenset:
        return self._d.get(key, default)

    # -- functional updates ----------------------------------------------

    def set(self, key: str, tokens: frozenset) -> "Env":
        """Rebind ``key`` (strong update); empty tokens delete the key."""
        d = dict(self._d)
        if tokens:
            d[key] = frozenset(tokens)
        else:
            d.pop(key, None)
        return Env(d)

    def add(self, key: str, *tokens: str) -> "Env":
        """Weak update: union ``tokens`` into the key's set."""
        return self.set(key, self.get(key) | frozenset(tokens))

    def discard(self, key: str) -> "Env":
        if key not in self._d:
            return self
        d = dict(self._d)
        del d[key]
        return Env(d)

    def map_values(self, fn: Callable[[str, frozenset], frozenset]) -> "Env":
        """Rewrite every binding through ``fn`` (empty result drops it)."""
        d = {}
        for k, v in self._d.items():
            nv = fn(k, v)
            if nv:
                d[k] = frozenset(nv)
        return Env(d)

    def join(self, other: "Env") -> "Env":
        if not other._d:
            return self
        if not self._d:
            return other
        d = dict(self._d)
        for k, v in other._d.items():
            prev = d.get(k)
            d[k] = v if prev is None else (prev | v)
        return Env(d)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Env) and self._d == other._d

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset((k, v) for k, v in self._d.items()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{k}={{{','.join(sorted(v))}}}" for k, v in sorted(self._d.items())
        )
        return f"Env({inner})"


class Analysis:
    """One forward dataflow problem: lattice + transfer, rule-defined."""

    def initial(self, cfg: CFG) -> Env:
        """State at function entry."""
        return Env()

    def transfer(self, instr: Instr, state: Env) -> Env:
        """Normal out-state of one instruction."""
        return state

    def can_raise(self, instr: Instr) -> bool:
        """Whether ``instr`` contributes to the block's exception edge.

        The default is deliberately coarse — anything that evaluates an
        expression may raise. ``pass``/``global``/``nonlocal``/
        ``break``/``continue`` and :class:`WithEnter`/:class:`WithExit`
        markers are exempt (the enter/exit *calls* are modelled by the
        rule's transfer, and a raising ``__enter__`` has acquired
        nothing worth tracking).
        """
        if isinstance(instr, (WithEnter, WithExit)):
            return False
        return not isinstance(
            instr,
            (
                ast.Pass,
                ast.Global,
                ast.Nonlocal,
                ast.Break,
                ast.Continue,
                # The handler's ``as name`` binding pseudo-instruction.
                ast.ExceptHandler,
            ),
        )

    def exception_state(self, instr: Instr, pre: Env, post: Env) -> Env:
        """State carried along the exception edge when ``instr`` raises.

        Defaults to the pre-state: a raising instruction's binding never
        completed. Override for instructions whose effect must survive
        the unwind (releases, counter bumps).
        """
        return pre


@dataclass
class Solution:
    """Fixpoint result: per-block in-states over a solved :class:`CFG`."""

    cfg: CFG
    analysis: Analysis
    block_in: dict  # block id -> Env

    def before(self, block: Block) -> Env:
        return self.block_in.get(block.id, Env())

    def replay(self, block: Block) -> Iterator[tuple[Instr, Env, Env]]:
        """Walk a block's instructions yielding ``(instr, pre, post)``.

        Rules do their finding-emission on this second pass, after the
        fixpoint has settled — the states seen here are final.
        """
        state = self.before(block)
        for instr in block.instrs:
            post = self.analysis.transfer(instr, state)
            yield instr, state, post
            state = post

    def exit_state(self) -> Env:
        """Joined state over every normal function exit."""
        return self.before(self.cfg.exit)

    def raise_state(self) -> Env:
        """Joined state over every uncaught-exception exit."""
        return self.before(self.cfg.raise_exit)


def _block_outs(
    analysis: Analysis, block: Block, state: Env
) -> tuple[Env, Env, bool]:
    """Run a block's instructions: (normal out, exceptional out, raises?)."""
    exc_out = Env()
    raises = False
    for instr in block.instrs:
        post = analysis.transfer(instr, state)
        if block.exc is not None and analysis.can_raise(instr):
            raises = True
            exc_out = exc_out.join(analysis.exception_state(instr, state, post))
        state = post
    return state, exc_out, raises


def solve(cfg: CFG, analysis: Analysis, *, max_iterations: int = 10000) -> Solution:
    """Worklist fixpoint: propagate states until nothing changes.

    Termination holds because ``Env`` join is monotone over finite token
    sets; ``max_iterations`` is a backstop against a rule with an
    unbounded token domain (it raises rather than spinning).
    """
    block_in: dict[int, Env] = {cfg.entry.id: analysis.initial(cfg)}
    worklist: list[Block] = [cfg.entry]
    seen_out: dict[int, tuple[Env, Env]] = {}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge in {max_iterations} steps "
                f"(function {cfg.fn.name!r}) — unbounded abstract domain?"
            )
        block = worklist.pop()
        in_state = block_in.get(block.id, Env())
        outs = _block_outs(analysis, block, in_state)
        if seen_out.get(block.id) == outs:
            continue
        seen_out[block.id] = outs
        normal_out, exc_out, raises = outs
        targets = [(succ, normal_out) for succ in block.succ]
        if block.exc is not None and raises:
            targets.append((block.exc, exc_out))
        for succ, out in targets:
            prev = block_in.get(succ.id)
            joined = out if prev is None else prev.join(out)
            if prev is None or joined != prev:
                block_in[succ.id] = joined
                if succ not in worklist:
                    worklist.append(succ)
    return Solution(cfg=cfg, analysis=analysis, block_in=block_in)
