"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or kernel was configured with invalid parameters."""


class ShapeError(ReproError, ValueError):
    """An input array has an unsupported shape, dtype, or layout."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its sweep budget before converging.

    Attributes
    ----------
    sweeps:
        Number of sweeps performed before giving up.
    residual:
        The convergence metric value at the point of failure.
    """

    def __init__(self, message: str, *, sweeps: int, residual: float) -> None:
        super().__init__(message)
        self.sweeps = int(sweeps)
        self.residual = float(residual)


class ResourceError(ReproError, RuntimeError):
    """A simulated kernel requested more resources than the device offers.

    Raised, for example, when a kernel is asked to keep a working set in
    shared memory that exceeds the per-block shared-memory capacity.
    """


class PlanError(ReproError, RuntimeError):
    """The auto-tuning engine could not produce a valid execution plan."""
