"""Exception hierarchy for :mod:`repro`.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing configuration mistakes from numerical failures.

The fault-tolerant runtime (:mod:`repro.runtime.resilient`) splits the
taxonomy along one axis that matters for recovery:

- **infrastructure faults** (:class:`WorkerCrashError`,
  :class:`DeadlineExceeded`, :class:`SegmentLostError`,
  :class:`NonFiniteError`, :class:`ReplicaDeadError`) are
  transient-by-assumption and retried with backoff, possibly on a
  degraded backend — or, at the cluster layer, re-routed to a surviving
  replica;
- **numerical failures** (:class:`ConvergenceError`) are deterministic —
  retrying reproduces them bit-for-bit — so they are never retried; in
  quarantine mode the offending matrices are re-solved by the reference
  per-matrix path and reported in a :class:`FailureReport`.

Every exception here must survive a ``pickle`` round-trip: worker
processes raise them across the pool boundary, where CPython rebuilds the
exception from ``args`` and restores attributes from ``__dict__`` — which
is why the keyword extras all carry defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or kernel was configured with invalid parameters."""


class ShapeError(ReproError, ValueError):
    """An input array has an unsupported shape, dtype, or layout."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver exhausted its sweep budget before converging.

    Attributes
    ----------
    sweeps:
        Number of sweeps performed before giving up.
    residual:
        The convergence metric value at the point of failure.
    batch_indices:
        Caller-space batch indices of the non-converged matrices when the
        failure came from a batched engine (``None`` for single-matrix
        solvers). Lets a batch driver quarantine exactly the offenders.
    """

    def __init__(
        self,
        message: str,
        *,
        sweeps: int = 0,
        residual: float = float("nan"),
        batch_indices: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(message)
        self.sweeps = int(sweeps)
        self.residual = float(residual)
        self.batch_indices = (
            None if batch_indices is None else tuple(int(i) for i in batch_indices)
        )


class NonFiniteError(ReproError, ArithmeticError):
    """A matrix acquired NaN/Inf values mid-iteration.

    Distinct from :class:`ShapeError` (which rejects non-finite *inputs*
    up front): this fires when finite data turns non-finite during the
    sweeps — memory corruption, a poisoned shared segment, or an injected
    fault — and is therefore treated as retryable infrastructure failure.
    """

    def __init__(
        self,
        message: str,
        *,
        batch_indices: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(message)
        self.batch_indices = (
            None if batch_indices is None else tuple(int(i) for i in batch_indices)
        )


class WorkerCrashError(ReproError, RuntimeError):
    """A pool worker died (or was simulated dead) while holding a task."""


class DeadlineExceeded(ReproError, TimeoutError):
    """A task missed its per-task deadline (``RetryPolicy.task_timeout``)."""


class SegmentLostError(ReproError, RuntimeError):
    """A shared-memory segment vanished (or was corrupted) before attach."""


class ServerOverloaded(ReproError, RuntimeError):
    """The serving layer's bounded request queue is full.

    Raised by :meth:`repro.serve.SVDServer.submit` when admitting the
    request would push the pending-queue depth past
    ``ServeConfig.max_pending``. Backpressure is explicit by design: the
    broker rejects at the door instead of buffering without bound, so a
    client can shed load, retry later, or fail fast.

    The cluster router raises it only when *every* routable replica
    rejected the request; ``replicas`` then names them, and ``pending``/
    ``capacity`` aggregate over the replicas tried.

    Attributes
    ----------
    pending:
        Queue depth at rejection time (summed across replicas for a
        cluster-level rejection).
    capacity:
        The configured ``max_pending`` bound (summed for a cluster).
    replicas:
        Names of the replicas that rejected the request, when the
        rejection came from the shard router (empty for a single-server
        rejection).
    """

    def __init__(
        self,
        message: str,
        *,
        pending: int = 0,
        capacity: int = 0,
        replicas: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.pending = int(pending)
        self.capacity = int(capacity)
        self.replicas = tuple(str(r) for r in replicas)


class ReplicaDeadError(ReproError, RuntimeError):
    """A serving replica died (or was declared dead) holding requests.

    Raised on the futures of requests assigned to a replica that the
    :class:`~repro.serve.cluster.ReplicaManager` killed or declared dead
    — and, when fault injection arms a ``replica_kill`` clause, from the
    replica's dispatch path mid-fused-batch. It is an **infrastructure**
    failure in the PR 4 taxonomy: the shard router transparently re-routes
    affected requests to surviving replicas (the retried solve is
    bit-identical), and only surfaces the error when no routable replica
    remains or the failover budget is exhausted.

    Attributes
    ----------
    replica:
        Name of the dead replica (empty when unknown).
    """

    def __init__(self, message: str, *, replica: str = "") -> None:
        super().__init__(message)
        self.replica = str(replica)


class ServerClosed(ReproError, RuntimeError):
    """A request was submitted to a server that has shut down (or is
    draining). Futures already admitted still resolve; new work does not."""


class ResourceError(ReproError, RuntimeError):
    """A simulated kernel requested more resources than the device offers.

    Raised, for example, when a kernel is asked to keep a working set in
    shared memory that exceeds the per-block shared-memory capacity.
    """


class PlanError(ReproError, RuntimeError):
    """The auto-tuning engine could not produce a valid execution plan."""


# ---------------------------------------------------------------------------
# structured failure reporting (quarantine mode)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """One recovery event: a matrix (or task) that needed the ladder.

    Attributes
    ----------
    index:
        Caller-space batch index of the affected matrix; ``-1`` when the
        failure is not attributable to a single matrix (e.g. a whole-task
        infrastructure fault recorded by the executor).
    stage:
        Where the failure surfaced: ``"executor"`` (task-level retry),
        ``"engine"`` (bucketed stack), or ``"wcycle"`` (level recursion).
    cause:
        Exception class name (``"ConvergenceError"``, ``"WorkerCrashError"``,
        ...).
    message:
        The failing exception's message.
    attempts:
        Total solve attempts spent on this matrix/task, including the
        reference re-solve when one ran.
    recovered:
        ``True`` when a retry or the reference per-matrix path produced a
        valid factorization; ``False`` for a quarantined matrix whose
        result slot holds NaN placeholder factors.
    """

    index: int
    stage: str
    cause: str
    message: str
    attempts: int
    recovered: bool


@dataclass
class FailureReport:
    """Structured record of every fault survived (or absorbed) by a run.

    Attached to :class:`~repro.types.BatchedSVDResult` in quarantine mode
    instead of raising; falsy when the run was clean.
    """

    entries: list[TaskFailure] = field(default_factory=list)

    def add(
        self,
        *,
        index: int,
        stage: str,
        cause: str,
        message: str,
        attempts: int,
        recovered: bool,
    ) -> None:
        self.entries.append(
            TaskFailure(
                index=int(index),
                stage=str(stage),
                cause=str(cause),
                message=str(message),
                attempts=int(attempts),
                recovered=bool(recovered),
            )
        )

    def extend(self, other: "FailureReport") -> None:
        self.entries.extend(other.entries)

    @property
    def quarantined(self) -> tuple[int, ...]:
        """Batch indices that left the bucketed path (recovered or not)."""
        return tuple(
            sorted({e.index for e in self.entries if e.index >= 0})
        )

    @property
    def unrecovered(self) -> tuple[int, ...]:
        """Batch indices whose result slots hold NaN placeholder factors."""
        return tuple(
            sorted({e.index for e in self.entries if e.index >= 0 and not e.recovered})
        )

    def for_index(self, index: int) -> list[TaskFailure]:
        return [e for e in self.entries if e.index == index]

    def summary(self) -> str:
        lines = [
            f"{len(self.entries)} failure event(s); "
            f"quarantined matrices: {list(self.quarantined) or 'none'}; "
            f"unrecovered: {list(self.unrecovered) or 'none'}"
        ]
        for e in self.entries:
            lines.append(
                f"  [{e.stage}] index={e.index} {e.cause} after "
                f"{e.attempts} attempt(s) "
                f"({'recovered' if e.recovered else 'QUARANTINED'}): {e.message}"
            )
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TaskFailure]:
        return iter(self.entries)
