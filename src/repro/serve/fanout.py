"""Per-request failure fan-out from fused-batch errors.

A fused batch hands the engine a plain list of matrices, so every
failure artifact the engine produces — ``ConvergenceError.batch_indices``
/ ``NonFiniteError.batch_indices`` on the raise path,
:class:`~repro.errors.TaskFailure.index` entries in a
:class:`~repro.errors.FailureReport` on the quarantine path — speaks in
**positions within the fused stack** (0..b-1). Request ids are a
different namespace: global, monotonically increasing, and unrelated to
where a request happened to land in one batch. Conflating the two is the
classic fan-out bug: after the first flush, position 2 of a fused batch
is essentially never request 2, and an error blamed on "index 2" would
point a caller at the wrong request.

Every translation from fused-stack position to request identity goes
through the helpers here, and the exceptions a caller observes carry
*request ids* in ``batch_indices`` (plus a message naming them), so the
bug cannot be reintroduced by a call site doing its own arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConvergenceError, FailureReport, NonFiniteError

__all__ = [
    "positions_to_request_ids",
    "remap_fused_failure",
    "report_by_request",
]


def positions_to_request_ids(
    positions: Sequence[int] | None, request_ids: Sequence[int]
) -> tuple[int, ...]:
    """Translate fused-stack positions into the requests' ids.

    ``positions`` is what the engine reported (``batch_indices``);
    ``request_ids`` is the fused batch's dispatch order
    (:attr:`~repro.serve.batcher.FusedBatch.request_ids`). ``None`` — an
    error that names no per-matrix offenders — implicates the whole
    batch, since any request in it may be the cause.
    """
    if positions is None:
        return tuple(int(r) for r in request_ids)
    out = []
    for p in positions:
        if not 0 <= p < len(request_ids):
            raise IndexError(
                f"fused-stack position {p} out of range for a batch of "
                f"{len(request_ids)} request(s)"
            )
        out.append(int(request_ids[p]))
    return tuple(out)


def remap_fused_failure(
    exc: BaseException, request_ids: Sequence[int]
) -> BaseException:
    """Rewrite a fused-batch failure into request-id space.

    For :class:`~repro.errors.ConvergenceError` /
    :class:`~repro.errors.NonFiniteError` the returned exception is of
    the same type, with ``batch_indices`` replaced by the offending
    *request ids* and the message annotated with them. Other exception
    types (infrastructure failures that exhausted their retries) are
    returned unchanged — they carry no per-matrix indices to remap.
    """
    if not isinstance(exc, (ConvergenceError, NonFiniteError)):
        return exc
    ids = positions_to_request_ids(exc.batch_indices, request_ids)
    msg = (str(exc.args[0]) if exc.args else type(exc).__name__) + (
        f" [request ids {list(ids)}]"
    )
    if isinstance(exc, ConvergenceError):
        return ConvergenceError(
            msg,
            sweeps=exc.sweeps,
            residual=exc.residual,
            batch_indices=ids,
        )
    return NonFiniteError(msg, batch_indices=ids)


def report_by_request(
    report: FailureReport, request_ids: Sequence[int]
) -> dict[int, list]:
    """Group a fused batch's quarantine report by request id.

    Entries with ``index >= 0`` (per-matrix events) land under the id of
    the request at that fused-stack position; task-level entries
    (``index == -1``, e.g. an executor retry that eventually succeeded)
    land under the key ``-1`` since they belong to the batch, not to one
    request.
    """
    grouped: dict[int, list] = {}
    for entry in report:
        if entry.index >= 0:
            key = positions_to_request_ids((entry.index,), request_ids)[0]
        else:
            key = -1
        grouped.setdefault(key, []).append(entry)
    return grouped
