"""Closed-loop load generator for the serving layer.

Drives a serving target the way a fleet of synchronous callers would:
``concurrency`` worker threads each submit a request, **block for its
result**, then submit the next (a closed loop — offered load adapts to
service rate, so the generator measures the broker, not an unbounded
backlog). Matrix shapes are drawn from a mixed distribution by a seeded
per-worker generator, so runs are reproducible request-for-request.

The target is anything with the server surface — ``submit`` / ``clock``
/ ``stats`` — which today means one
:class:`~repro.serve.server.SVDServer` or a whole
:class:`~repro.serve.cluster.SVDCluster` (``repro-serve --replicas N``).
The per-worker seeded request streams are identical either way, so a
cluster run offers bit-for-bit the same traffic as a single-server run
and throughput curves across replica counts compare like for like.

Used three ways:

- the ``repro-serve`` CLI's traffic mode (single server or cluster),
- the serving benchmarks (``benchmarks/perf_serving.py`` →
  ``BENCH_serve.json``; ``benchmarks/test_ext_cluster_scaling.py`` →
  ``BENCH_cluster.json``),
- the CI serving-smoke and cluster-smoke jobs, which run it under
  ``REPRO_SANITIZE=1`` and assert every future resolved and no
  shared-memory segment was stranded.

All timing reads the server's clock (injected or monotonic); the module
never consults the wall clock itself.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ServerOverloaded
from repro.serve.cluster import ClusterStats, SVDCluster
from repro.serve.server import SVDServer
from repro.serve.stats import ServerStats

__all__ = ["LoadSpec", "LoadReport", "run_closed_loop"]

#: Pause between overload retries (seconds); closed-loop workers back
#: off instead of hammering a full queue.
_REJECT_BACKOFF = 0.001


@dataclass(frozen=True)
class LoadSpec:
    """One load-generation scenario.

    Attributes
    ----------
    requests:
        Total requests across all workers (split as evenly as integer
        division allows; the remainder goes to the first workers).
    concurrency:
        Closed-loop worker threads — also the maximum in-flight
        requests, which is what the micro-batcher has to coalesce.
    shapes:
        The shape mix; each worker draws uniformly (seeded).
    seed:
        Base seed; worker ``w`` uses ``default_rng(seed + w)`` for both
        shape choice and matrix entries.
    priorities:
        Priority levels to cycle through (adds scheduling variety).
    deadline_ms:
        Optional per-request relative deadline.
    verify_every:
        Spot-check cadence: every ``n``-th completed request per worker
        is re-solved standalone and compared bit-for-bit (0 disables).
    """

    requests: int = 200
    concurrency: int = 16
    shapes: tuple[tuple[int, int], ...] = ((16, 8), (24, 12), (32, 16))
    seed: int = 0
    priorities: tuple[int, ...] = (0,)
    deadline_ms: float | None = None
    verify_every: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.concurrency < 1:
            raise ConfigurationError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not self.shapes:
            raise ConfigurationError("shapes must be non-empty")


@dataclass
class LoadReport:
    """What one closed-loop run observed.

    ``completed + failed == requests`` always holds on return — a future
    that never resolved would hang the generator, so finishing *is* the
    all-futures-resolved check.
    """

    requests: int
    completed: int
    failed: int
    overload_retries: int
    elapsed: float
    throughput: float
    verified: int
    mismatches: int
    server_stats: ServerStats | ClusterStats
    errors: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "overload_retries": self.overload_retries,
            "elapsed_s": self.elapsed,
            "throughput_rps": self.throughput,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "server": self.server_stats.as_dict(),
        }


class _Worker:
    """One closed-loop caller: submit, wait, repeat."""

    def __init__(
        self,
        server: SVDServer | SVDCluster,
        spec: LoadSpec,
        index: int,
        count: int,
        barrier: threading.Barrier,
    ) -> None:
        self.server = server
        self.spec = spec
        self.index = index
        self.count = count
        self.barrier = barrier
        self.completed = 0
        self.failed = 0
        self.overload_retries = 0
        self.verified = 0
        self.mismatches = 0
        self.errors: list[str] = []
        rng = np.random.default_rng(spec.seed + index)
        # Pre-generate the worker's request stream so the measured loop
        # is submit/wait, not matrix generation.
        self.matrices = [
            rng.standard_normal(
                spec.shapes[int(rng.integers(len(spec.shapes)))]
            )
            for _ in range(count)
        ]

    def run(self) -> None:
        spec = self.spec
        self.barrier.wait()
        for i, matrix in enumerate(self.matrices):
            priority = spec.priorities[i % len(spec.priorities)]
            while True:
                try:
                    future = self.server.submit(
                        matrix,
                        priority=priority,
                        deadline_ms=spec.deadline_ms,
                    )
                    break
                except ServerOverloaded:
                    # Explicit backpressure: the closed-loop caller's
                    # contract is to back off and re-offer.
                    self.overload_retries += 1
                    threading.Event().wait(_REJECT_BACKOFF)
                except Exception as exc:  # repro: noqa[EXC01] an
                    # admission-time rejection other than backpressure
                    # (e.g. a cluster with no live replicas) counts as a
                    # failed request, not a dead worker thread — the
                    # report must still account for every request.
                    future = None
                    self.failed += 1
                    if len(self.errors) < 8:
                        self.errors.append(f"{type(exc).__name__}: {exc}")
                    break
            if future is None:
                continue
            try:
                result = future.result()
            except Exception as exc:
                self.failed += 1
                if len(self.errors) < 8:
                    self.errors.append(f"{type(exc).__name__}: {exc}")
                continue
            self.completed += 1
            if spec.verify_every and self.completed % spec.verify_every == 0:
                self._verify(matrix, result)

    def _verify(self, matrix: np.ndarray, result) -> None:
        from repro.jacobi.batched import BatchedJacobiEngine

        reference = BatchedJacobiEngine().svd_batch([matrix])[0]
        self.verified += 1
        same = (
            np.array_equal(result.U, reference.U)
            and np.array_equal(result.S, reference.S)
            and np.array_equal(result.V, reference.V)
        )
        if not same:
            self.mismatches += 1
            if len(self.errors) < 8:
                self.errors.append(
                    f"served factors differ from standalone solve for a "
                    f"{matrix.shape[0]}x{matrix.shape[1]} request"
                )


def run_closed_loop(
    server: SVDServer | SVDCluster, spec: LoadSpec
) -> LoadReport:
    """Run one scenario against a started target; blocks until done.

    The target may be a single server or a cluster — the generator only
    touches the shared surface (``submit`` / ``clock`` / ``stats``), and
    the seeded per-worker request streams do not depend on the target,
    so the same spec offers identical traffic to both.
    """
    per_worker = spec.requests // spec.concurrency
    remainder = spec.requests % spec.concurrency
    counts = [
        per_worker + (1 if w < remainder else 0)
        for w in range(spec.concurrency)
    ]
    counts = [c for c in counts if c]
    barrier = threading.Barrier(len(counts) + 1)
    workers = [
        _Worker(server, spec, w, count, barrier)
        for w, count in enumerate(counts)
    ]
    threads = [
        threading.Thread(
            target=worker.run, name=f"repro-loadgen-{worker.index}"
        )
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    clock = server.clock
    barrier.wait()
    started = clock()
    for thread in threads:
        thread.join()
    elapsed = clock() - started
    completed = sum(w.completed for w in workers)
    failed = sum(w.failed for w in workers)
    errors: list[str] = []
    for worker in workers:
        errors.extend(worker.errors)
    return LoadReport(
        requests=spec.requests,
        completed=completed,
        failed=failed,
        overload_retries=sum(w.overload_retries for w in workers),
        elapsed=elapsed,
        throughput=(completed + failed) / elapsed if elapsed > 0 else 0.0,
        verified=sum(w.verified for w in workers),
        mismatches=sum(w.mismatches for w in workers),
        server_stats=server.stats(),
        errors=errors[:8],
    )
