"""Dynamic micro-batching: shape-bucketed request coalescing.

The broker's throughput comes from the same observation the batched
engine is built on (and that Boukaram et al. / Abdelfattah & Fasi make
for variable-size GPU workloads): many small independent problems run
fastest as one shape-uniform stacked batch. The :class:`MicroBatcher`
turns a *stream* of requests into such batches:

- requests land in per-shape **bucket queues**
  (:func:`repro.utils.bucketing.bucket_by_shape` is the batch-call
  analogue; here the bucket key is the live queue key). Buckets are
  isolated — a flush of one shape never drags other shapes with it,
  because mixing shapes would forfeit the stacked execution the batch
  exists for;
- within a bucket, requests dequeue by **priority then
  earliest-deadline-first then FIFO** (:meth:`ServeRequest.sort_key`);
- a bucket **flushes** when any of three pressures fire: it holds
  ``max_batch`` requests (*fill*), its oldest request has waited
  ``max_wait`` seconds (*wait* — bounds the latency cost a request pays
  for riding in a fused batch), or a request's deadline is within
  ``deadline_slack`` seconds (*deadline*). :meth:`drain` flushes
  everything regardless (*drain*, used at shutdown).

The batcher is a pure data structure: every method takes ``now`` as an
argument and it never reads a clock, sleeps, or spawns a thread — the
server drives it with its injected clock, which is what makes flush
timing unit-testable without sleeps (and keeps the module DET01-clean).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.serve.request import ServeRequest

__all__ = ["FusedBatch", "MicroBatcher", "FLUSH_CAUSES"]

#: Why a fused batch left its bucket queue.
FLUSH_CAUSES = ("fill", "wait", "deadline", "drain")


@dataclass(frozen=True)
class FusedBatch:
    """One dispatch unit: shape-uniform requests fused into a stack.

    ``requests`` is the dequeue order — position ``p`` in the fused
    stack is ``requests[p]``, the mapping every failure fan-out must go
    through (see :mod:`repro.serve.fanout`).
    """

    shape: tuple[int, int]
    requests: tuple[ServeRequest, ...]
    cause: str
    created: float

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def request_ids(self) -> tuple[int, ...]:
        return tuple(r.request_id for r in self.requests)


class _Bucket:
    """One shape's pending queue: a heap plus the aggregate flush state."""

    __slots__ = ("heap",)

    def __init__(self) -> None:
        # (sort_key, request); heapq pops the smallest key, i.e. highest
        # priority, then earliest deadline, then lowest admission seq.
        self.heap: list[tuple[tuple[float, float, int], ServeRequest]] = []

    def push(self, request: ServeRequest) -> None:
        heapq.heappush(self.heap, (request.sort_key(), request))

    def pop_upto(self, count: int) -> list[ServeRequest]:
        return [heapq.heappop(self.heap)[1] for _ in range(min(count, len(self.heap)))]

    def oldest_arrival(self) -> float:
        return min(item[1].arrival for item in self.heap)

    def earliest_deadline(self) -> float | None:
        deadlines = [
            item[1].deadline for item in self.heap
            if item[1].deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def __len__(self) -> int:
        return len(self.heap)


class MicroBatcher:
    """Shape-bucketed request coalescing with three flush pressures.

    Parameters
    ----------
    max_batch:
        Largest fused batch (also the *fill* flush trigger). A bucket
        holding more than ``max_batch`` requests flushes the top
        ``max_batch`` by dequeue order and keeps the rest queued.
    max_wait:
        Seconds the oldest request of a bucket may wait before the
        bucket flushes anyway (the latency bound of batching).
    deadline_slack:
        A bucket flushes when some request's deadline is within this
        many seconds — the headroom left for the solve itself.
    """

    def __init__(
        self,
        *,
        max_batch: int = 32,
        max_wait: float = 0.002,
        deadline_slack: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_wait < 0:
            raise ConfigurationError(
                f"max_wait must be >= 0, got {max_wait}"
            )
        if deadline_slack < 0:
            raise ConfigurationError(
                f"deadline_slack must be >= 0, got {deadline_slack}"
            )
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.deadline_slack = float(deadline_slack)
        self._buckets: dict[tuple[int, int], _Bucket] = {}

    # -- state ------------------------------------------------------------

    def __len__(self) -> int:
        """Requests currently queued across all buckets."""
        return sum(len(b) for b in self._buckets.values())

    @property
    def bucket_depths(self) -> dict[tuple[int, int], int]:
        return {shape: len(b) for shape, b in self._buckets.items() if len(b)}

    # -- intake and flushing ----------------------------------------------

    def add(self, request: ServeRequest, now: float) -> list[FusedBatch]:
        """Queue one request; return any batches that became due by fill.

        Wait/deadline pressure is evaluated by :meth:`due` (the server
        polls it with its clock); fill pressure is evaluated here so a
        hot bucket flushes the moment it is full, not a poll later.
        """
        bucket = self._buckets.setdefault(request.shape, _Bucket())
        bucket.push(request)
        if len(bucket) >= self.max_batch:
            return [self._flush(request.shape, bucket, "fill", now)]
        return []

    def due(self, now: float) -> list[FusedBatch]:
        """Flush every bucket whose wait or deadline pressure has fired."""
        out: list[FusedBatch] = []
        for shape in list(self._buckets):
            bucket = self._buckets[shape]
            if not len(bucket):
                continue
            if now - bucket.oldest_arrival() >= self.max_wait:
                out.append(self._flush(shape, bucket, "wait", now))
                continue
            deadline = bucket.earliest_deadline()
            if deadline is not None and deadline - now <= self.deadline_slack:
                out.append(self._flush(shape, bucket, "deadline", now))
        return out

    def drain(self, now: float) -> list[FusedBatch]:
        """Flush everything (shutdown path); buckets empty afterwards."""
        out = []
        for shape in list(self._buckets):
            bucket = self._buckets[shape]
            while len(bucket):
                out.append(self._flush(shape, bucket, "drain", now))
        return out

    def next_due(self, now: float) -> float | None:
        """Seconds until the earliest wait/deadline trigger, or ``None``.

        The server's dispatch loop sleeps at most this long between
        polls; ``0.0`` means a flush is already due.
        """
        horizon: float | None = None
        for bucket in self._buckets.values():
            if not len(bucket):
                continue
            candidate = bucket.oldest_arrival() + self.max_wait - now
            deadline = bucket.earliest_deadline()
            if deadline is not None:
                candidate = min(
                    candidate, deadline - self.deadline_slack - now
                )
            horizon = candidate if horizon is None else min(horizon, candidate)
        if horizon is None:
            return None
        return max(0.0, horizon)

    def _flush(
        self,
        shape: tuple[int, int],
        bucket: _Bucket,
        cause: str,
        now: float,
    ) -> FusedBatch:
        requests = tuple(bucket.pop_upto(self.max_batch))
        if not len(bucket):
            del self._buckets[shape]
        return FusedBatch(
            shape=shape, requests=requests, cause=cause, created=now
        )
