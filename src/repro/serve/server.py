"""The SVD serving broker: asynchronous requests over the batched engine.

:class:`SVDServer` is the request path the ROADMAP's serving ambition
needs: callers :meth:`~SVDServer.submit` independent matrices from any
thread and get per-request futures back; a dispatch loop coalesces the
pending stream through the :class:`~repro.serve.batcher.MicroBatcher`
and runs each fused, shape-uniform batch through the existing
:class:`~repro.jacobi.batched.BatchedJacobiEngine` (or a
:class:`~repro.core.wcycle.WCycleSVD`) exactly as a direct batch call
would — so a served result is **bit-identical** to a standalone solve of
the same matrix, and all the engine's machinery (bucket sharding across
executor workers, resilient retries, the quarantine ladder) applies per
fused batch.

Design points:

- **Admission control** — the queue is bounded (``max_pending``);
  admitting past the bound raises
  :class:`~repro.errors.ServerOverloaded` instead of buffering without
  limit. Validation also happens at admission, so a malformed matrix
  fails its own caller, never a fused batch carrying other requests.
- **Failure fan-out** — fused solves run in quarantine mode; per-matrix
  failures are translated from fused-stack positions to request ids
  (:mod:`repro.serve.fanout`) and delivered on exactly the offending
  futures. Healthy requests in the same batch keep their (bit-identical)
  results.
- **Injectable clock** — every timestamp (arrival, flush timing,
  latency) is a reading of ``clock``, defaulting to
  ``time.monotonic``. Tests inject a fake clock and drive the broker
  with :meth:`~SVDServer.poll`, so flush timing is verified without a
  single sleep; the module itself never reads the wall clock.
- **Serialized dispatch** — fused batches execute one at a time under a
  dispatch lock (the engine instance is not reentrant); parallelism
  comes from the engine's executor *inside* a batch, which is where the
  vectorized work is.
- **Warm replicas** — the server builds its executor once and keeps it
  for its whole lifetime, so with ``RuntimeConfig(backend="persistent")``
  the worker processes, their attached shared-memory arenas, and their
  memoized sweep plans all survive *between* fused batches: steady-state
  request traffic pays zero pool spin-up and zero segment create/unlink
  per batch. :meth:`~SVDServer.close` tears the pool and arenas down.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FailureReport,
    NonFiniteError,
    ReproError,
    ServerClosed,
    ServerOverloaded,
)
from repro.jacobi.batched import BatchedJacobiEngine
from repro.runtime.executor import Executor, RuntimeConfig, get_executor
from repro.serve.batcher import FusedBatch, MicroBatcher
from repro.serve.fanout import remap_fused_failure
from repro.serve.request import ServeRequest, SVDFuture
from repro.serve.stats import ServerStats, _StatsAccumulator
from repro.types import SVDResult
from repro.utils.logging import get_logger
from repro.utils.validation import as_matrix

__all__ = ["ServeConfig", "SVDServer"]

_log = get_logger("serve")

#: Exception classes a quarantine report entry's ``cause`` can name; the
#: fan-out rebuilds the per-request exception from this table.
_CAUSE_TYPES: dict[str, type] = {
    "ConvergenceError": ConvergenceError,
    "NonFiniteError": NonFiniteError,
}

#: Upper bound on one dispatch-loop sleep. The loop re-polls at least
#: this often while work is queued, so a wait-trigger computed against a
#: clock that has since advanced is never missed by more than this.
_MAX_LOOP_WAIT = 0.05


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the serving broker.

    Attributes
    ----------
    max_batch:
        Largest fused batch; a shape bucket reaching this fill flushes
        immediately.
    max_wait_ms:
        Longest a request may sit in a bucket waiting for co-batchable
        traffic (the latency price of batching). ``0`` dispatches every
        request alone — the one-at-a-time baseline.
    deadline_slack_ms:
        Flush a bucket when some request's deadline is within this many
        milliseconds (headroom for the solve itself).
    max_pending:
        Bound on requests admitted but not yet dispatched; admission
        past it raises :class:`~repro.errors.ServerOverloaded`.
    stats_window:
        Latency samples retained for the quantile snapshot.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    deadline_slack_ms: float = 2.0
    max_pending: int = 1024
    stats_window: int = 4096

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.deadline_slack_ms < 0:
            raise ConfigurationError(
                f"deadline_slack_ms must be >= 0, got {self.deadline_slack_ms}"
            )
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.stats_window < 1:
            raise ConfigurationError(
                f"stats_window must be >= 1, got {self.stats_window}"
            )


class SVDServer:
    """Dynamic micro-batching broker over the batched SVD engine.

    Parameters
    ----------
    config:
        Batching/backpressure knobs (:class:`ServeConfig`).
    engine:
        The solver fused batches dispatch through: a
        :class:`~repro.jacobi.batched.BatchedJacobiEngine` (anything
        with ``svd_batch``) or a :class:`~repro.core.wcycle.WCycleSVD`
        (anything with ``decompose_batch``). ``None`` builds an engine
        on the ``runtime`` executor; the server then owns (and closes)
        it.
    runtime:
        Executor specification for the self-built engine —
        :class:`~repro.runtime.RuntimeConfig`, live executor, backend
        name, or ``None`` (a resilient serial executor). Mutually
        exclusive with ``engine``.
    clock:
        Zero-argument monotonic-seconds callable; defaults to
        ``time.monotonic``. All batch timing and latency accounting
        reads this clock, so tests drive flush behavior with a fake.
    start:
        Start the background dispatch thread immediately. Pass ``False``
        to drive dispatch manually with :meth:`poll` (deterministic
        tests) or to :meth:`start` later.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.serve import SVDServer
    >>> rng = np.random.default_rng(0)
    >>> with SVDServer() as server:
    ...     futures = [server.submit(rng.standard_normal((16, 8)))
    ...                for _ in range(64)]
    ...     results = [f.result() for f in futures]
    >>> len(results)
    64
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        engine=None,
        runtime: RuntimeConfig | Executor | str | None = None,
        clock=None,
        start: bool = True,
    ) -> None:
        self.config = config or ServeConfig()
        if engine is not None and runtime is not None:
            raise ConfigurationError(
                "pass either engine= (a solver to dispatch through) or "
                "runtime= (an executor spec for a self-built engine), "
                "not both"
            )
        self._clock = clock if clock is not None else time.monotonic
        if engine is None:
            # A resilient executor by default: retries, the degradation
            # ladder, and quarantine apply per fused batch.
            spec = runtime if runtime is not None else RuntimeConfig(
                on_failure="quarantine"
            )
            self._executor = get_executor(spec)
            self._engine = BatchedJacobiEngine(executor=self._executor)
            self._owns_executor = not isinstance(runtime, Executor)
        else:
            if not (
                hasattr(engine, "svd_batch")
                or hasattr(engine, "decompose_batch")
            ):
                raise ConfigurationError(
                    f"engine must expose svd_batch (BatchedJacobiEngine) "
                    f"or decompose_batch (WCycleSVD), got "
                    f"{type(engine).__name__}"
                )
            self._executor = None
            self._engine = engine
            self._owns_executor = False
        self._batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait=self.config.max_wait_ms / 1e3,
            deadline_slack=self.config.deadline_slack_ms / 1e3,
        )
        self._cond = threading.Condition()
        self._dispatch_lock = threading.Lock()
        self._ready: list[FusedBatch] = []
        self._stats = _StatsAccumulator(window=self.config.stats_window)
        self._pending = 0
        self._inflight = 0
        self._next_id = 0
        self._closed = False
        self._stopped = False
        self._thread: threading.Thread | None = None
        if start:
            self.start()

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SVDServer":
        """Start the background dispatch thread (idempotent)."""
        with self._cond:
            if self._closed:
                raise ServerClosed("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-serve-dispatch", daemon=True
                )
                self._thread.start()
        return self

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting work and shut down (idempotent).

        With ``drain=True`` (default) every admitted request is
        dispatched and resolved before the dispatch thread exits; with
        ``drain=False`` queued requests fail with
        :class:`~repro.errors.ServerClosed` (in-flight batches still
        complete).
        """
        with self._cond:
            if self._closed and self._stopped:
                return
            self._closed = True
            self._cond.notify_all()
        if drain:
            self.drain()
        else:
            self._abort_queued()
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
        if self._owns_executor and self._executor is not None:
            self._executor.close()
        _log.event("serve.close", drained=drain)

    def __enter__(self) -> "SVDServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- intake -----------------------------------------------------------

    def submit(
        self,
        matrix: np.ndarray,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> SVDFuture:
        """Admit one SVD request; returns its future immediately.

        ``priority`` orders dispatch within a shape bucket (higher
        first); ``deadline_ms`` (relative to now) additionally orders by
        earliest deadline and adds flush pressure as it approaches.

        Raises
        ------
        ServerOverloaded
            The bounded queue is full — explicit backpressure.
        ServerClosed
            The server is shutting down.
        ShapeError
            The matrix is not a finite real 2-D array.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        arr = as_matrix(matrix, name="matrix")
        with self._cond:
            if self._closed:
                raise ServerClosed(
                    "server is closed; no new requests are admitted"
                )
            if self._pending >= self.config.max_pending:
                self._stats.rejected += 1
                _log.event(
                    "serve.reject",
                    pending=self._pending,
                    capacity=self.config.max_pending,
                    shape=arr.shape,
                )
                raise ServerOverloaded(
                    f"request queue is full ({self._pending} pending >= "
                    f"max_pending={self.config.max_pending}); retry later "
                    f"or raise max_pending",
                    pending=self._pending,
                    capacity=self.config.max_pending,
                )
            now = self._clock()
            request = ServeRequest(
                request_id=self._next_id,
                matrix=arr,
                priority=int(priority),
                deadline=(
                    None if deadline_ms is None else now + deadline_ms / 1e3
                ),
                arrival=now,
            )
            self._next_id += 1
            self._pending += 1
            self._stats.submitted += 1
            self._ready.extend(self._batcher.add(request, now))
            _log.event(
                "serve.submit",
                id=request.request_id,
                shape=arr.shape,
                priority=request.priority,
                deadline_ms=deadline_ms,
                pending=self._pending,
            )
            self._cond.notify_all()
        return request.future

    # -- dispatch ---------------------------------------------------------

    def poll(self) -> int:
        """Run one dispatch cycle on the calling thread.

        Flushes every batch that is due at the current clock reading and
        solves them synchronously; returns the number of batches
        dispatched. This is the manual-drive alternative to the
        background thread — with an injected fake clock it makes flush
        timing fully deterministic.
        """
        batches = self._take_ready()
        for batch in batches:
            self._dispatch(batch)
        return len(batches)

    def drain(self) -> None:
        """Flush everything queued and wait for all admitted work."""
        with self._cond:
            now = self._clock()
            self._ready.extend(self._batcher.drain(now))
            batches = self._checkout(self._ready)
        for batch in batches:
            self._dispatch(batch)
        with self._cond:
            while self._pending or self._inflight or self._ready:
                self._cond.wait(timeout=_MAX_LOOP_WAIT)

    # -- observability ----------------------------------------------------

    def stats(self) -> ServerStats:
        """Immutable snapshot of counters, fill histogram, latencies."""
        with self._cond:
            return self._stats.snapshot(
                pending=self._pending, inflight=self._inflight
            )

    def reset_stats(self) -> None:
        """Zero the counters and drop the latency window.

        Rolls the observability epoch without touching queued or
        in-flight work: a snapshot taken immediately after sees zero
        counters and an *empty* latency window (NaN quantiles), the same
        degraded-gracefully form as before the first completion. The
        cluster's replica supervisor uses this when a replica re-enters
        service, so its health window reflects only post-revival
        behavior.
        """
        with self._cond:
            self._stats.reset()

    def ping(self) -> bool:
        """Liveness probe: can this server still take and dispatch work?

        ``True`` while the server is accepting requests and its dispatch
        machinery is intact — i.e. it is not closed, and if a background
        dispatch thread was started, that thread is still alive. A
        manually-driven server (``start=False``) is alive as long as it
        is open, since the driver *is* the dispatch loop. The cluster's
        health probes call this; it takes the lock but does no work, so
        probing is cheap enough to run every interval.
        """
        with self._cond:
            if self._closed:
                return False
            thread = self._thread
        return thread is None or thread.is_alive()

    @property
    def pending(self) -> int:
        """Requests admitted but not yet dispatched."""
        with self._cond:
            return self._pending

    @property
    def clock(self):
        """The server's clock (injected or ``time.monotonic``)."""
        return self._clock

    # -- internals --------------------------------------------------------

    def _checkout(self, batches: list[FusedBatch]) -> list[FusedBatch]:
        """Move batches from queued to in-flight (caller holds the lock)."""
        taken = list(batches)
        batches.clear()
        for batch in taken:
            self._pending -= len(batch)
            self._inflight += len(batch)
            self._stats.note_batch(len(batch), batch.cause)
        return taken

    def _take_ready(self) -> list[FusedBatch]:
        with self._cond:
            self._ready.extend(self._batcher.due(self._clock()))
            return self._checkout(self._ready)

    def _loop(self) -> None:
        """Background dispatch loop (one thread per server)."""
        while True:
            with self._cond:
                while True:
                    if self._stopped:
                        return
                    self._ready.extend(self._batcher.due(self._clock()))
                    if self._ready:
                        batches = self._checkout(self._ready)
                        break
                    if self._closed and not self._pending:
                        # Shutdown is finishing elsewhere (drain/abort);
                        # keep waiting for the stop flag.
                        self._cond.wait(timeout=_MAX_LOOP_WAIT)
                        continue
                    horizon = self._batcher.next_due(self._clock())
                    if horizon is None:
                        self._cond.wait()
                    else:
                        # Cap the sleep: the horizon was computed from a
                        # clock reading that is already stale by wait
                        # time, and an injected clock may advance
                        # independently of the wall clock the condition
                        # variable sleeps on.
                        self._cond.wait(
                            timeout=min(max(horizon, 1e-4), _MAX_LOOP_WAIT)
                        )
            for batch in batches:
                self._dispatch(batch)

    def _abort_queued(self) -> None:
        """Fail every not-yet-dispatched request with ``ServerClosed``."""
        with self._cond:
            self._ready.extend(self._batcher.drain(self._clock()))
            batches = list(self._ready)
            self._ready.clear()
            for batch in batches:
                # Aborted batches move straight to the failure ledger;
                # they never count as dispatched.
                self._pending -= len(batch)
                self._inflight += len(batch)
        now = self._clock()
        for batch in batches:
            for request in batch.requests:
                request.fail(
                    ServerClosed(
                        f"server closed before request "
                        f"{request.request_id} was dispatched"
                    )
                )
            self._finish(batch.requests, now, failed=True)

    def _dispatch(self, batch: FusedBatch) -> None:
        """Solve one fused batch and fan results/failures out by request."""
        ids = batch.request_ids
        _log.event(
            "serve.flush",
            bucket=batch.shape,
            fill=len(batch),
            cause=batch.cause,
            ids=len(ids),
        )
        try:
            # The engine instance is stateful (last_failures) and not
            # reentrant; fused batches execute one at a time. Worker
            # parallelism lives inside the engine's executor.
            with self._dispatch_lock:
                results, report = self._solve(
                    [r.matrix for r in batch.requests]
                )
        except Exception as exc:
            # A whole-batch failure (infrastructure fault that exhausted
            # its retries, or an unexpected bug): every future must still
            # resolve — map the failure into request-id space and fan it
            # out; nothing is ever silently dropped.
            mapped = remap_fused_failure(exc, ids)
            for request in batch.requests:
                request.fail(mapped)
            self._finish(batch.requests, self._clock(), failed=True)
            _log.event(
                "serve.batch_failed",
                bucket=batch.shape,
                fill=len(batch),
                cause=type(exc).__name__,
            )
            return
        unrecovered = set(report.unrecovered)
        recovered = {
            e.index for e in report if e.index >= 0 and e.recovered
        }
        now = self._clock()
        completed: list[ServeRequest] = []
        failed: list[ServeRequest] = []
        for pos, request in enumerate(batch.requests):
            if pos in unrecovered:
                request.fail(self._request_error(report, pos, request))
                failed.append(request)
            else:
                request.resolve(results[pos])
                completed.append(request)
        with self._cond:
            self._stats.quarantined += len(
                {ids[pos] for pos in recovered | unrecovered}
            )
        self._finish(completed, now, failed=False)
        self._finish(failed, now, failed=True)
        _log.event(
            "serve.dispatched",
            bucket=batch.shape,
            fill=len(batch),
            ok=len(completed),
            failed=len(failed),
        )

    def _solve(
        self, matrices: list[np.ndarray]
    ) -> tuple[list[SVDResult], FailureReport]:
        """Run one fused batch through the configured solver."""
        engine = self._engine
        if hasattr(engine, "svd_batch"):
            results = engine.svd_batch(matrices, on_failure="quarantine")
            return list(results), engine.last_failures
        batch = engine.decompose_batch(matrices, on_failure="quarantine")
        return list(batch.results), batch.failures or FailureReport()

    def _request_error(
        self, report: FailureReport, position: int, request: ServeRequest
    ) -> ReproError:
        """Build the exception for one unrecovered request.

        The report speaks fused-stack positions; the exception handed to
        the caller names the request id (the regression the fan-out
        helpers guard: ids, never positions).
        """
        entries = report.for_index(position)
        last = entries[-1]
        exc_type = _CAUSE_TYPES.get(last.cause, ReproError)
        message = (
            f"request {request.request_id} "
            f"({request.shape[0]}x{request.shape[1]}) failed after "
            f"{last.attempts} attempt(s): {last.message}"
        )
        if exc_type is ConvergenceError:
            return ConvergenceError(
                message, batch_indices=(request.request_id,)
            )
        if exc_type is NonFiniteError:
            return NonFiniteError(
                message, batch_indices=(request.request_id,)
            )
        return ReproError(message)

    def _finish(
        self, requests, now: float, *, failed: bool
    ) -> None:
        """Account completions and wake drain/close waiters."""
        if not requests:
            return
        with self._cond:
            for request in requests:
                self._stats.note_completion(
                    now - request.arrival, failed=failed
                )
            self._inflight -= len(requests)
            self._cond.notify_all()
