"""In-process client over a serving target.

The client is the synchronous convenience surface: it submits on the
caller's behalf and blocks on the returned futures, so application code
that just wants "an SVD, served" never touches futures or batching
knobs. The target is anything with the ``submit`` contract — one
:class:`~repro.serve.server.SVDServer` or a whole
:class:`~repro.serve.cluster.SVDCluster`; the client neither knows nor
cares whether a shard router sits behind its handle. Many clients (one
per application thread) can share one target — that concurrency is
exactly what fills the micro-batcher's buckets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.serve.cluster import SVDCluster
from repro.serve.request import SVDFuture
from repro.serve.server import SVDServer
from repro.types import SVDResult

__all__ = ["SVDClient"]


class SVDClient:
    """Blocking request helpers bound to one serving target.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.serve import SVDClient, SVDServer
    >>> rng = np.random.default_rng(0)
    >>> with SVDServer() as server:
    ...     client = SVDClient(server)
    ...     result = client.solve(rng.standard_normal((16, 8)))
    >>> result.S.shape
    (8,)

    A cluster serves through the identical surface:

    >>> from repro.serve import SVDCluster
    >>> with SVDCluster() as cluster:
    ...     result = SVDClient(cluster).solve(rng.standard_normal((16, 8)))
    >>> result.S.shape
    (8,)
    """

    def __init__(self, server: SVDServer | SVDCluster) -> None:
        self.server = server

    def submit(
        self,
        matrix: np.ndarray,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> SVDFuture:
        """Asynchronous submit (passes through to the server)."""
        return self.server.submit(
            matrix, priority=priority, deadline_ms=deadline_ms
        )

    def solve(
        self,
        matrix: np.ndarray,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> SVDResult:
        """Submit one matrix and block for its result.

        ``timeout`` bounds the wait on the future (seconds); the
        request's failure (convergence, overload at submit, shutdown)
        raises here, in the caller that owns it.
        """
        return self.submit(
            matrix, priority=priority, deadline_ms=deadline_ms
        ).result(timeout=timeout)

    def solve_batch(
        self,
        matrices: Sequence[np.ndarray],
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> list[SVDResult]:
        """Submit a batch and block for all results, in submit order.

        Submitting everything before waiting lets the micro-batcher fuse
        the whole set — this is the client-side route to batched
        throughput for a caller that already holds many matrices.
        """
        futures = [
            self.submit(a, priority=priority, deadline_ms=deadline_ms)
            for a in matrices
        ]
        return [f.result(timeout=timeout) for f in futures]
