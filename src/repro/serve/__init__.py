"""Batched-SVD serving layer: a dynamic micro-batching request broker.

Every other entry point in the repository is a one-shot batch call — the
caller already holds all of its matrices. This package serves the
*streaming* shape of the same workload: independent SVD requests arrive
asynchronously (from many threads, with priorities and deadlines), and
throughput still has to come from the batch axis. The broker recovers it
with the inference-serving pattern: coalesce pending requests into
shape-uniform fused batches (the paper's size-oblivious batching,
applied across *requests* instead of within one call), dispatch each
fused batch through the existing batch-vectorized engine, and fan the
per-matrix results — and failures — back out to per-request futures.

- :mod:`repro.serve.server` — :class:`SVDServer`: admission control and
  bounded-queue backpressure, the dispatch loop, per-request failure
  fan-out, statistics;
- :mod:`repro.serve.batcher` — :class:`MicroBatcher`: per-shape bucket
  queues, priority + earliest-deadline-first ordering, fill /
  ``max_wait`` / deadline-pressure flush triggers;
- :mod:`repro.serve.request` — :class:`ServeRequest` / future types;
- :mod:`repro.serve.fanout` — fused-stack position -> request id
  translation (the mapping every failure must cross);
- :mod:`repro.serve.stats` — :class:`ServerStats` snapshots;
- :mod:`repro.serve.client` — :class:`SVDClient`, the blocking
  convenience surface;
- :mod:`repro.serve.cluster` — :class:`SVDCluster`: N supervised server
  replicas behind a health-checked consistent-hash shard router, with
  graceful draining and taxonomy-aware failover;
- :mod:`repro.serve.loadgen` — the closed-loop load generator behind
  ``repro-serve``, the serving benchmark, and the CI smoke job.

The serving contract mirrors the runtime's: a served result is
bit-identical to a standalone solve of the same matrix — micro-batching
changes scheduling, never arithmetic.
"""

from repro.serve.batcher import FLUSH_CAUSES, FusedBatch, MicroBatcher
from repro.serve.client import SVDClient
from repro.serve.cluster import (
    REPLICA_STATES,
    ClusterConfig,
    ClusterStats,
    ReplicaManager,
    ReplicaStats,
    ShardRouter,
    SVDCluster,
)
from repro.serve.fanout import (
    positions_to_request_ids,
    remap_fused_failure,
    report_by_request,
)
from repro.serve.loadgen import LoadReport, LoadSpec, run_closed_loop
from repro.serve.request import ServeRequest, SVDFuture
from repro.serve.server import ServeConfig, SVDServer
from repro.serve.stats import ServerStats

__all__ = [
    "FLUSH_CAUSES",
    "REPLICA_STATES",
    "ClusterConfig",
    "ClusterStats",
    "FusedBatch",
    "MicroBatcher",
    "ReplicaManager",
    "ReplicaStats",
    "SVDClient",
    "SVDCluster",
    "SVDFuture",
    "SVDServer",
    "ServeConfig",
    "ServeRequest",
    "ServerStats",
    "ShardRouter",
    "LoadReport",
    "LoadSpec",
    "run_closed_loop",
    "positions_to_request_ids",
    "remap_fused_failure",
    "report_by_request",
]
