"""Serving statistics: counters, batch-fill histogram, latency quantiles.

The accumulator is owned by the server and mutated under its lock; a
:meth:`_StatsAccumulator.snapshot` produces an immutable
:class:`ServerStats` a monitoring thread can read without racing the
broker. Latencies are kept in a bounded ring (most recent
``window`` completions), so quantiles track current behavior and memory
stays O(window) under sustained traffic.

Everything here is driven by the server's injected clock — the module
itself never reads time, so statistics are exactly reproducible under a
fake clock (and DET01-clean).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field

__all__ = ["ServerStats"]


def _quantile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank quantile of an already-sorted list (NaN when empty).

    The empty case matters: a stats reset (or a freshly revived cluster
    replica) leaves the latency window with zero samples, and a snapshot
    taken before the next completion must degrade to NaN — exactly like
    the pre-first-completion state — instead of raising.
    """
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass(frozen=True)
class ServerStats:
    """Immutable snapshot of a server's life so far.

    Attributes
    ----------
    submitted / completed / failed / rejected:
        Request counters: admitted, resolved with a result, resolved
        with an exception, refused at the door (``ServerOverloaded``).
    quarantined:
        Requests that left the bucketed fast path but were recovered by
        the engine's quarantine ladder (their futures still resolved
        with valid factors).
    pending:
        Requests queued in the micro-batcher right now.
    inflight:
        Requests dispatched into a fused solve that has not returned.
    batches:
        Fused batches dispatched.
    batch_fill:
        Histogram ``{fill_size: count}`` over dispatched batches.
    flush_causes:
        Histogram ``{cause: count}`` over :data:`~repro.serve.batcher.
        FLUSH_CAUSES`.
    latency_p50 / latency_p95 / latency_p99 / latency_max:
        End-to-end seconds (admission to future resolution) over the
        most recent completions (NaN before the first completion).
    window:
        Number of latency samples the quantiles were computed from.
    """

    submitted: int
    completed: int
    failed: int
    rejected: int
    quarantined: int
    pending: int
    inflight: int
    batches: int
    batch_fill: dict[int, int]
    flush_causes: dict[str, int]
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_max: float
    window: int

    @property
    def mean_fill(self) -> float:
        total = sum(fill * n for fill, n in self.batch_fill.items())
        count = sum(self.batch_fill.values())
        return total / count if count else float("nan")

    def summary(self) -> str:
        fill = ", ".join(
            f"{size}:{count}" for size, count in sorted(self.batch_fill.items())
        )
        causes = ", ".join(
            f"{cause}:{count}"
            for cause, count in sorted(self.flush_causes.items())
        )
        return "\n".join(
            [
                f"requests: {self.submitted} submitted, "
                f"{self.completed} completed, {self.failed} failed, "
                f"{self.rejected} rejected, {self.quarantined} quarantined",
                f"queue: {self.pending} pending, {self.inflight} in flight",
                f"batches: {self.batches} dispatched, "
                f"mean fill {self.mean_fill:.2f} "
                f"(fill histogram {fill or '-'}; causes {causes or '-'})",
                f"latency (last {self.window}): "
                f"p50 {self.latency_p50 * 1e3:.3g} ms, "
                f"p95 {self.latency_p95 * 1e3:.3g} ms, "
                f"p99 {self.latency_p99 * 1e3:.3g} ms, "
                f"max {self.latency_max * 1e3:.3g} ms",
            ]
        )

    def as_dict(self) -> dict:
        """JSON-ready form (benchmarks and the CLI persist this)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "pending": self.pending,
            "inflight": self.inflight,
            "batches": self.batches,
            "batch_fill": {str(k): v for k, v in sorted(self.batch_fill.items())},
            "flush_causes": dict(sorted(self.flush_causes.items())),
            "mean_fill": self.mean_fill,
            "latency_p50_ms": self.latency_p50 * 1e3,
            "latency_p95_ms": self.latency_p95 * 1e3,
            "latency_p99_ms": self.latency_p99 * 1e3,
            "latency_max_ms": self.latency_max * 1e3,
            "latency_window": self.window,
        }


@dataclass
class _StatsAccumulator:
    """Mutable counters behind the server lock (internal)."""

    window: int = 4096
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    quarantined: int = 0
    batches: int = 0
    batch_fill: Counter = field(default_factory=Counter)
    flush_causes: Counter = field(default_factory=Counter)
    latencies: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.latencies = deque(maxlen=int(self.window))

    def reset(self) -> None:
        """Zero every counter and drop the latency window.

        Used when a monitoring epoch rolls over — e.g. the cluster
        re-admits a replica from probation and wants its window to
        reflect only post-revival behavior. The very next
        :meth:`snapshot` sees an *empty* window, which must degrade to
        NaN quantiles, not raise.
        """
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected = 0
        self.quarantined = 0
        self.batches = 0
        self.batch_fill.clear()
        self.flush_causes.clear()
        self.latencies.clear()

    def note_batch(self, fill: int, cause: str) -> None:
        self.batches += 1
        self.batch_fill[int(fill)] += 1
        self.flush_causes[cause] += 1

    def note_completion(self, latency: float, *, failed: bool) -> None:
        if failed:
            self.failed += 1
        else:
            self.completed += 1
        self.latencies.append(float(latency))

    def snapshot(self, *, pending: int, inflight: int) -> ServerStats:
        ordered = sorted(self.latencies)
        p50 = _quantile(ordered, 0.50)
        p95 = _quantile(ordered, 0.95)
        p99 = _quantile(ordered, 0.99)
        worst = ordered[-1] if ordered else float("nan")
        return ServerStats(
            submitted=self.submitted,
            completed=self.completed,
            failed=self.failed,
            rejected=self.rejected,
            quarantined=self.quarantined,
            pending=int(pending),
            inflight=int(inflight),
            batches=self.batches,
            batch_fill=dict(self.batch_fill),
            flush_causes=dict(self.flush_causes),
            latency_p50=p50,
            latency_p95=p95,
            latency_p99=p99,
            latency_max=worst,
            window=len(ordered),
        )
