"""Multi-replica serving: a health-checked shard router over N brokers.

One :class:`~repro.serve.server.SVDServer` is a single broker on a
single dispatch loop — the PR 5 design scales the *batch* axis, not the
*replica* axis. This module adds the replica axis while keeping the
single-server contract intact: a :class:`ReplicaManager` supervises N
server replicas (processes-as-nodes on one machine — each replica runs
its own engine on its own executor, typically a resilient persistent
arena pool, so replica workers, arenas, and warm plans are fully
disjoint), and a :class:`ShardRouter` spreads ``submit()`` traffic over
them. Callers talk to the :class:`SVDCluster` facade exactly as they
would to one server and get the same :class:`~repro.serve.request.
SVDFuture` back; results are bit-identical to a standalone solve because
every replica runs the identical engine configuration.

Routing
-------
The routing key is the **shape bucket** ``(m, n)`` — the same key the
micro-batcher coalesces on — hashed onto a consistent ring of virtual
nodes, so one shape's traffic concentrates on one replica (fused batches
fill fastest when co-batchable requests land together) and adding or
losing a replica only remaps the shapes that hashed near it. Among the
first ``tie_candidates`` live ring candidates, the least-loaded replica
wins (a deterministic power-of-two-choices tie-break), which stops a hot
shape from drowning its home replica while the next one idles.

Health, draining, failover
--------------------------
Robustness is the headline:

- **Health probes with a circuit breaker.** The manager probes each
  replica every ``probe_interval_ms`` (:meth:`SVDServer.ping`).
  Consecutive failures walk a replica down ``healthy → degraded →
  dead``; a dead replica re-enters as ``degraded`` after a probation
  window and must pass consecutive probes to be ``healthy`` again.
  Degraded replicas receive traffic only when no healthy candidate
  exists.
- **Graceful draining.** :meth:`SVDCluster.drain_replica` stops routing
  to a replica, flushes and completes everything it holds in flight,
  then retires it. The router rejects nothing during a drain — new
  requests route to the remaining replicas.
- **Failover on the PR 4 taxonomy.** When a replica dies holding
  requests (killed, probed dead, or an injected ``replica_kill`` fault
  mid-fused-batch), its unresolved requests are re-routed to surviving
  replicas — but only *infrastructure* failures
  (:class:`~repro.errors.WorkerCrashError`,
  :class:`~repro.errors.DeadlineExceeded`,
  :class:`~repro.errors.SegmentLostError`,
  :class:`~repro.errors.ReplicaDeadError`, ...) are retried;
  deterministic numerical failures (:class:`~repro.errors.
  ConvergenceError`) would reproduce bit-for-bit on any replica and are
  delivered as-is. Every future resolves exactly once (an epoch token
  discards stale completions from a replica that was failed over), and
  a re-routed solve returns the same bytes the first replica would have.
- **Replica-scoped reclamation.** Each replica's executor namespaces its
  shared-memory segments under a replica-unique root, so when a replica
  dies the manager reclaims exactly that replica's stranded segments
  (:func:`repro.runtime.shm.reclaim`) — nothing of the survivors is
  touched, and nothing of the dead is leaked.

Like the rest of the serving layer, every timestamp is a reading of an
injectable clock, and a cluster built with ``start=False`` is driven
manually with :meth:`SVDCluster.poll` — health transitions, draining,
and failover are all deterministic under a fake clock.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    PlanError,
    ReplicaDeadError,
    ServerClosed,
    ServerOverloaded,
    ShapeError,
)
from repro.jacobi.batched import BatchedJacobiEngine
from repro.runtime import faults, shm
from repro.runtime.executor import Executor, RuntimeConfig, get_executor
from repro.runtime.resilient import ResilientExecutor
from repro.serve.request import SVDFuture
from repro.serve.server import ServeConfig, SVDServer
from repro.serve.stats import ServerStats, _StatsAccumulator
from repro.utils.logging import get_logger
from repro.utils.validation import as_matrix

__all__ = [
    "ClusterConfig",
    "ClusterStats",
    "ReplicaManager",
    "ReplicaStats",
    "ShardRouter",
    "SVDCluster",
    "REPLICA_STATES",
]

_log = get_logger("serve.cluster")

# -- the replica health state machine --------------------------------------

HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"
DEAD = "dead"
RETIRED = "retired"

#: Every state a replica can be in.
REPLICA_STATES = (HEALTHY, DEGRADED, DRAINING, DEAD, RETIRED)

#: States the router may send new traffic to (degraded only as a last
#: resort — see :meth:`ShardRouter.submit`).
_ROUTABLE = (HEALTHY, DEGRADED)

#: Deterministic failures: a retry on another replica replays the same
#: arithmetic and reproduces the same bits, so failover never retries
#: these (mirrors the resilient executor's non-retryable set).
_NONRETRYABLE = (ConfigurationError, ShapeError, PlanError, ConvergenceError)


def _retryable(exc: BaseException) -> bool:
    return isinstance(exc, Exception) and not isinstance(exc, _NONRETRYABLE)


def _hash64(text: str) -> int:
    """Stable 64-bit ring position for ``text`` (sha256-derived)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the replica cluster.

    Attributes
    ----------
    replicas:
        Number of server replicas the manager spawns.
    virtual_nodes:
        Ring positions per replica; more virtual nodes smooth the shape
        distribution across replicas.
    tie_candidates:
        Live ring candidates compared by load before routing (the
        deterministic power-of-``k``-choices tie-break).
    probe_interval_ms:
        Health-probe period of the supervisor thread (also the cadence a
        manual driver should call :meth:`SVDCluster.poll` at).
    fail_degraded:
        Consecutive probe failures that demote ``healthy`` →
        ``degraded``.
    fail_dead:
        Consecutive probe failures that declare a replica ``dead`` (its
        in-flight requests fail over; its resources are reclaimed).
    probation_ms:
        How long a dead replica waits before re-admission is attempted.
    probation_successes:
        Consecutive successful probes a re-admitted (``degraded``)
        replica needs to be promoted back to ``healthy``.
    max_failovers:
        Re-routes a single request may consume before its infrastructure
        failure is surfaced to the caller.
    revive:
        Whether dead replicas are revived after probation at all
        (disable for fixed-topology tests).
    serve:
        Per-replica :class:`~repro.serve.server.ServeConfig` (batching
        and backpressure knobs of each broker).
    """

    replicas: int = 2
    virtual_nodes: int = 8
    tie_candidates: int = 2
    probe_interval_ms: float = 50.0
    fail_degraded: int = 1
    fail_dead: int = 3
    probation_ms: float = 250.0
    probation_successes: int = 2
    max_failovers: int = 2
    revive: bool = True
    serve: ServeConfig = field(default_factory=ServeConfig)

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.virtual_nodes < 1:
            raise ConfigurationError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )
        if self.tie_candidates < 1:
            raise ConfigurationError(
                f"tie_candidates must be >= 1, got {self.tie_candidates}"
            )
        if self.probe_interval_ms <= 0:
            raise ConfigurationError(
                f"probe_interval_ms must be > 0, got {self.probe_interval_ms}"
            )
        if self.fail_degraded < 1:
            raise ConfigurationError(
                f"fail_degraded must be >= 1, got {self.fail_degraded}"
            )
        if self.fail_dead < self.fail_degraded:
            raise ConfigurationError(
                f"fail_dead ({self.fail_dead}) must be >= fail_degraded "
                f"({self.fail_degraded})"
            )
        if self.probation_ms < 0:
            raise ConfigurationError(
                f"probation_ms must be >= 0, got {self.probation_ms}"
            )
        if self.probation_successes < 1:
            raise ConfigurationError(
                f"probation_successes must be >= 1, got "
                f"{self.probation_successes}"
            )
        if self.max_failovers < 0:
            raise ConfigurationError(
                f"max_failovers must be >= 0, got {self.max_failovers}"
            )


@dataclass
class _ClusterRequest:
    """Router-side record of one admitted request.

    ``epoch`` is the exactly-once guard: every (re-)assignment to a
    replica captures the current epoch, and a completion callback whose
    token no longer matches (the request was failed over in the
    meantime) is discarded — so a future can never resolve twice, and a
    zombie replica finishing a batch after its death cannot overwrite a
    failover's result.
    """

    request_id: int
    matrix: np.ndarray
    shape: tuple[int, int]
    priority: int
    deadline: float | None
    arrival: float
    future: SVDFuture
    epoch: int = 0
    attempts: int = 0
    done: bool = False
    tried: list = field(default_factory=list)


class _ReplicaEngine:
    """Engine shim dispatching one replica's fused batches.

    Sits between the replica's :class:`~repro.serve.server.SVDServer`
    and its real :class:`~repro.jacobi.batched.BatchedJacobiEngine`, and
    is the injection point for ``replica_kill`` chaos: the fault hook
    runs *after* a fused batch left the micro-batcher and *before* the
    solve, so an armed clause kills the replica exactly mid-batch — the
    failover scenario worth testing.
    """

    def __init__(
        self, inner, replica: "_Replica", manager: "ReplicaManager"
    ) -> None:
        self._inner = inner
        self._replica = replica
        self._manager = manager
        self._dispatches = 0

    def svd_batch(self, matrices, *, on_failure=None):
        self._dispatches += 1
        # The kill budget (``attempts``) is cluster-wide: without that, a
        # p=1.0 clause would chase the failed-over batch from replica to
        # replica and kill the whole fleet instead of testing failover.
        faults.on_replica_dispatch(
            self._replica.name,
            dispatch=self._dispatches,
            prior_kills=self._manager.kills,
        )
        return self._inner.svd_batch(matrices, on_failure=on_failure)

    @property
    def last_failures(self):
        return self._inner.last_failures


class _Replica:
    """One supervised replica: server + executor + health bookkeeping.

    All mutable fields are guarded by the manager's cluster lock (writes
    in ``__init__`` happen before the instance is published).
    """

    def __init__(self, name: str, index: int, generation: int) -> None:
        self.name = name
        self.index = index
        self.generation = generation
        self.state = HEALTHY
        self.server: SVDServer | None = None
        self.executor: Executor | None = None
        self.ns_root = ""
        self.consecutive_failures = 0
        self.probe_successes = 0
        self.kills = 0
        self.routed = 0
        self.died_at: float | None = None
        self.outstanding: dict[int, _ClusterRequest] = {}
        self.transitions: list[tuple[float, str]] = []

    @property
    def routable(self) -> bool:
        return self.state in _ROUTABLE

    @property
    def load(self) -> int:
        return len(self.outstanding)


class _HashRing:
    """Consistent-hash ring over a fixed replica-name set.

    Membership is the set of replica *names*, which is stable across
    kill/revive generations — liveness is a state filter at routing
    time, not a ring mutation — so a shape's home replica never moves
    unless the topology itself changes.
    """

    def __init__(self, names: list[str], virtual_nodes: int) -> None:
        tokens: list[tuple[int, str]] = []
        for name in names:
            for v in range(virtual_nodes):
                tokens.append((_hash64(f"{name}#vn{v}"), name))
        tokens.sort()
        self._tokens = tokens

    def candidates(self, shape: tuple[int, int]) -> list[str]:
        """All replica names in ring order starting at ``shape``'s hash."""
        key = _hash64(f"{shape[0]}x{shape[1]}")
        start = 0
        for i, (token, _) in enumerate(self._tokens):
            if token >= key:
                start = i
                break
        seen: list[str] = []
        count = len(self._tokens)
        for i in range(count):
            name = self._tokens[(start + i) % count][1]
            if name not in seen:
                seen.append(name)
        return seen


@dataclass(frozen=True)
class ReplicaStats:
    """Snapshot of one replica's supervision state."""

    name: str
    state: str
    generation: int
    routed: int
    inflight: int
    kills: int
    consecutive_failures: int
    server: ServerStats | None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "generation": self.generation,
            "routed": self.routed,
            "inflight": self.inflight,
            "kills": self.kills,
            "consecutive_probe_failures": self.consecutive_failures,
            "server": None if self.server is None else self.server.as_dict(),
        }


@dataclass(frozen=True)
class ClusterStats:
    """Immutable snapshot of the cluster: router counters + per-replica.

    ``router`` reuses the :class:`~repro.serve.stats.ServerStats` shape
    for the cluster-level request ledger (submitted/completed/failed/
    rejected counters and end-to-end latency quantiles *including*
    failover time); its batch histograms stay empty — fusing happens
    inside the replicas, whose own snapshots ride along in
    ``replicas``.
    """

    router: ServerStats
    replicas: tuple[ReplicaStats, ...]
    failovers: int
    overload_reroutes: int
    kills: int
    revivals: int
    drains: int

    @property
    def states(self) -> dict[str, str]:
        return {r.name: r.state for r in self.replicas}

    @property
    def live_replicas(self) -> int:
        return sum(1 for r in self.replicas if r.state in _ROUTABLE)

    def as_dict(self) -> dict:
        return {
            "router": self.router.as_dict(),
            "failovers": self.failovers,
            "overload_reroutes": self.overload_reroutes,
            "kills": self.kills,
            "revivals": self.revivals,
            "drains": self.drains,
            "replicas": {r.name: r.as_dict() for r in self.replicas},
        }

    def summary(self) -> str:
        lines = [
            f"cluster: {self.live_replicas}/{len(self.replicas)} replicas "
            f"live; {self.failovers} failover(s), {self.kills} kill(s), "
            f"{self.revivals} revival(s), {self.drains} drain(s), "
            f"{self.overload_reroutes} overload re-route(s)",
        ]
        for r in self.replicas:
            routedno = f"{r.routed} routed"
            lines.append(
                f"  {r.name} [{r.state} g{r.generation}]: {routedno}, "
                f"{r.inflight} in flight, {r.kills} kill(s)"
            )
        lines.append(self.router.summary())
        return "\n".join(lines)


class ReplicaManager:
    """Supervisor of the replica fleet: spawn, probe, kill, revive, drain.

    Owns the cluster lock, the replicas, and their lifecycles. The
    router (:class:`ShardRouter`) shares the lock and registers itself
    so death events can fail outstanding requests over.

    Parameters
    ----------
    config:
        Cluster knobs (:class:`ClusterConfig`).
    runtime:
        Per-replica executor spec — a :class:`~repro.runtime.
        RuntimeConfig`, backend name, or ``None`` (a resilient serial
        executor in quarantine mode). Each replica builds its **own**
        executor from the spec; passing a live :class:`~repro.runtime.
        executor.Executor` is rejected because sharing one pool across
        replicas would collapse exactly the isolation the cluster
        exists for.
    server_factory:
        Test hook: ``factory(name, clock, start) -> SVDServer`` replaces
        the default replica build (engine wrapper + own executor).
    clock:
        Injectable monotonic-seconds callable shared by the manager,
        the router, and every replica server.
    start:
        Start replica dispatch threads and the supervisor probe thread.
        ``False`` = manual drive via :meth:`poll_health` / the facade's
        :meth:`SVDCluster.poll`.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        runtime: RuntimeConfig | str | None = None,
        server_factory=None,
        clock=None,
        start: bool = True,
    ) -> None:
        self.config = config or ClusterConfig()
        if isinstance(runtime, Executor):
            raise ConfigurationError(
                "runtime must be a RuntimeConfig (or backend name), not a "
                "live Executor: replicas need disjoint executors, or a "
                "dead replica would take the shared pool down with it"
            )
        self._runtime = runtime
        self._server_factory = server_factory
        self._clock = clock if clock is not None else time.monotonic
        self._start_servers = start
        self._lock = threading.RLock()
        self._replicas: dict[str, _Replica] = {}
        self._router: "ShardRouter | None" = None
        self._closed = False
        self.kills = 0
        self.revivals = 0
        self.drains = 0
        self._reapers: list[threading.Thread] = []
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        for i in range(self.config.replicas):
            replica = self._build(f"replica-{i}", i, generation=0)
            self._replicas[replica.name] = replica
        if start:
            self._supervisor = threading.Thread(
                target=self._supervise,
                name="repro-cluster-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # -- construction ------------------------------------------------------

    def _build(self, name: str, index: int, generation: int) -> _Replica:
        """Build one replica (server + executor); not yet published."""
        replica = _Replica(name, index, generation)
        replica.ns_root = f"rpsrv{os.getpid()}r{index}g{generation}"
        if self._server_factory is not None:
            replica.server = self._server_factory(
                name, self._clock, self._start_servers
            )
            return replica
        spec = (
            self._runtime
            if self._runtime is not None
            else RuntimeConfig(on_failure="quarantine")
        )
        executor = get_executor(spec)
        if isinstance(executor, ResilientExecutor):
            # Replica-scoped segment naming: every namespace this
            # executor's tasks ever use starts with the replica's root,
            # so death-time reclamation sweeps exactly this replica.
            executor.namespace_root = replica.ns_root
        replica.executor = executor
        engine = _ReplicaEngine(
            BatchedJacobiEngine(executor=executor), replica, self
        )
        replica.server = SVDServer(
            self.config.serve,
            engine=engine,
            clock=self._clock,
            start=self._start_servers,
        )
        return replica

    # -- introspection -----------------------------------------------------

    @property
    def clock(self):
        return self._clock

    @property
    def lock(self) -> threading.RLock:
        return self._lock

    def replica_names(self) -> list[str]:
        return list(self._replicas)

    def states(self) -> dict[str, str]:
        with self._lock:
            return {name: r.state for name, r in self._replicas.items()}

    def _now(self, now: float | None) -> float:
        return self._clock() if now is None else now

    def _transition(self, replica: _Replica, state: str, now: float) -> None:
        if replica.state == state:
            return
        _log.event(
            "cluster.state",
            replica=replica.name,
            frm=replica.state,
            to=state,
        )
        replica.state = state
        replica.transitions.append((now, state))

    # -- health probes -----------------------------------------------------

    def poll_health(self, now: float | None = None) -> dict[str, str]:
        """Run one probe cycle; returns the post-cycle state map.

        Probes every supervisable replica, walks the circuit breaker
        (``healthy → degraded → dead``), re-admits dead replicas whose
        probation elapsed, and promotes re-admitted replicas that passed
        enough consecutive probes. Death and revival actions run after
        the probe scan (outside the per-replica bookkeeping) because
        both touch other replicas — failover routes to survivors.
        """
        deaths: list[str] = []
        revivals: list[str] = []
        with self._lock:
            if self._closed:
                return {n: r.state for n, r in self._replicas.items()}
            stamp = self._now(now)
            for replica in self._replicas.values():
                if replica.state in (DRAINING, RETIRED):
                    continue
                if replica.state == DEAD:
                    if (
                        self.config.revive
                        and replica.died_at is not None
                        and (stamp - replica.died_at)
                        >= self.config.probation_ms / 1e3
                    ):
                        revivals.append(replica.name)
                    continue
                ok = (
                    replica.server is not None and replica.server.ping()
                )
                if ok:
                    replica.consecutive_failures = 0
                    if replica.state == DEGRADED:
                        replica.probe_successes += 1
                        if (
                            replica.probe_successes
                            >= self.config.probation_successes
                        ):
                            replica.probe_successes = 0
                            self._transition(replica, HEALTHY, stamp)
                    continue
                replica.probe_successes = 0
                replica.consecutive_failures += 1
                if replica.consecutive_failures >= self.config.fail_dead:
                    deaths.append(replica.name)
                elif (
                    replica.state == HEALTHY
                    and replica.consecutive_failures
                    >= self.config.fail_degraded
                ):
                    self._transition(replica, DEGRADED, stamp)
        for name in deaths:
            self.kill(
                name,
                now=now,
                cause=ReplicaDeadError(
                    f"replica {name} failed {self.config.fail_dead} "
                    f"consecutive health probes",
                    replica=name,
                ),
            )
        for name in revivals:
            self.revive(name, now=now)
        with self._lock:
            return {n: r.state for n, r in self._replicas.items()}

    def _supervise(self) -> None:
        """Background probe loop (started with ``start=True``)."""
        interval = self.config.probe_interval_ms / 1e3
        while not self._stop.wait(interval):
            self.poll_health()

    # -- death and revival -------------------------------------------------

    def kill(
        self,
        name: str,
        *,
        now: float | None = None,
        cause: BaseException | None = None,
    ) -> None:
        """Declare a replica dead right now (abrupt failure, idempotent).

        Marks it ``dead``, strands its outstanding requests over to the
        router's failover (epoch-bumped, so the dead replica's late
        completions are discarded), tears its server and executor down on
        a reaper thread (a kill must never block on the corpse), and
        reclaims its replica-scoped shared-memory namespace.
        """
        with self._lock:
            replica = self._replicas[name]
            if replica.state in (DEAD, RETIRED):
                return
            stamp = self._now(now)
            self._transition(replica, DEAD, stamp)
            replica.died_at = stamp
            replica.kills += 1
            self.kills += 1
            stranded = list(replica.outstanding.values())
            replica.outstanding.clear()
            for creq in stranded:
                creq.epoch += 1
            server, executor = replica.server, replica.executor
            replica.server = None
            replica.executor = None
            ns_root = replica.ns_root
            router = self._router
        _log.event(
            "cluster.kill",
            replica=name,
            stranded=len(stranded),
            cause="" if cause is None else type(cause).__name__,
        )
        self._teardown_async(name, server, executor, ns_root)
        if stranded and router is not None:
            error = cause if cause is not None else ReplicaDeadError(
                f"replica {name} died holding {len(stranded)} request(s)",
                replica=name,
            )
            router.failover(stranded, error, now=now)

    def revive(self, name: str, *, now: float | None = None) -> None:
        """Re-admit a dead replica on probation (``degraded``).

        Builds a fresh generation — new server, new executor, new
        replica-scoped namespace — and installs it as ``degraded``;
        ``probation_successes`` consecutive healthy probes promote it.
        The old generation's stats died with its server: the new window
        starts empty, which the stats layer degrades to NaN quantiles.
        """
        built: _Replica | None = None
        with self._lock:
            replica = self._replicas[name]
            if replica.state != DEAD or self._closed:
                return
            generation = replica.generation + 1
            index = replica.index
        # Build outside the lock: spawning an executor (fork workers,
        # arena pinning) is slow and must not stall routing or probes.
        built = self._build(name, index, generation)
        with self._lock:
            replica = self._replicas[name]
            if replica.state != DEAD or self._closed:
                discard = built
                built = None
            else:
                stamp = self._now(now)
                built.kills = replica.kills
                built.routed = replica.routed
                built.transitions = replica.transitions
                built.state = DEAD
                self._replicas[name] = built
                self._transition(built, DEGRADED, stamp)
                self.revivals += 1
        if built is None:
            # Lost the race (closed, or concurrently revived): drop the
            # freshly built generation without ceremony.
            self._teardown_async(
                name, discard.server, discard.executor, discard.ns_root
            )
            return
        _log.event("cluster.revive", replica=name, generation=generation)

    def _teardown_async(
        self,
        name: str,
        server: SVDServer | None,
        executor: Executor | None,
        ns_root: str,
    ) -> None:
        """Close a dead generation's resources on a reaper thread.

        The close can block (the server joins its dispatch thread, which
        may be mid-solve; the executor terminates workers), so it must
        not run under the cluster lock or on a probe/callback path.
        :meth:`close` joins the reapers so nothing outlives the cluster.
        """

        def reap() -> None:
            try:
                if server is not None:
                    server.close(drain=False)
            finally:
                if executor is not None:
                    executor.close()
                shm.reclaim(ns_root)

        reaper = threading.Thread(
            target=reap, name=f"repro-cluster-reaper-{name}", daemon=True
        )
        with self._lock:
            self._reapers.append(reaper)
        reaper.start()

    # -- draining ----------------------------------------------------------

    def drain_replica(self, name: str, *, now: float | None = None) -> None:
        """Gracefully retire one replica.

        Stops routing to it (state ``draining``), completes every
        request it holds — queued and in flight — then closes it and
        reclaims its resources (state ``retired``). At least one other
        routable replica must exist: the router must reject nothing
        during the drain.
        """
        with self._lock:
            replica = self._replicas[name]
            if not replica.routable:
                raise ConfigurationError(
                    f"cannot drain replica {name!r} in state "
                    f"{replica.state!r}"
                )
            survivors = [
                r for r in self._replicas.values()
                if r.name != name and r.routable
            ]
            if not survivors:
                raise ConfigurationError(
                    f"cannot drain {name!r}: it is the last routable "
                    f"replica and the router would have to reject traffic"
                )
            self._transition(replica, DRAINING, self._now(now))
            server, executor = replica.server, replica.executor
            ns_root = replica.ns_root
        _log.event("cluster.drain", replica=name)
        # Outside the lock: drain waits for in-flight completions, whose
        # callbacks need the cluster lock to resolve outer futures.
        if server is not None:
            server.drain()
            server.close()
        if executor is not None:
            executor.close()
        shm.reclaim(ns_root)
        with self._lock:
            replica = self._replicas[name]
            replica.server = None
            replica.executor = None
            replica.outstanding.clear()
            self._transition(replica, RETIRED, self._now(now))
            self.drains += 1

    # -- shutdown ----------------------------------------------------------

    def close(self, *, drain: bool = True) -> None:
        """Shut the whole fleet down (idempotent).

        With ``drain=True`` every replica completes its admitted work
        first; with ``drain=False`` queued requests fail (and the router
        surfaces the failure — failover is off during shutdown). Joins
        the reaper threads of previously killed generations, so when
        ``close`` returns nothing of the cluster still runs and no
        segment of any generation is left behind.
        """
        with self._lock:
            if self._closed:
                pairs = []
            else:
                self._closed = True
                pairs = [
                    (r.server, r.executor, r.ns_root)
                    for r in self._replicas.values()
                ]
                for r in self._replicas.values():
                    r.server = None
                    r.executor = None
        self._stop.set()
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            supervisor.join(timeout=10.0)
        for server, executor, ns_root in pairs:
            if server is not None:
                server.close(drain=drain)
            if executor is not None:
                executor.close()
            shm.reclaim(ns_root)
        with self._lock:
            reapers, self._reapers = self._reapers, []
        for reaper in reapers:
            reaper.join(timeout=10.0)
        if pairs:
            _log.event("cluster.close", replicas=len(pairs), drained=drain)


class ShardRouter:
    """Shape-bucket consistent-hash router over a replica fleet.

    The router is the cluster's request path: it owns the hash ring, the
    cluster-level request ledger, and failover. It deliberately has no
    thread of its own — submissions run on caller threads, completions
    run on replica dispatch threads, and the manager's supervisor drives
    health — so there is no router bottleneck to shard next.
    """

    def __init__(self, manager: ReplicaManager) -> None:
        self.manager = manager
        self._lock = manager.lock
        self._ring = _HashRing(
            manager.replica_names(), manager.config.virtual_nodes
        )
        self._stats = _StatsAccumulator(
            window=manager.config.serve.stats_window
        )
        self._next_id = 0
        self._open = 0
        self.failovers = 0
        self.overload_reroutes = 0
        manager._router = self

    # -- intake ------------------------------------------------------------

    def submit(
        self,
        matrix: np.ndarray,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> SVDFuture:
        """Admit one request; route it to a replica; return its future.

        Same contract as :meth:`SVDServer.submit` — including validation
        at admission and explicit backpressure — plus routing:

        - candidates come from the consistent ring at the request's
          shape bucket, healthy before degraded;
        - among the first ``tie_candidates`` the least-loaded wins;
        - a replica that rejects with
          :class:`~repro.errors.ServerOverloaded` is skipped for the
          next candidate; only when **every** routable replica rejected
          does the router raise a cluster-level ``ServerOverloaded``
          naming them all;
        - with no routable replica at all,
          :class:`~repro.errors.ReplicaDeadError` is raised.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline_ms must be > 0, got {deadline_ms}"
            )
        arr = as_matrix(matrix, name="matrix")
        shape = (arr.shape[0], arr.shape[1])
        with self._lock:
            if self.manager._closed:
                raise ServerClosed(
                    "cluster is closed; no new requests are admitted"
                )
            now = self.manager.clock()
            creq = _ClusterRequest(
                request_id=self._next_id,
                matrix=arr,
                shape=shape,
                priority=int(priority),
                deadline=(
                    None if deadline_ms is None else now + deadline_ms / 1e3
                ),
                arrival=now,
                future=SVDFuture(self._next_id, shape),
            )
            self._next_id += 1
            self._stats.submitted += 1
            self._open += 1
            try:
                self._route(creq, now, exclude=())
            except ServerOverloaded:
                self._open -= 1
                self._stats.rejected += 1
                raise
            except Exception:
                self._open -= 1
                raise
        return creq.future

    # -- routing core ------------------------------------------------------

    def _ordered_candidates(
        self, shape: tuple[int, int], exclude: tuple[str, ...]
    ) -> list[_Replica]:
        """Routable replicas in routing preference order (caller holds
        the lock): ring order, healthy before degraded, the first
        ``tie_candidates`` re-ordered least-loaded-first."""
        replicas = self.manager._replicas
        ringed = [
            replicas[name]
            for name in self._ring.candidates(shape)
            if name not in exclude and replicas[name].routable
        ]
        healthy = [r for r in ringed if r.state == HEALTHY]
        pool = healthy if healthy else ringed
        k = self.manager.config.tie_candidates
        head = sorted(
            range(min(k, len(pool))), key=lambda i: (pool[i].load, i)
        )
        return [pool[i] for i in head] + pool[min(k, len(pool)):]

    def _route(
        self,
        creq: _ClusterRequest,
        now: float,
        *,
        exclude: tuple[str, ...],
    ) -> None:
        """Assign ``creq`` to the best candidate (caller holds the lock).

        Raises the terminal routing error (no replicas / all overloaded)
        — callers on the submit path propagate it to the submitter;
        failover catches it and fails the outer future instead.
        """
        candidates = self._ordered_candidates(creq.shape, exclude)
        if not candidates and exclude:
            # Every survivor was already tried for this request; allow
            # re-trying one rather than failing a retryable request.
            candidates = self._ordered_candidates(creq.shape, ())
        if not candidates:
            raise ReplicaDeadError(
                f"no live replicas to route a "
                f"{creq.shape[0]}x{creq.shape[1]} request to "
                f"(states: {self.manager.states()})"
            )
        overloaded: list[ServerOverloaded] = []
        for replica in candidates:
            remaining_ms = None
            if creq.deadline is not None:
                remaining_ms = max((creq.deadline - now) * 1e3, 0.0) or None
            try:
                assert replica.server is not None
                inner = replica.server.submit(
                    creq.matrix,
                    priority=creq.priority,
                    deadline_ms=remaining_ms,
                )
            except ServerOverloaded as exc:
                overloaded.append(exc)
                self.overload_reroutes += 1
                continue
            except ServerClosed:
                # Lost a race with a concurrent kill/drain of this
                # candidate; the next candidate takes it.
                continue
            replica.routed += 1
            replica.outstanding[creq.request_id] = creq
            creq.tried.append(replica.name)
            token = creq.epoch
            _log.event(
                "cluster.route",
                id=creq.request_id,
                shape=creq.shape,
                replica=replica.name,
                attempt=creq.attempts,
            )
            inner.add_done_callback(
                lambda fut, c=creq, r=replica.name, t=token: (
                    self._on_inner(c, r, t, fut)
                )
            )
            return
        tried = tuple(r.name for r in candidates)
        raise ServerOverloaded(
            f"all {len(candidates)} routable replica(s) rejected a "
            f"{creq.shape[0]}x{creq.shape[1]} request "
            f"({', '.join(tried)}); retry later or raise max_pending",
            pending=sum(exc.pending for exc in overloaded),
            capacity=sum(exc.capacity for exc in overloaded),
            replicas=tried,
        ) from (overloaded[-1] if overloaded else None)

    # -- completion and failover ------------------------------------------

    def _on_inner(
        self,
        creq: _ClusterRequest,
        replica_name: str,
        token: int,
        inner,
    ) -> None:
        """Done-callback of one replica-side future.

        Runs on the replica's dispatch thread (or the manual driver).
        Stale tokens — the request was failed over while this replica
        was still working — are discarded, which is what makes "resolves
        exactly once" structural rather than best-effort.
        """
        resolve: tuple[str, object] | None = None
        with self._lock:
            if creq.done or token != creq.epoch:
                return
            exc = inner.exception()
            replica = self.manager._replicas.get(replica_name)
            if (
                exc is not None
                and isinstance(exc, ReplicaDeadError)
                and not self.manager._closed
                and replica is not None
                and replica.state not in (DEAD, RETIRED)
            ):
                # A death signal from inside the replica (injected
                # replica_kill, or a dispatch path that found its host
                # gone): the manager strands and fails over EVERY
                # outstanding request of the replica — including this
                # one; our epoch token goes stale in the process.
                self.manager.kill(replica_name, cause=exc)
                return
            if replica is not None:
                replica.outstanding.pop(creq.request_id, None)
            if exc is None:
                creq.done = True
                self._note_done(creq, failed=False)
                if replica is not None:
                    replica.consecutive_failures = 0
                resolve = ("ok", inner.result())
            elif (
                _retryable(exc)
                and not self.manager._closed
                and creq.attempts < self.manager.config.max_failovers
            ):
                if replica is not None and replica.routable:
                    # An infrastructure failure escaping a replica's own
                    # resilient retries is a health signal too.
                    replica.consecutive_failures += 1
                self._failover_locked(creq, exc)
                return
            else:
                creq.done = True
                self._note_done(creq, failed=True)
                resolve = ("err", exc)
        kind, payload = resolve
        if kind == "ok":
            creq.future.set_result(payload)
        else:
            creq.future.set_exception(payload)

    def failover(
        self,
        requests: list,
        cause: BaseException,
        *,
        now: float | None = None,
    ) -> None:
        """Re-route requests stranded by a replica death.

        Infrastructure causes re-route (budget permitting); the retried
        solve is bit-identical because every replica runs the same
        engine configuration. Non-retryable causes — and requests whose
        failover budget is spent, or a cluster mid-shutdown — resolve
        their futures with the cause instead. Each future still resolves
        exactly once.
        """
        with self._lock:
            for creq in requests:
                if creq.done:
                    continue
                self._failover_locked(creq, cause, now=now)

    def _failover_locked(
        self,
        creq: _ClusterRequest,
        cause: BaseException,
        *,
        now: float | None = None,
    ) -> None:
        """Re-route (or terminally fail) one request; caller holds the
        lock. The epoch bump invalidates the dead assignment's callback
        before the new assignment exists, closing the double-resolve
        window completely."""
        creq.epoch += 1
        failures: BaseException | None = None
        if (
            _retryable(cause)
            and not self.manager._closed
            and creq.attempts < self.manager.config.max_failovers
        ):
            creq.attempts += 1
            self.failovers += 1
            stamp = self.manager._now(now)
            try:
                self._route(creq, stamp, exclude=tuple(creq.tried))
            except Exception as exc:  # repro: noqa[EXC01] terminal routing
                # failure (no live replicas / all overloaded): the
                # request's future takes it below — never swallowed.
                failures = exc
            else:
                _log.event(
                    "cluster.failover",
                    id=creq.request_id,
                    attempt=creq.attempts,
                    cause=type(cause).__name__,
                )
                return
        creq.done = True
        self._note_done(creq, failed=True)
        creq.future.set_exception(failures if failures is not None else cause)

    # -- accounting --------------------------------------------------------

    def _note_done(self, creq: _ClusterRequest, *, failed: bool) -> None:
        """Close out one request in the ledger (caller holds the lock).

        The recorded latency is end-to-end — cluster admission to outer
        resolution — so failover time shows up in the cluster quantiles
        even though each replica's own window only saw its attempt.
        """
        self._open -= 1
        latency = self.manager.clock() - creq.arrival
        self._stats.note_completion(latency, failed=failed)

    # -- observability -----------------------------------------------------

    def stats(self) -> ClusterStats:
        with self._lock:
            replicas = []
            for r in self.manager._replicas.values():
                server_stats = (
                    r.server.stats() if r.server is not None else None
                )
                replicas.append(
                    ReplicaStats(
                        name=r.name,
                        state=r.state,
                        generation=r.generation,
                        routed=r.routed,
                        inflight=r.load,
                        kills=r.kills,
                        consecutive_failures=r.consecutive_failures,
                        server=server_stats,
                    )
                )
            pending = sum(
                s.server.pending for s in replicas if s.server is not None
            )
            router = self._stats.snapshot(
                pending=pending, inflight=self._open
            )
            return ClusterStats(
                router=router,
                replicas=tuple(replicas),
                failovers=self.failovers,
                overload_reroutes=self.overload_reroutes,
                kills=self.manager.kills,
                revivals=self.manager.revivals,
                drains=self.manager.drains,
            )


class SVDCluster:
    """Facade: a replica fleet that quacks like one ``SVDServer``.

    Builds the :class:`ReplicaManager` and :class:`ShardRouter` pair and
    exposes the single-server surface — ``submit`` / ``poll`` /
    ``drain`` / ``stats`` / ``close`` / context manager / ``clock`` — so
    everything written against a server (the client, the load generator,
    the chaos suites) drives a cluster unchanged. Cluster-only verbs
    (``kill_replica``, ``drain_replica``, ``replica_states``) ride on
    top.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        runtime: RuntimeConfig | str | None = None,
        server_factory=None,
        clock=None,
        start: bool = True,
    ) -> None:
        self.manager = ReplicaManager(
            config,
            runtime=runtime,
            server_factory=server_factory,
            clock=clock,
            start=start,
        )
        self.router = ShardRouter(self.manager)

    # -- the single-server surface ----------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self.manager.config

    @property
    def clock(self):
        return self.manager.clock

    def submit(
        self,
        matrix: np.ndarray,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
    ) -> SVDFuture:
        """Route one request into the fleet (see :meth:`ShardRouter.submit`)."""
        return self.router.submit(
            matrix, priority=priority, deadline_ms=deadline_ms
        )

    def poll(self, now: float | None = None) -> int:
        """Manually drive a ``start=False`` cluster one cycle.

        Runs one dispatch cycle on every live replica server, then one
        health-probe cycle — the deterministic-test equivalent of the
        replica threads plus the supervisor thread. Returns the number
        of requests dispatched across the fleet this cycle.
        """
        with self.manager.lock:
            servers = [
                r.server
                for r in self.manager._replicas.values()
                if r.server is not None and r.state in _ROUTABLE
            ]
        dispatched = 0
        for server in servers:
            dispatched += server.poll()
        self.manager.poll_health(now)
        return dispatched

    def drain(self) -> None:
        """Flush and complete everything currently admitted, fleet-wide."""
        with self.manager.lock:
            servers = [
                r.server
                for r in self.manager._replicas.values()
                if r.server is not None and r.state in _ROUTABLE
            ]
        for server in servers:
            server.drain()

    def stats(self) -> ClusterStats:
        return self.router.stats()

    def reset_stats(self) -> None:
        """Start a fresh monitoring epoch: router ledger and every live
        replica window reset together (quantiles degrade to NaN until
        the next completion)."""
        with self.manager.lock:
            self.router._stats.reset()
            for r in self.manager._replicas.values():
                if r.server is not None:
                    r.server.reset_stats()

    def close(self, *, drain: bool = True) -> None:
        self.manager.close(drain=drain)

    def __enter__(self) -> "SVDCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cluster-only verbs ------------------------------------------------

    def kill_replica(self, name: str) -> None:
        """Abruptly kill one replica (outstanding requests fail over)."""
        self.manager.kill(name)

    def drain_replica(self, name: str) -> None:
        """Gracefully retire one replica (see
        :meth:`ReplicaManager.drain_replica`)."""
        self.manager.drain_replica(name)

    def poll_health(self, now: float | None = None) -> dict[str, str]:
        """Run one health-probe cycle; returns the state map."""
        return self.manager.poll_health(now)

    def replica_states(self) -> dict[str, str]:
        return self.manager.states()
