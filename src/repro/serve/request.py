"""Request and future types of the serving layer.

A :class:`ServeRequest` is one admitted unit of work: the validated
matrix, the scheduling metadata the micro-batcher orders it by (priority,
absolute deadline, arrival stamp, admission sequence number), and the
:class:`SVDFuture` the caller holds. Every timestamp is a reading of the
owning server's injected clock — the serving layer never consults the
wall clock directly, so batch timing is a pure function of the clock it
was given (deterministic under a fake clock, monotonic in production).
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.types import SVDResult

__all__ = ["ServeRequest", "SVDFuture"]


class SVDFuture(Future):
    """A :class:`concurrent.futures.Future` resolving to an
    :class:`~repro.types.SVDResult`, annotated with its request identity.

    Attributes
    ----------
    request_id:
        The server-assigned id (unique per server lifetime). Failure
        exceptions raised out of a fused batch name this id, never the
        request's transient position inside the fused stack.
    shape:
        ``(m, n)`` of the submitted matrix.
    """

    def __init__(self, request_id: int, shape: tuple[int, int]) -> None:
        super().__init__()
        self.request_id = int(request_id)
        self.shape = (int(shape[0]), int(shape[1]))

    def __repr__(self) -> str:
        m, n = self.shape
        return (
            f"<SVDFuture id={self.request_id} shape={m}x{n} "
            f"state={self._state}>"
        )


@dataclass
class ServeRequest:
    """One admitted SVD request, as the micro-batcher sees it.

    Attributes
    ----------
    request_id:
        Server-assigned id; also the admission sequence (monotonically
        increasing), so equal-priority equal-deadline requests dequeue
        FIFO.
    matrix:
        The validated float64 matrix (validated at admission so a
        malformed request fails in the caller's ``submit``, never inside
        a fused batch holding other callers' work).
    priority:
        Higher dispatches sooner within a shape bucket (default 0).
    deadline:
        Absolute clock reading by which the caller wants the result, or
        ``None``. Orders the bucket queue (earliest-deadline-first within
        a priority band) and adds flush pressure as it approaches; it is
        scheduling advice, not an SLA — late requests still complete.
    arrival:
        Clock reading at admission; the ``max_wait`` flush trigger and
        latency statistics measure from here.
    """

    request_id: int
    matrix: np.ndarray
    priority: int
    deadline: float | None
    arrival: float
    future: SVDFuture = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.future is None:
            self.future = SVDFuture(
                self.request_id,
                (self.matrix.shape[0], self.matrix.shape[1]),
            )

    @property
    def shape(self) -> tuple[int, int]:
        return (self.matrix.shape[0], self.matrix.shape[1])

    def sort_key(self) -> tuple[float, float, int]:
        """Heap key: priority descending, then EDF, then admission order."""
        deadline = float("inf") if self.deadline is None else self.deadline
        return (-float(self.priority), deadline, self.request_id)

    def resolve(self, result: SVDResult) -> None:
        self.future.set_result(result)

    def fail(self, exc: BaseException) -> None:
        self.future.set_exception(exc)
