"""``repro-serve`` — drive the serving broker from the command line.

Starts an in-process serving target — one
:class:`~repro.serve.server.SVDServer`, or with ``--replicas N > 1`` a
whole :class:`~repro.serve.cluster.SVDCluster` (N supervised replicas
behind the health-checked shard router) — runs the closed-loop load
generator against it, and prints the statistics snapshot (queue depth,
batch-fill histogram, latency quantiles; plus replica states, failovers,
and drains for a cluster). Also reachable as ``python -m repro serve
...`` and as the ``repro-serve`` console script.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

__all__ = ["main", "build_parser", "run_serve", "parse_shape_mix"]


def _default_backend() -> str:
    """Serial, unless ``REPRO_RUNTIME_BACKEND`` names another backend —
    the env hook must reach the serve CLI like every other entry point
    that passes no explicit spec.

    argparse never validates a *default* against ``choices``, so a typo
    in the env var is rejected here as a clean usage error."""
    from repro.runtime import BACKENDS, BACKEND_ENV_VAR

    name = os.environ.get(BACKEND_ENV_VAR, "").strip()
    if not name:
        return "serial"
    if name not in BACKENDS:
        raise SystemExit(
            f"repro-serve: {BACKEND_ENV_VAR}={name!r} is not a recognized "
            f"backend; expected one of: {', '.join(BACKENDS)}"
        )
    return name


def parse_shape_mix(text: str) -> tuple[tuple[int, int], ...]:
    """Parse ``"16x8,24x12,32"`` into a shape mix (``"32"`` = square)."""
    shapes = []
    for token in text.split(","):
        token = token.strip().lower()
        if not token:
            continue
        parts = token.split("x")
        try:
            if len(parts) == 1:
                n = int(parts[0])
                shapes.append((n, n))
            else:
                m, n = (int(p) for p in parts)
                shapes.append((m, n))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"shape mix must look like '16x8,24x12,32', got {text!r}"
            ) from None
    if not shapes:
        raise argparse.ArgumentTypeError("shape mix must name a shape")
    return tuple(shapes)


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """The serving options, shared by ``repro-serve`` and ``repro serve``."""
    parser.add_argument(
        "--requests", type=int, default=200,
        help="total requests the load generator submits (default 200)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=16,
        help="closed-loop client threads (default 16)",
    )
    parser.add_argument(
        "--shapes", type=parse_shape_mix, default=((16, 8), (24, 12), (32, 16)),
        help="comma-separated shape mix, e.g. 16x8,24x12,32 "
        "(default 16x8,24x12,32x16)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=32,
        help="largest fused batch per shape bucket (default 32)",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="longest a request waits for co-batchable traffic "
        "(default 2.0; 0 = one-at-a-time)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=1024,
        help="bounded-queue depth; beyond it submits are rejected "
        "with ServerOverloaded (default 1024)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-request relative deadline (EDF ordering + flush "
        "pressure; default none)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="engine executor workers (must not exceed os.cpu_count())",
    )
    parser.add_argument(
        "--backend", choices=("serial", "threads", "processes", "persistent"),
        default=_default_backend(),
        help="engine executor backend (default serial, or "
        "$REPRO_RUNTIME_BACKEND when set)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--verify-every", type=int, default=0,
        help="spot-check every n-th completion against a standalone "
        "solve (bitwise; default off)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="server replicas; > 1 serves through the health-checked "
        "shard-router cluster (default 1 = a single server)",
    )
    parser.add_argument(
        "--probe-interval-ms", type=float, default=50.0,
        help="cluster health-probe period (default 50.0; only with "
        "--replicas > 1)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Batched-SVD serving broker: dynamic micro-batching "
        "over the W-Cycle SVD engine",
    )
    add_serve_arguments(parser)
    return parser


def run_serve(args: argparse.Namespace) -> int:
    """Build the serving target from parsed args, run the load, print
    stats. ``--replicas N > 1`` swaps the single server for a cluster;
    everything else — traffic, verification, reporting — is identical,
    because the load generator only touches the shared surface."""
    from repro.errors import ConfigurationError
    from repro.runtime import RuntimeConfig
    from repro.serve.cluster import ClusterConfig, SVDCluster
    from repro.serve.loadgen import LoadSpec, run_closed_loop
    from repro.serve.server import ServeConfig, SVDServer

    if args.workers > 1 and args.backend == "serial":
        raise ConfigurationError(
            f"--workers {args.workers} requires a parallel backend; add "
            f"--backend threads, --backend processes, or "
            f"--backend persistent"
        )
    if args.replicas < 1:
        raise ConfigurationError(
            f"--replicas must be >= 1, got {args.replicas}"
        )
    runtime = RuntimeConfig(
        backend=args.backend,
        workers=args.workers,
        on_failure="quarantine",
    )
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_pending=args.max_pending,
    )
    spec = LoadSpec(
        requests=args.requests,
        concurrency=args.concurrency,
        shapes=args.shapes,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        verify_every=args.verify_every,
    )
    if args.replicas > 1:
        cluster_config = ClusterConfig(
            replicas=args.replicas,
            probe_interval_ms=args.probe_interval_ms,
            serve=config,
        )
        with SVDCluster(cluster_config, runtime=runtime) as target:
            report = run_closed_loop(target, spec)
    else:
        with SVDServer(config, runtime=runtime) as target:
            report = run_closed_loop(target, spec)
    shapes = ", ".join(f"{m}x{n}" for m, n in args.shapes)
    fleet = f", {args.replicas} replicas" if args.replicas > 1 else ""
    print(
        f"{report.requests} requests ({shapes}) via {args.concurrency} "
        f"closed-loop clients on {args.backend} "
        f"({args.workers} worker(s){fleet})"
    )
    print(
        f"throughput: {report.throughput:,.0f} req/s "
        f"({report.elapsed * 1e3:.1f} ms total, "
        f"{report.overload_retries} overload retries)"
    )
    if report.verified:
        print(
            f"verified {report.verified} result(s) against standalone "
            f"solves: {report.mismatches} mismatch(es)"
        )
    print(report.server_stats.summary())
    for line in report.errors:
        print(f"  error: {line}")
    if report.failed or report.mismatches:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    from repro.errors import ConfigurationError

    args = build_parser().parse_args(argv)
    try:
        return run_serve(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
