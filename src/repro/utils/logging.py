"""Structured library logging.

All of :mod:`repro` logs under the ``"repro"`` logger namespace; the
library never configures handlers (standard library-etiquette — the
application owns logging configuration). :func:`get_logger` returns a
:class:`StructuredLogger`: a thin delegating wrapper over the stdlib
logger that keeps the familiar printf-style API (``debug``/``info``/...)
working unchanged while adding :meth:`StructuredLogger.event` — one
machine-parseable ``event=<name> key=value ...`` line per decision, the
format the serving layer's request/flush/reject lines use::

    event=serve.flush bucket=16x8 fill=32 cause=max_wait waited_ms=4.1

Key=value lines grep cleanly and load into any log pipeline without a
custom parser; keys keep their call-site order so related lines diff
line-by-line. Values containing whitespace or ``"`` are quoted.

Decision points worth watching:

- ``repro.core`` logs each matrix's width schedule and group census at
  DEBUG;
- ``repro.tuning`` logs the tailoring plan the threshold walk selects;
- ``repro.gpusim`` logs resource-check failures before raising;
- ``repro.serve`` logs request admission, micro-batch flushes, and
  backpressure rejections as structured events.

Enable with::

    import logging
    logging.basicConfig(level=logging.DEBUG)
    logging.getLogger("repro").setLevel(logging.DEBUG)
"""

from __future__ import annotations

import logging
from typing import Mapping

__all__ = ["get_logger", "format_event", "StructuredLogger"]


def _format_value(value: object) -> str:
    """One log-friendly token per value; quoted only when it must be."""
    if isinstance(value, float):
        text = f"{value:.6g}"
    elif isinstance(value, (tuple, list)):
        text = "x".join(str(v) for v in value)
    elif value is None:
        text = "-"
    else:
        text = str(value)
    if text == "" or any(c.isspace() for c in text) or '"' in text:
        return '"' + text.replace('"', r"\"") + '"'
    return text


def format_event(event: str, fields: Mapping[str, object]) -> str:
    """Render one structured line: ``event=<name> key=value ...``.

    Field order is preserved (callers pass keyword arguments, so the
    call-site order is the line order), which keeps successive lines of
    the same event type column-aligned and diffable.
    """
    parts = [f"event={_format_value(event)}"]
    parts.extend(f"{key}={_format_value(val)}" for key, val in fields.items())
    return " ".join(parts)


class StructuredLogger:
    """Delegating wrapper: the stdlib logger API plus ``.event(...)``.

    Every attribute not defined here (``debug``, ``info``, ``name``,
    ``isEnabledFor``, ``handlers``, ...) is forwarded to the wrapped
    :class:`logging.Logger`, so existing printf-style call sites — and
    tests that poke at logger internals — keep working unchanged.
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def __getattr__(self, attr: str):
        return getattr(self._logger, attr)

    def event(
        self, event: str, *, level: int = logging.DEBUG, **fields: object
    ) -> None:
        """Emit one ``event=<name> key=value ...`` line at ``level``.

        Formatting is skipped entirely when the level is disabled, so
        structured events in hot paths cost one level check.
        """
        if self._logger.isEnabledFor(level):
            self._logger.log(level, "%s", format_event(event, fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StructuredLogger({self._logger.name})"


def get_logger(name: str) -> StructuredLogger:
    """A child of the ``repro`` logger (``name`` is the subsystem)."""
    return StructuredLogger(logging.getLogger(f"repro.{name}"))
