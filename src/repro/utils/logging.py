"""Library logging.

All of :mod:`repro` logs under the ``"repro"`` logger namespace; the
library never configures handlers (standard library-etiquette — the
application owns logging configuration). Decision points worth watching:

- ``repro.core`` logs each matrix's width schedule and group census at
  DEBUG;
- ``repro.tuning`` logs the tailoring plan the threshold walk selects;
- ``repro.gpusim`` logs resource-check failures before raising.

Enable with::

    import logging
    logging.basicConfig(level=logging.DEBUG)
    logging.getLogger("repro").setLevel(logging.DEBUG)
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]


def get_logger(name: str) -> logging.Logger:
    """A child of the ``repro`` logger (``name`` is the subsystem)."""
    return logging.getLogger(f"repro.{name}")
