"""Random test-matrix generators with controlled spectra.

The paper's convergence experiments (Table VII, Fig. 15) depend on matrix
size and condition number, so the generators here let callers pin an exact
singular spectrum or condition number. All generators take an explicit
``rng`` or ``seed`` so every experiment is reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "default_rng",
    "random_matrix",
    "random_orthogonal",
    "random_spd",
    "random_with_condition",
    "random_with_spectrum",
]


def default_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalize a seed-or-generator argument into a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_matrix(
    m: int, n: int, *, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Dense ``m x n`` matrix with iid standard-normal entries."""
    if m < 1 or n < 1:
        raise ConfigurationError(f"matrix dims must be >= 1, got {(m, n)}")
    return default_rng(rng).standard_normal((m, n))


def random_orthogonal(
    n: int, *, rng: int | np.random.Generator | None = None
) -> np.ndarray:
    """Haar-distributed ``n x n`` orthogonal matrix (QR with sign fix)."""
    gen = default_rng(rng)
    Z = gen.standard_normal((n, n))
    Q, R = np.linalg.qr(Z)
    # Fix signs so the distribution is Haar rather than QR-convention biased.
    Q *= np.sign(np.diag(R))
    return Q


def random_with_spectrum(
    m: int,
    n: int,
    spectrum: np.ndarray,
    *,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Matrix with the exact singular values ``spectrum`` (descending or not).

    Built as ``U @ diag(spectrum) @ V.T`` with Haar-random orthogonal U, V.
    """
    spectrum = np.atleast_1d(np.asarray(spectrum, dtype=np.float64))
    r = min(m, n)
    if spectrum.shape != (r,):
        raise ConfigurationError(
            f"spectrum must have shape ({r},) for a {m}x{n} matrix, "
            f"got {spectrum.shape}"
        )
    if (spectrum < 0).any():
        raise ConfigurationError("singular values must be non-negative")
    gen = default_rng(rng)
    U = random_orthogonal(m, rng=gen)[:, :r]
    V = random_orthogonal(n, rng=gen)[:, :r]
    return (U * spectrum) @ V.T


def random_with_condition(
    m: int,
    n: int,
    condition: float,
    *,
    rng: int | np.random.Generator | None = None,
    mode: str = "geometric",
) -> np.ndarray:
    """Matrix whose 2-norm condition number is exactly ``condition``.

    ``mode='geometric'`` spaces singular values geometrically between 1 and
    ``1/condition`` (the hard case for Jacobi convergence); ``'linear'``
    spaces them linearly; ``'cluster'`` puts all but one value at 1.
    """
    if condition < 1.0:
        raise ConfigurationError(f"condition must be >= 1, got {condition}")
    r = min(m, n)
    if r == 1:
        spectrum = np.ones(1)
    elif mode == "geometric":
        spectrum = np.geomspace(1.0, 1.0 / condition, r)
    elif mode == "linear":
        spectrum = np.linspace(1.0, 1.0 / condition, r)
    elif mode == "cluster":
        spectrum = np.ones(r)
        spectrum[-1] = 1.0 / condition
    else:
        raise ConfigurationError(f"unknown spectrum mode {mode!r}")
    return random_with_spectrum(m, n, spectrum, rng=rng)


def random_spd(
    n: int,
    *,
    condition: float = 10.0,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Symmetric positive-definite ``n x n`` matrix with given condition."""
    gen = default_rng(rng)
    if n == 1:
        return np.array([[1.0]])
    eigvals = np.geomspace(1.0, 1.0 / condition, n)
    Q = random_orthogonal(n, rng=gen)
    B = (Q * eigvals) @ Q.T
    # Symmetrize exactly: floating-point of (Q*e)@Q.T is near- but not
    # bit-symmetric, and downstream validation checks symmetry.
    return (B + B.T) / 2.0
