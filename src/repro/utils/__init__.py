"""Shared utilities: validation, matrix generators, and math helpers."""

from repro.utils.bucketing import (
    ShapeBucket,
    bucket_by_shape,
    bucket_cost,
    order_buckets,
    scatter_to_list,
    stack_bucket,
)
from repro.utils.validation import (
    as_matrix,
    check_batch,
    check_positive,
    check_square_symmetric,
)
from repro.utils.matrices import (
    random_matrix,
    random_orthogonal,
    random_spd,
    random_with_condition,
    random_with_spectrum,
)

__all__ = [
    "ShapeBucket",
    "bucket_by_shape",
    "bucket_cost",
    "order_buckets",
    "scatter_to_list",
    "stack_bucket",
    "as_matrix",
    "check_batch",
    "check_positive",
    "check_square_symmetric",
    "random_matrix",
    "random_orthogonal",
    "random_spd",
    "random_with_condition",
    "random_with_spectrum",
]
