"""Input validation helpers used at every public API boundary.

The guides for this codebase call for fail-fast validation with precise
error messages; these helpers centralize the checks so the numerical code
can assume well-formed float64 arrays.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "as_matrix",
    "check_batch",
    "check_positive",
    "check_square_symmetric",
]


def as_matrix(A: np.ndarray, *, name: str = "A") -> np.ndarray:
    """Validate and normalize a 2-D real matrix to C-contiguous float64.

    Returns a copy only when conversion is required, so callers that pass a
    C-contiguous float64 array keep their original storage (and must copy
    themselves before mutating).
    """
    arr = np.asarray(A)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={arr.ndim}")
    if arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ShapeError(f"{name} must be non-empty, got shape={arr.shape}")
    if np.iscomplexobj(arr):
        raise ShapeError(f"{name} must be real-valued, got dtype={arr.dtype}")
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise ShapeError(f"{name} contains non-finite entries")
    return arr


def check_square_symmetric(
    B: np.ndarray, *, name: str = "B", tol: float = 1e-10
) -> np.ndarray:
    """Validate a symmetric matrix; returns it normalized like :func:`as_matrix`."""
    arr = as_matrix(B, name=name)
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(f"{name} must be square, got shape={arr.shape}")
    scale = max(1.0, float(np.abs(arr).max()))
    if float(np.abs(arr - arr.T).max()) > tol * scale:
        raise ShapeError(f"{name} must be symmetric within tol={tol}")
    return arr


def check_batch(matrices: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Validate a batch of matrices; sizes may differ across the batch."""
    if len(matrices) == 0:
        raise ShapeError("batch must contain at least one matrix")
    return [as_matrix(a, name=f"matrices[{i}]") for i, a in enumerate(matrices)]


def check_positive(value: float, *, name: str) -> float:
    """Require ``value`` to be a finite, strictly positive scalar."""
    v = float(value)
    if not np.isfinite(v) or v <= 0.0:
        raise ShapeError(f"{name} must be a positive finite number, got {value!r}")
    return v
