"""Shape bucketing for batch-axis vectorized execution.

The batched kernels simulate one thread block per matrix: every matrix in a
launch proceeds independently. The NumPy analogue of that independence is a
stacked ``(b, m, n)`` ndarray operated on along the batch axis — but stacking
requires shape uniformity, which ragged batches (the paper's Table VI
workloads) do not provide. The fix, borrowed from shape-uniform sub-batching
in batched GPU solvers, is to *bucket*: group the batch's matrices by shape,
stack each bucket, run each bucket vectorized, and scatter results back into
the caller's order.

Bucketing is pure bookkeeping — it never reorders the arithmetic *within* a
matrix, so per-matrix results are unchanged from a per-matrix loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ShapeBucket", "bucket_by_shape", "stack_bucket", "scatter_to_list"]


@dataclass(frozen=True)
class ShapeBucket:
    """One shape-uniform sub-batch: a key and the batch indices it owns."""

    shape: tuple[int, ...]
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def bucket_by_shape(shapes: Sequence[Sequence[int]]) -> list[ShapeBucket]:
    """Group batch positions by shape, preserving first-seen bucket order.

    ``shapes`` may be any sequence of int tuples (matrix shapes, or composite
    keys such as ``panel.shape + rotation.shape``). Within a bucket, indices
    keep the caller's order, so stacking and scattering are stable.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for index, shape in enumerate(shapes):
        groups.setdefault(tuple(int(s) for s in shape), []).append(index)
    return [
        ShapeBucket(shape=shape, indices=tuple(indices))
        for shape, indices in groups.items()
    ]


def stack_bucket(
    arrays: Sequence[np.ndarray], indices: Sequence[int]
) -> np.ndarray:
    """Stack the selected arrays into one contiguous ``(b, ...)`` ndarray."""
    return np.stack([arrays[i] for i in indices])


def scatter_to_list(
    out: list, indices: Sequence[int], values: Sequence
) -> None:
    """Write bucket results back to their original batch positions."""
    for index, value in zip(indices, values):
        out[index] = value
