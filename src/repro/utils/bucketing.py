"""Shape bucketing for batch-axis vectorized execution.

The batched kernels simulate one thread block per matrix: every matrix in a
launch proceeds independently. The NumPy analogue of that independence is a
stacked ``(b, m, n)`` ndarray operated on along the batch axis — but stacking
requires shape uniformity, which ragged batches (the paper's Table VI
workloads) do not provide. The fix, borrowed from shape-uniform sub-batching
in batched GPU solvers, is to *bucket*: group the batch's matrices by shape,
stack each bucket, run each bucket vectorized, and scatter results back into
the caller's order.

Bucketing is pure bookkeeping — it never reorders the arithmetic *within* a
matrix, so per-matrix results are unchanged from a per-matrix loop.

Execution order is a separate concern from grouping:
:func:`bucket_by_shape` preserves first-seen order (stable bookkeeping for
callers that only scatter), while :func:`order_buckets` sorts buckets by
**descending estimated flop cost** with a stable shape tie-break — the
order the execution engines iterate (and the parallel runtime schedules)
buckets in, so the most expensive bucket is dispatched first and load
balance across workers is deterministic rather than an accident of dict
insertion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "ShapeBucket",
    "bucket_by_shape",
    "bucket_cost",
    "order_buckets",
    "stack_bucket",
    "scatter_to_list",
]


@dataclass(frozen=True)
class ShapeBucket:
    """One shape-uniform sub-batch: a key and the batch indices it owns."""

    shape: tuple[int, ...]
    indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.indices)


def bucket_by_shape(shapes: Sequence[Sequence[int]]) -> list[ShapeBucket]:
    """Group batch positions by shape, preserving first-seen bucket order.

    ``shapes`` may be any sequence of int tuples (matrix shapes, or composite
    keys such as ``panel.shape + rotation.shape``). Within a bucket, indices
    keep the caller's order, so stacking and scattering are stable.
    """
    groups: dict[tuple[int, ...], list[int]] = {}
    for index, shape in enumerate(shapes):
        groups.setdefault(tuple(int(s) for s in shape), []).append(index)
    return [
        ShapeBucket(shape=shape, indices=tuple(indices))
        for shape, indices in groups.items()
    ]


def bucket_cost(bucket: ShapeBucket) -> float:
    """Estimated flop cost of executing one stacked pass over a bucket.

    ``count * prod(shape) * shape[-1]`` — for an ``(m, n)`` SVD bucket this
    is the ``b * m * n^2`` of a one-sided sweep, for a ``(k, k)`` EVD
    bucket the ``b * k^3`` of a two-sided sweep; composite GEMM keys get a
    consistent proxy of the same form. Only the *relative* order matters:
    the scheduler uses it to dispatch expensive buckets first.
    """
    if not bucket.shape:
        return float(len(bucket))
    return float(len(bucket)) * math.prod(bucket.shape) * bucket.shape[-1]


def order_buckets(buckets: Sequence[ShapeBucket]) -> list[ShapeBucket]:
    """Buckets in execution order: descending cost, stable tie-break.

    Ties (equal estimated cost) are broken by ascending shape tuple, so the
    order is a pure function of the bucket set — never of first-seen /
    dict-insertion order. Results are unaffected (every consumer scatters
    by original index); what this pins down is the *schedule*, which the
    parallel runtime's load balance and profiling depend on.
    """
    return sorted(buckets, key=lambda b: (-bucket_cost(b), b.shape))


def stack_bucket(
    arrays: Sequence[np.ndarray], indices: Sequence[int]
) -> np.ndarray:
    """Stack the selected arrays into one contiguous ``(b, ...)`` ndarray."""
    return np.stack([arrays[i] for i in indices])


def scatter_to_list(
    out: list, indices: Sequence[int], values: Sequence
) -> None:
    """Write bucket results back to their original batch positions."""
    for index, value in zip(indices, values):
        out[index] = value
