"""``python -m repro.perfci`` entry point."""

import sys

from repro.perfci.cli import main

sys.exit(main())
