"""The declarative performance-check registry.

A :class:`PerfCheck` names one scalar metric inside one recorded
benchmark payload — a repo-root ``BENCH_*.json`` trajectory file or a
``benchmarks/results/*.json`` sidecar — with the unit, the direction a
*good* change moves in, and the tolerance the regression gate enforces.
The shape follows the ReFrame model (declarative extraction + reference
bounds ± tolerance), with one twist: the reference is not a hardcoded
number but a rolling same-host baseline from the history store, so the
registry stays valid across machines of wildly different speed.

Metric locations are dotted **path expressions** resolved by
:func:`resolve_path`::

    cases[case=64x(64x32)].speedup          # list-of-dicts selector
    worker_scaling.configs[backend=persistent,workers=4]
        .dispatch_overhead.ipc_round_trips  # multi-key selector
    modes.micro-batched.server.latency_p50_ms
    rows[0].4                               # list indexing (sidecars)

Keeping extraction declarative (strings, not callables) means the CLI
can print exactly where a number comes from, history samples stay
self-describing, and adding a check is data, not code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "PerfCheck",
    "ExtractionError",
    "SourceMissing",
    "resolve_path",
    "extract_value",
    "register",
    "all_checks",
    "get_check",
    "DEFAULT_CHECKS",
]


class ExtractionError(KeyError):
    """The path expression does not resolve inside the payload."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


class SourceMissing(FileNotFoundError):
    """The check's source file is absent from this tree."""


@dataclass(frozen=True)
class PerfCheck:
    """One gated metric.

    ``tolerance`` is the maximum allowed *relative degradation* against
    the baseline median (0.20 = fail if 20 % worse). ``noise_floor`` is
    an absolute delta in the metric's own unit below which a change is
    never flagged — shared CI hosts jitter, and a 0.3 ms p50 wobble on
    a 33 ms baseline should not page anyone even if the window median
    happens to sit unusually low.
    """

    name: str
    source: str  # path relative to the repo root
    path: str  # path expression inside the payload
    unit: str
    direction: str  # "higher" | "lower"
    tolerance: float
    noise_floor: float = 0.0
    window: int = 5  # same-fingerprint baseline samples consulted
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower"):
            raise ValueError(
                f"{self.name}: direction must be 'higher' or 'lower', "
                f"got {self.direction!r}"
            )
        if self.tolerance < 0 or self.noise_floor < 0:
            raise ValueError(f"{self.name}: bounds must be non-negative")
        if self.window < 1:
            raise ValueError(f"{self.name}: window must be >= 1")


_SEGMENT = re.compile(r"^(?P<key>[^\[\]]*)(?:\[(?P<selector>[^\]]+)\])?$")


def _split_segments(expr: str) -> list[str]:
    """Split on dots, but never inside a ``[...]`` selector (case names
    like ``256x(16x8)`` are fine; selector values may contain dots)."""
    segments: list[str] = []
    depth = 0
    current = ""
    for ch in expr:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "." and depth == 0:
            segments.append(current)
            current = ""
        else:
            current += ch
    segments.append(current)
    return segments


def _coerce(text: str):
    """Selector values compare as ints when they look like ints."""
    try:
        return int(text)
    except ValueError:
        return text


def _select(items: list, selector: str, expr: str):
    """``[k=v,k2=v2]`` over a list of dicts, or ``[i]`` over any list."""
    if "=" not in selector:
        try:
            return items[int(selector)]
        except (ValueError, IndexError):
            raise ExtractionError(
                f"{expr}: index [{selector}] out of range or non-numeric"
            ) from None
    wanted = {}
    for clause in selector.split(","):
        key, _, value = clause.partition("=")
        wanted[key.strip()] = _coerce(value.strip())
    for item in items:
        if isinstance(item, dict) and all(
            item.get(k) == v for k, v in wanted.items()
        ):
            return item
    raise ExtractionError(f"{expr}: no element matches [{selector}]")


def resolve_path(payload, expr: str):
    """Resolve a path expression against a decoded JSON payload."""
    node = payload
    for segment in _split_segments(expr):
        match = _SEGMENT.match(segment)
        if match is None:  # pragma: no cover - regex accepts everything
            raise ExtractionError(f"{expr}: bad segment {segment!r}")
        key, selector = match.group("key"), match.group("selector")
        if key:
            if isinstance(node, list):
                try:
                    node = node[int(key)]
                except (ValueError, IndexError):
                    raise ExtractionError(
                        f"{expr}: list index {key!r} invalid here"
                    ) from None
            elif isinstance(node, dict):
                if key not in node:
                    raise ExtractionError(f"{expr}: key {key!r} missing")
                node = node[key]
            else:
                raise ExtractionError(
                    f"{expr}: cannot descend into "
                    f"{type(node).__name__} with {key!r}"
                )
        if selector is not None:
            if not isinstance(node, list):
                raise ExtractionError(
                    f"{expr}: [{selector}] needs a list, got "
                    f"{type(node).__name__}"
                )
            node = _select(node, selector, expr)
    return node


def extract_value(check: PerfCheck, root: Path | str):
    """Load the check's source under ``root`` and resolve its metric.

    Raises :class:`SourceMissing` when the file is absent (a tree may
    legitimately not have regenerated every benchmark) and
    :class:`ExtractionError` when the file exists but the metric is not
    where the check says — the latter is a registry/payload drift bug
    and is never silently skipped by the gate.
    """
    import json

    source = Path(root) / check.source
    if not source.exists():
        raise SourceMissing(f"{check.name}: source {source} not found")
    payload = json.loads(source.read_text())
    value = resolve_path(payload, check.path)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExtractionError(
            f"{check.name}: {check.path} resolved to "
            f"{type(value).__name__}, expected a number"
        )
    return float(value)


# --------------------------------------------------------------------------
# Registry


_REGISTRY: dict[str, PerfCheck] = {}


def register(check: PerfCheck) -> PerfCheck:
    """Add a check (name must be unique)."""
    if check.name in _REGISTRY:
        raise ValueError(f"duplicate perf check {check.name!r}")
    _REGISTRY[check.name] = check
    return check


def all_checks() -> list[PerfCheck]:
    """Registered checks in registration order."""
    return list(_REGISTRY.values())


def get_check(name: str) -> PerfCheck:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown perf check {name!r}; known: {known}"
        ) from None


_WALLCLOCK = "BENCH_wallclock.json"
_SERVE = "BENCH_serve.json"
_CLUSTER = "BENCH_cluster.json"

#: The shipped registry: every hot-path win PRs 1-9 recorded, one check
#: per number the repo's story leans on. Tolerances are deliberately
#: loose for wall-clock ratios (shared CI hosts jitter 10-15 % on a bad
#: day) and tight for deterministic dispatch counters, where any drift
#: is a code change, not noise.
DEFAULT_CHECKS: tuple[PerfCheck, ...] = tuple(
    register(check)
    for check in [
        # -- batched engine vs the seed's per-matrix loop (PR 1 / PR 6)
        PerfCheck(
            name="engine.256x16x8.speedup",
            source=_WALLCLOCK,
            path="cases[case=256x(16x8)].speedup",
            unit="x",
            direction="higher",
            tolerance=0.20,
            noise_floor=1.0,
            description="small-tall batch: engine speedup vs seed loop",
        ),
        PerfCheck(
            name="engine.64x64x32.speedup",
            source=_WALLCLOCK,
            path="cases[case=64x(64x32)].speedup",
            unit="x",
            direction="higher",
            tolerance=0.20,
            noise_floor=0.4,
            description="fused odd-even mid-size case (2.4x -> 5.6x in PR 6)",
        ),
        PerfCheck(
            name="engine.ragged.speedup",
            source=_WALLCLOCK,
            path="cases[case=ragged-mix].speedup",
            unit="x",
            direction="higher",
            tolerance=0.20,
            noise_floor=0.8,
            description="mixed-shape batch across buckets",
        ),
        PerfCheck(
            name="engine.64x64x32.engine_s",
            source=_WALLCLOCK,
            path="cases[case=64x(64x32)].engine_s",
            unit="s",
            direction="lower",
            tolerance=0.30,
            noise_floor=0.03,
            description="absolute engine time on the fused odd-even case",
        ),
        PerfCheck(
            name="engine.64x64x32.rotate_s",
            source=_WALLCLOCK,
            path="cases[case=64x(64x32)].kernel_breakdown.rotate_s",
            unit="s",
            direction="lower",
            tolerance=0.35,
            noise_floor=0.02,
            description="per-sweep rotation kernel time (fused einsum)",
        ),
        # -- persistent-arena dispatch overhead (PR 7): deterministic
        # counters, so the gate is near-exact.
        PerfCheck(
            name="runtime.persistent4.ipc_round_trips",
            source=_WALLCLOCK,
            path=(
                "worker_scaling.configs[backend=persistent,workers=4]"
                ".dispatch_overhead.ipc_round_trips"
            ),
            unit="round trips",
            direction="lower",
            tolerance=0.10,
            noise_floor=0.5,
            description="manifest batching: 8 round trips at 4 workers",
        ),
        PerfCheck(
            name="runtime.persistent4.pickled_task_bytes",
            source=_WALLCLOCK,
            path=(
                "worker_scaling.configs[backend=persistent,workers=4]"
                ".dispatch_overhead.pickled_task_bytes"
            ),
            unit="bytes",
            direction="lower",
            tolerance=0.25,
            noise_floor=512,
            description="pickled manifest payload at 4 workers (~6 KB)",
        ),
        PerfCheck(
            name="runtime.processes4.pickled_task_bytes",
            source=_WALLCLOCK,
            path=(
                "worker_scaling.configs[backend=processes,workers=4]"
                ".dispatch_overhead.pickled_task_bytes"
            ),
            unit="bytes",
            direction="lower",
            tolerance=0.25,
            noise_floor=512,
            description="per-task pickling on the process pool (~15 KB)",
        ),
        # -- serving broker (PR 5)
        PerfCheck(
            name="serve.fused_speedup",
            source=_SERVE,
            path="speedup_fused_vs_one_at_a_time",
            unit="x",
            direction="higher",
            tolerance=0.25,
            noise_floor=0.5,
            description="micro-batched vs one-at-a-time throughput ratio",
        ),
        PerfCheck(
            name="serve.microbatch.throughput_rps",
            source=_SERVE,
            path="modes.micro-batched.throughput_rps",
            unit="req/s",
            direction="higher",
            tolerance=0.25,
            noise_floor=50.0,
            description="closed-loop fused serving throughput",
        ),
        PerfCheck(
            name="serve.microbatch.p50_ms",
            source=_SERVE,
            path="modes.micro-batched.server.latency_p50_ms",
            unit="ms",
            direction="lower",
            tolerance=0.35,
            noise_floor=5.0,
            description="fused serving median latency",
        ),
        PerfCheck(
            name="serve.microbatch.p95_ms",
            source=_SERVE,
            path="modes.micro-batched.server.latency_p95_ms",
            unit="ms",
            direction="lower",
            tolerance=0.40,
            noise_floor=8.0,
            description="fused serving tail latency",
        ),
        # -- replica cluster (PR 9): parity-bar host, so wide bounds —
        # the gate exists to catch the router serializing the fleet.
        PerfCheck(
            name="cluster.1replica.throughput_rps",
            source=_CLUSTER,
            path="replicas.1.report.throughput_rps",
            unit="req/s",
            direction="higher",
            tolerance=0.30,
            noise_floor=50.0,
            description="single-replica cluster throughput (router tax)",
        ),
        PerfCheck(
            name="cluster.4replica.p99_ms",
            source=_CLUSTER,
            path="replicas.4.report.server.router.latency_p99_ms",
            unit="ms",
            direction="lower",
            tolerance=0.50,
            noise_floor=20.0,
            description="4-replica routed tail latency",
        ),
        # -- results sidecar (satellite: record_table sidecars are
        # first-class check sources too)
        PerfCheck(
            name="sidecar.perf_wallclock.case0_speedup",
            source="benchmarks/results/perf_wallclock.json",
            path="rows[0].4",
            unit="x",
            direction="higher",
            tolerance=0.20,
            noise_floor=1.0,
            description="speedup column of the sidecar's first row "
            "(proves figure/table sidecars are gateable)",
        ),
    ]
)
