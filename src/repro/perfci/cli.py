"""``repro-perf``: the continuous performance-regression gate.

Usage::

    repro-perf list                     # registered checks + where they read
    repro-perf record                   # extract BENCH files -> history
    repro-perf check                    # judge BENCH files vs history
    repro-perf report                   # per-check history trajectory
    repro-perf check --format json      # machine-readable verdicts
    repro-perf check --select engine.64x64x32.speedup,serve.fused_speedup
    repro-perf check --root /elsewhere --history /tmp/perf.jsonl
    python -m repro perf check          # identical entry point

Exit codes match ``repro-lint``: ``0`` clean (ok / improved / skipped
for lack of a same-host baseline or a missing source file), ``1`` at
least one regression past tolerance (or a registered metric that
vanished from its payload), ``2`` usage error or corrupt history.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.perfci.checks import all_checks, get_check
from repro.perfci.fingerprint import HostFingerprint
from repro.perfci.history import (
    append_samples,
    history_path,
    load_samples,
    record_samples,
)
from repro.perfci.regression import (
    MISSING_SOURCE,
    NO_BASELINE,
    evaluate_tree,
    exit_code,
)
from repro.perfci.storage import HistoryError

__all__ = ["main", "build_parser"]

_STATUS_GLYPH = {
    "ok": "ok",
    "improved": "OK+",
    "regression": "FAIL",
    "no-baseline": "skip",
    "missing-source": "skip",
    "broken": "FAIL",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description=(
            "continuous performance-regression harness: declarative "
            "checks over the recorded BENCH_*.json trajectories, an "
            "append-only fingerprint-stamped history, and a "
            "median-window gate robust to noisy shared hosts"
        ),
    )
    # --root/--history live on every subcommand (not the top parser) so
    # the `python -m repro perf <args>` pass-through — which forwards a
    # flat argv — accepts them anywhere after the verb.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--root",
        default=".",
        help="repo root holding BENCH_*.json and benchmarks/ "
        "(default: current directory)",
    )
    common.add_argument(
        "--history",
        metavar="FILE",
        help="history JSONL (default: <root>/benchmarks/history/perf.jsonl)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "list", help="print the registered checks", parents=[common]
    )
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser(
        "record",
        help="extract current benchmark payloads into history",
        parents=[common],
    )
    p.add_argument("--note", default="", help="free-text tag on the samples")
    p.add_argument(
        "--select", metavar="CHECKS", help="comma-separated check names"
    )
    p.add_argument(
        "--dry-run",
        action="store_true",
        help="print the samples without appending them",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser(
        "check",
        help="judge current payloads against the history baseline",
        parents=[common],
    )
    p.add_argument(
        "--select", metavar="CHECKS", help="comma-separated check names"
    )
    p.add_argument(
        "--window",
        type=int,
        default=None,
        help="override every check's baseline window",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="treat skips (missing source / no baseline) as failures",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")

    p = sub.add_parser(
        "report",
        help="print per-check history trajectories",
        parents=[common],
    )
    p.add_argument(
        "--select", metavar="CHECKS", help="comma-separated check names"
    )
    p.add_argument(
        "--last",
        type=int,
        default=8,
        help="samples shown per check (default: 8)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    return parser


def _selected(select: str | None):
    if not select:
        return all_checks()
    return [get_check(name.strip()) for name in select.split(",") if name.strip()]


def _history_file(args) -> Path:
    return Path(args.history) if args.history else history_path(args.root)


def cmd_list(args) -> int:
    checks = _selected(None)
    if args.format == "json":
        print(
            json.dumps(
                [
                    {
                        "name": c.name,
                        "source": c.source,
                        "path": c.path,
                        "unit": c.unit,
                        "direction": c.direction,
                        "tolerance": c.tolerance,
                        "noise_floor": c.noise_floor,
                        "window": c.window,
                        "description": c.description,
                    }
                    for c in checks
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(c.name) for c in checks)
    for c in checks:
        bound = f"{'-' if c.direction == 'higher' else '+'}{c.tolerance:.0%}"
        print(
            f"{c.name:<{width}}  {bound:>6}  {c.unit:<11} "
            f"{c.source}:{c.path}"
        )
    print(f"{len(checks)} check(s)")
    return 0


def cmd_record(args) -> int:
    checks = _selected(args.select)
    samples, skipped = record_samples(args.root, checks, note=args.note)
    path = _history_file(args)
    if not args.dry_run and samples:
        append_samples(path, samples)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "recorded": [s.as_dict() for s in samples],
                    "skipped": skipped,
                    "history": str(path),
                    "dry_run": args.dry_run,
                },
                indent=2,
            )
        )
        return 0
    for s in samples:
        print(f"record  {s.check:<40} {s.value:.6g} {s.unit}")
    for name in skipped:
        print(f"skip    {name:<40} (source not present)")
    verb = "would append" if args.dry_run else "appended"
    print(f"{verb} {len(samples)} sample(s) to {path}")
    return 0


def cmd_check(args) -> int:
    checks = _selected(args.select)
    samples = load_samples(_history_file(args))
    fingerprint = HostFingerprint.current()
    results = evaluate_tree(
        checks, args.root, samples, fingerprint, window=args.window
    )
    code = exit_code(results)
    if args.strict and any(
        r.status in (NO_BASELINE, MISSING_SOURCE) for r in results
    ):
        code = max(code, 1)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "fingerprint": fingerprint.as_dict(),
                    "history": str(_history_file(args)),
                    "results": [r.as_dict() for r in results],
                    "exit_code": code,
                },
                indent=2,
            )
        )
        return code
    width = max(len(r.check.name) for r in results) if results else 0
    for r in results:
        glyph = _STATUS_GLYPH[r.status]
        if r.baseline is not None and r.value is not None:
            detail = (
                f"{r.value:.6g} vs median {r.baseline:.6g} "
                f"({r.degradation:+.1%} worse, tol {r.check.tolerance:.0%}, "
                f"n={r.window_used})"
            )
        elif r.value is not None:
            detail = f"{r.value:.6g} {r.check.unit} ({r.status})"
        else:
            detail = r.message or r.status
        print(f"{glyph:<5} {r.check.name:<{width}}  {detail}")
        if r.failed and r.message:
            print(f"      -> {r.message}")
    counts: dict[str, int] = {}
    for r in results:
        counts[r.status] = counts.get(r.status, 0) + 1
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    print(f"{len(results)} check(s): {summary}")
    return code


def cmd_report(args) -> int:
    checks = _selected(args.select)
    samples = load_samples(_history_file(args))
    by_check: dict[str, list] = {c.name: [] for c in checks}
    for s in samples:
        if s.check in by_check:
            by_check[s.check].append(s)
    if args.format == "json":
        print(
            json.dumps(
                {
                    name: [s.as_dict() for s in series[-args.last :]]
                    for name, series in by_check.items()
                },
                indent=2,
            )
        )
        return 0
    for name, series in by_check.items():
        shown = series[-args.last :]
        print(f"{name} ({len(series)} sample(s))")
        if not shown:
            print("  (no history)")
            continue
        for s in shown:
            print(
                f"  {s.value:>12.6g} {s.unit:<10} "
                f"host[{s.host.key()}]"
                + (f"  # {s.note}" if s.note else "")
            )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return cmd_list(args)
        if args.command == "record":
            return cmd_record(args)
        if args.command == "check":
            return cmd_check(args)
        if args.command == "report":
            return cmd_report(args)
    except HistoryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # --select named an unregistered check.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(
        f"unhandled command {args.command}"
    )  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
