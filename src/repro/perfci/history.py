"""The append-only performance history store.

One JSONL file — ``benchmarks/history/perf.jsonl`` under the repo root
— holds every sample ever recorded, oldest first. Each line is a
self-contained object::

    {"schema": 1, "check": "engine.64x64x32.speedup", "value": 5.89,
     "unit": "x", "direction": "higher", "source": "BENCH_wallclock.json",
     "host": {"cpu_count": 1, "machine": "x86_64", ...},
     "recorded_unix": 1754630000.0, "note": ""}

Samples carry everything the detector needs (value, direction, host
fingerprint, schema version) so the file can be read without the
registry that produced it — a deleted check's trajectory remains
legible, and a sample recorded by a future schema is refused rather
than misread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.perfci.checks import (
    PerfCheck,
    SourceMissing,
    extract_value,
)
from repro.perfci.fingerprint import SCHEMA_VERSION, HostFingerprint
from repro.perfci.storage import HistoryError, append_jsonl, load_jsonl

__all__ = [
    "Sample",
    "history_path",
    "load_samples",
    "record_samples",
    "append_samples",
]

#: History location relative to a repo root.
HISTORY_RELPATH = Path("benchmarks") / "history" / "perf.jsonl"


def history_path(root: Path | str) -> Path:
    return Path(root) / HISTORY_RELPATH


@dataclass(frozen=True)
class Sample:
    """One recorded observation of one check's metric."""

    check: str
    value: float
    unit: str
    direction: str
    source: str
    host: HostFingerprint
    recorded_unix: float
    schema: int = SCHEMA_VERSION
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "check": self.check,
            "value": self.value,
            "unit": self.unit,
            "direction": self.direction,
            "source": self.source,
            "host": self.host.as_dict(),
            "recorded_unix": self.recorded_unix,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict, *, where: str = "") -> "Sample":
        try:
            schema = int(data.get("schema", 0))
            if schema > SCHEMA_VERSION:
                raise HistoryError(
                    f"{where}: sample schema {schema} is newer than this "
                    f"reader (schema {SCHEMA_VERSION}); upgrade first"
                )
            return cls(
                check=str(data["check"]),
                value=float(data["value"]),
                unit=str(data.get("unit", "")),
                direction=str(data.get("direction", "higher")),
                source=str(data.get("source", "")),
                host=HostFingerprint.from_dict(data.get("host", {})),
                recorded_unix=float(data.get("recorded_unix", 0.0)),
                schema=schema,
                note=str(data.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise HistoryError(f"{where}: bad history sample: {exc}") from None


def load_samples(path: Path | str) -> list[Sample]:
    """All samples in the file, oldest first (empty list if absent)."""
    path = Path(path)
    return [
        Sample.from_dict(record, where=f"{path}:{i}")
        for i, record in enumerate(load_jsonl(path), start=1)
    ]


def append_samples(path: Path | str, samples: Sequence[Sample]) -> Path:
    """Append samples to the store (atomic; see perfci.storage)."""
    return append_jsonl(path, [s.as_dict() for s in samples])


def record_samples(
    root: Path | str,
    checks: Sequence[PerfCheck],
    *,
    fingerprint: HostFingerprint | None = None,
    now: float | None = None,
    note: str = "",
) -> tuple[list[Sample], list[str]]:
    """Extract every available check under ``root`` into samples.

    Returns ``(samples, skipped)`` where ``skipped`` names checks whose
    source file is absent in this tree (not an error — a tree need not
    regenerate every benchmark before recording the ones it did run).
    Nothing is written; pair with :func:`append_samples`.

    When a source payload carries its own ``meta.host`` block (the
    unified writers stamp one), that fingerprint wins over the ambient
    host: a BENCH file copied from the bench box keeps its provenance.
    """
    import json

    fingerprint = fingerprint or HostFingerprint.current()
    stamp = time.time() if now is None else now
    samples: list[Sample] = []
    skipped: list[str] = []
    meta_hosts: dict[str, HostFingerprint | None] = {}
    for check in checks:
        try:
            value = extract_value(check, root)
        except SourceMissing:
            skipped.append(check.name)
            continue
        if check.source not in meta_hosts:
            payload = json.loads((Path(root) / check.source).read_text())
            host_block = (payload.get("meta") or {}).get("host")
            meta_hosts[check.source] = (
                HostFingerprint.from_dict(host_block) if host_block else None
            )
        host = meta_hosts[check.source] or fingerprint
        samples.append(
            Sample(
                check=check.name,
                value=value,
                unit=check.unit,
                direction=check.direction,
                source=check.source,
                host=host,
                recorded_unix=stamp,
                note=note,
            )
        )
    return samples, skipped
