"""``repro.perfci`` — continuous performance-regression harness.

The guardrail for the repo's perf story: declarative
:class:`~repro.perfci.checks.PerfCheck` objects pull scalar metrics out
of the recorded benchmark payloads (``BENCH_*.json`` trajectories and
``benchmarks/results/*.json`` sidecars), every observation lands in an
append-only JSONL history stamped with a host fingerprint and schema
version, and the gate compares fresh values against a rolling
same-fingerprint median window with direction-aware tolerances and a
noise floor. Surfaced as the ``repro-perf`` CLI (``record`` / ``check``
/ ``report`` / ``list``) and the CI ``perf-ci`` job.
"""

from repro.perfci.checks import (
    DEFAULT_CHECKS,
    ExtractionError,
    PerfCheck,
    SourceMissing,
    all_checks,
    extract_value,
    get_check,
    register,
    resolve_path,
)
from repro.perfci.fingerprint import (
    SCHEMA_VERSION,
    HostFingerprint,
    bench_meta,
    host_fingerprint,
)
from repro.perfci.history import (
    Sample,
    append_samples,
    history_path,
    load_samples,
    record_samples,
)
from repro.perfci.regression import (
    CheckResult,
    baseline_values,
    evaluate,
    evaluate_tree,
    exit_code,
    source_fingerprint,
)
from repro.perfci.storage import (
    HistoryError,
    append_jsonl,
    atomic_write_json,
    atomic_write_text,
    load_jsonl,
)

__all__ = [
    "SCHEMA_VERSION",
    "HostFingerprint",
    "host_fingerprint",
    "bench_meta",
    "PerfCheck",
    "ExtractionError",
    "SourceMissing",
    "resolve_path",
    "extract_value",
    "register",
    "all_checks",
    "get_check",
    "DEFAULT_CHECKS",
    "Sample",
    "history_path",
    "load_samples",
    "append_samples",
    "record_samples",
    "CheckResult",
    "baseline_values",
    "evaluate",
    "source_fingerprint",
    "evaluate_tree",
    "exit_code",
    "HistoryError",
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl",
    "load_jsonl",
]
