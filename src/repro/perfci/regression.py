"""Regression detection over the perf history.

The detector is built for **noisy shared hosts**, which rules out the
two naive designs:

- *last-sample comparison* — one slow CI run poisons the baseline for
  the next PR (or one lucky run ratchets the bar unreachably high);
- *absolute reference bounds* — a laptop and a CI runner differ by
  more than any real regression would.

Instead, for each check the baseline is the **median of the most
recent ``window`` samples whose host fingerprint matches the current
host** (:meth:`~repro.perfci.fingerprint.HostFingerprint.key` — other
hosts' samples are excluded entirely, not down-weighted). The median
shrugs off a single outlier run anywhere in the window; the
``noise_floor`` suppresses relative blowups of tiny absolute deltas;
``tolerance`` is direction-aware, so a *higher* speedup or a *lower*
latency never trips the gate no matter how large the change.

A host with no matching history yields ``no-baseline`` — a skip, not a
failure: the first run on a new machine (or after a python/numpy
upgrade changed the fingerprint) bootstraps the baseline rather than
comparing against an incomparable one.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.perfci.checks import (
    ExtractionError,
    PerfCheck,
    SourceMissing,
    extract_value,
)
from repro.perfci.fingerprint import HostFingerprint
from repro.perfci.history import Sample

__all__ = [
    "OK",
    "IMPROVED",
    "REGRESSION",
    "NO_BASELINE",
    "MISSING_SOURCE",
    "BROKEN",
    "CheckResult",
    "baseline_values",
    "evaluate",
    "source_fingerprint",
    "evaluate_tree",
    "exit_code",
]

OK = "ok"
IMPROVED = "improved"
REGRESSION = "regression"
NO_BASELINE = "no-baseline"
MISSING_SOURCE = "missing-source"
BROKEN = "broken"

#: Statuses that fail the gate (exit code 1).
FAILING = frozenset({REGRESSION, BROKEN})


@dataclass(frozen=True)
class CheckResult:
    """Verdict for one check on one tree."""

    check: PerfCheck
    status: str
    value: float | None = None
    baseline: float | None = None  # window median
    delta: float | None = None  # value - baseline (metric units)
    degradation: float | None = None  # relative, >0 means worse
    window_used: int = 0
    message: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def as_dict(self) -> dict:
        return {
            "check": self.check.name,
            "status": self.status,
            "value": self.value,
            "baseline": self.baseline,
            "delta": self.delta,
            "degradation": self.degradation,
            "window_used": self.window_used,
            "unit": self.check.unit,
            "direction": self.check.direction,
            "tolerance": self.check.tolerance,
            "noise_floor": self.check.noise_floor,
            "source": self.check.source,
            "message": self.message,
        }


def baseline_values(
    samples: Sequence[Sample],
    check_name: str,
    fingerprint: HostFingerprint,
    window: int,
) -> list[float]:
    """The baseline window: most recent ``window`` same-fingerprint
    samples of ``check_name``, oldest first."""
    key = fingerprint.key()
    matching = [
        s.value
        for s in samples
        if s.check == check_name and s.host.key() == key
    ]
    return matching[-window:]


def evaluate(
    check: PerfCheck,
    value: float,
    samples: Sequence[Sample],
    fingerprint: HostFingerprint,
    *,
    window: int | None = None,
) -> CheckResult:
    """Judge one extracted value against the history."""
    baseline = baseline_values(
        samples, check.name, fingerprint, window or check.window
    )
    if not baseline:
        return CheckResult(
            check,
            NO_BASELINE,
            value=value,
            message="no same-fingerprint history; baseline bootstraps "
            "on the next record",
        )
    median = statistics.median(baseline)
    delta = value - median
    # Positive degradation always means "worse", whichever way the
    # metric's good direction points.
    worse = -delta if check.direction == "higher" else delta
    if median != 0:
        degradation = worse / abs(median)
    else:
        # A zero baseline (e.g. a counter that used to be 0): any
        # worsening beyond the noise floor is infinitely relative.
        degradation = float("inf") if worse > 0 else 0.0
    if worse > 0 and abs(delta) > check.noise_floor:
        if degradation > check.tolerance:
            return CheckResult(
                check,
                REGRESSION,
                value=value,
                baseline=median,
                delta=delta,
                degradation=degradation,
                window_used=len(baseline),
                message=(
                    f"{check.direction}-is-better metric moved "
                    f"{degradation:+.1%} past the {check.tolerance:.0%} "
                    f"tolerance (baseline median {median:.6g} over "
                    f"{len(baseline)} sample(s))"
                ),
            )
    improved = worse < 0 and abs(delta) > check.noise_floor
    status = IMPROVED if improved and -degradation > check.tolerance else OK
    return CheckResult(
        check,
        status,
        value=value,
        baseline=median,
        delta=delta,
        degradation=degradation,
        window_used=len(baseline),
    )


def source_fingerprint(
    root: Path | str, source: str, fallback: HostFingerprint
) -> HostFingerprint:
    """The fingerprint a source payload's values belong to.

    The unified writers stamp every payload with ``meta.host`` — the
    machine that actually ran the benchmark. That fingerprint governs
    baseline selection, so a fresh checkout can gate the *committed*
    BENCH files against the committed history on any runner: the values
    and the baseline both belong to the bench host, wherever ``check``
    happens to execute. Payloads from before the meta block fall back
    to the ambient host.
    """
    import json

    path = Path(root) / source
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return fallback
    host = (payload.get("meta") or {}).get("host") if isinstance(
        payload, dict
    ) else None
    return HostFingerprint.from_dict(host) if host else fallback


def evaluate_tree(
    checks: Sequence[PerfCheck],
    root: Path | str,
    samples: Sequence[Sample],
    fingerprint: HostFingerprint | None = None,
    *,
    window: int | None = None,
) -> list[CheckResult]:
    """Extract and judge every check against a tree + history.

    A missing source file is a skip (``missing-source``); a source that
    exists but no longer contains the metric is ``broken`` and FAILS
    the gate — a silently vanished metric is how a perf harness rots.
    Baselines are keyed per source file via :func:`source_fingerprint`.
    """
    ambient = fingerprint or HostFingerprint.current()
    fingerprints: dict[str, HostFingerprint] = {}
    results = []
    for check in checks:
        try:
            value = extract_value(check, root)
        except SourceMissing:
            results.append(
                CheckResult(
                    check,
                    MISSING_SOURCE,
                    message=f"{check.source} not present in this tree",
                )
            )
            continue
        except ExtractionError as exc:
            results.append(
                CheckResult(check, BROKEN, message=str(exc))
            )
            continue
        if check.source not in fingerprints:
            fingerprints[check.source] = source_fingerprint(
                root, check.source, ambient
            )
        results.append(
            evaluate(
                check,
                value,
                samples,
                fingerprints[check.source],
                window=window,
            )
        )
    return results


def exit_code(results: Sequence[CheckResult]) -> int:
    """0 when every check is ok/improved/skipped, 1 on any failure —
    mirroring ``repro-lint`` (2 is reserved for usage errors)."""
    return 1 if any(r.failed for r in results) else 0
