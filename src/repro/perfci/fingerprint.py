"""Host fingerprints and the shared benchmark ``meta`` block.

Every performance sample this repository records is wall-clock on
whatever machine happened to run the benchmark. Comparing a laptop's
number against a CI runner's is noise, not signal — so every BENCH
payload, results sidecar, and history sample is stamped with a **host
fingerprint**, and the regression detector only builds baselines from
samples whose fingerprint matches the current host
(:mod:`repro.perfci.regression`).

The fingerprint deliberately tracks *performance-relevant identity*,
not full provenance: CPU count, architecture, OS, and the python/numpy
``major.minor`` lines (a numpy minor bump can rewrite einsum dispatch;
a kernel patch release cannot be told apart from scheduler jitter and
is excluded). Shared CI hosts of the same class therefore compare
like-for-like while a python upgrade quietly starts a fresh baseline.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "HostFingerprint",
    "host_fingerprint",
    "bench_meta",
]

#: Version of the recorded payload shapes (meta blocks + history
#: samples). Bump when a field changes meaning; readers refuse samples
#: from a newer schema instead of misreading them.
SCHEMA_VERSION = 1


def _minor(version: str) -> str:
    """``"3.12.4"`` -> ``"3.12"`` (tolerant of odd suffixes)."""
    parts = version.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else version


@dataclass(frozen=True)
class HostFingerprint:
    """The like-for-like identity of a benchmark host."""

    cpu_count: int
    machine: str
    system: str
    python: str
    numpy: str

    @classmethod
    def current(cls) -> "HostFingerprint":
        import numpy

        return cls(
            cpu_count=os.cpu_count() or 1,
            machine=platform.machine(),
            system=platform.system(),
            python=_minor(platform.python_version()),
            numpy=_minor(numpy.__version__),
        )

    @classmethod
    def from_dict(cls, data: dict) -> "HostFingerprint":
        """Rebuild from a recorded ``host`` block (extra keys ignored,
        missing keys defaulted so old samples still load)."""
        return cls(
            cpu_count=int(data.get("cpu_count", 0)),
            machine=str(data.get("machine", "")),
            system=str(data.get("system", "")),
            python=_minor(str(data.get("python", ""))),
            numpy=_minor(str(data.get("numpy", ""))),
        )

    def as_dict(self) -> dict:
        return {
            "cpu_count": self.cpu_count,
            "machine": self.machine,
            "system": self.system,
            "python": self.python,
            "numpy": self.numpy,
        }

    def key(self) -> str:
        """Canonical comparison key — two samples baseline against each
        other exactly when their keys are equal."""
        return (
            f"cpu={self.cpu_count};machine={self.machine};"
            f"system={self.system};python={self.python};numpy={self.numpy}"
        )


@dataclass(frozen=True)
class _Meta:
    """Typed view of the shared ``meta`` block (mostly for tests)."""

    benchmark: str
    unit: str
    schema_version: int
    host: HostFingerprint = field(default_factory=HostFingerprint.current)


def host_fingerprint() -> HostFingerprint:
    """Fingerprint of the machine running right now."""
    return HostFingerprint.current()


def bench_meta(benchmark: str, unit: str = "") -> dict:
    """The unified ``meta`` block every benchmark payload carries.

    The three repo-root ``BENCH_*.json`` writers and the
    ``benchmarks/results/*.json`` sidecars all embed this same shape,
    so :mod:`repro.perfci` can treat any of them as a check source.
    """
    return {
        "benchmark": benchmark,
        "unit": unit,
        "schema_version": SCHEMA_VERSION,
        "host": host_fingerprint().as_dict(),
    }
