"""Atomic persistence for benchmark payloads and perf history.

A benchmark run that dies mid-write (assert failure, SIGKILL from a CI
timeout, full disk) must never leave a truncated ``BENCH_*.json`` or a
half-line in the append-only history — a poisoned history file would
silently corrupt every later baseline. All writes therefore go through
the classic temp-file + ``os.replace`` dance: readers see either the
old complete file or the new complete file, never a prefix.

The history store is JSONL — one self-contained sample object per line
— because append-only trajectories want line-at-a-time diffs and
partial-read tolerance, not a single ever-growing JSON array that must
be parsed whole to append one element.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "HistoryError",
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl",
    "load_jsonl",
]


class HistoryError(ValueError):
    """A history file is malformed (bad JSON line, wrong shape)."""


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (same-directory temp +
    ``os.replace``); the destination directory is created if needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        # Leave no droppings: the destination is untouched either way.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Path | str, payload, *, indent: int = 2) -> Path:
    """Serialize ``payload`` and write it atomically (trailing newline
    included, matching the repo's checked-in BENCH files)."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent) + "\n"
    )


def append_jsonl(path: Path | str, records: Sequence[dict]) -> Path:
    """Append ``records`` to a JSONL file, atomically.

    The whole file is rewritten through a temp file rather than opened
    in append mode: a crash mid-append in ``"a"`` mode can leave a torn
    final line, which is exactly the corruption this module exists to
    rule out. History files are small (one line per check per run), so
    the rewrite is cheap.
    """
    path = Path(path)
    existing = path.read_text() if path.exists() else ""
    if existing and not existing.endswith("\n"):
        # A pre-atomic-era torn tail; close the line rather than fuse
        # the first new record onto it.
        raise HistoryError(
            f"{path}: history file has a truncated final line; "
            "repair or remove it before appending"
        )
    lines = [json.dumps(record, sort_keys=True) for record in records]
    atomic_write_text(path, existing + "".join(line + "\n" for line in lines))
    return path


def load_jsonl(path: Path | str) -> list[dict]:
    """Parse a JSONL file into a list of dicts (oldest first).

    Blank lines are tolerated (hand edits); anything else that fails to
    parse raises :class:`HistoryError` naming the line — a corrupt
    history should stop the gate loudly, not shrink the baseline.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise HistoryError(
                f"{path}:{lineno}: malformed history line: {exc}"
            ) from None
        if not isinstance(record, dict):
            raise HistoryError(
                f"{path}:{lineno}: expected an object, got "
                f"{type(record).__name__}"
            )
        records.append(record)
    return records


def iter_jsonl(path: Path | str) -> Iterable[dict]:
    """Lazy variant of :func:`load_jsonl` (same validation)."""
    yield from load_jsonl(path)
