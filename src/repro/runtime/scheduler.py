"""Cost estimates and deterministic shard planning for the runtime.

The scheduler's job is load balance without nondeterminism: every
partition decision is a pure function of (shapes, counts, worker count),
so two runs of the same batch produce the same shards in the same order —
a precondition for the runtime's bit-identical-results contract.

Costs are relative flop proxies, not absolute times: one stacked Jacobi
sweep over a ``(b, m, n)`` bucket does ``O(b * m * n^2)`` work, a
``(b, k, k)`` EVD bucket ``O(b * k^3)``, and a full W-cycle solve of one
``m x n`` matrix ``O(m * n * min(m, n))`` per outer sweep. Relative order
is all the LPT heuristic needs.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = [
    "svd_stack_cost",
    "evd_stack_cost",
    "wcycle_matrix_cost",
    "shard_count",
    "split_shards",
    "degradation_ladder",
    "retry_backoff",
]


def svd_stack_cost(shape: Sequence[int], count: int = 1) -> float:
    """Relative cost of stacked one-sided sweeps over ``count`` matrices.

    ``shape`` is the bucket's working shape ``(m, n)`` (``n <= m`` after
    the transpose-when-wide rule): each sweep touches ``n(n-1)/2`` pairs
    with ``O(m)`` dot products and updates.
    """
    m, n = int(shape[0]), int(shape[1])
    return float(count) * m * n * n


def evd_stack_cost(k: int, count: int = 1) -> float:
    """Relative cost of stacked two-sided EVD sweeps on ``k x k`` matrices."""
    k = int(k)
    return float(count) * k * k * k


def wcycle_matrix_cost(m: int, n: int) -> float:
    """Relative cost of one matrix's full W-cycle solve (level recursion)."""
    m, n = int(m), int(n)
    return float(m) * n * min(m, n)


def shard_count(
    bucket_size: int, workers: int, *, min_shard: int = 4
) -> int:
    """How many shards to cut a ``bucket_size``-matrix bucket into.

    Bounded by the worker count and by ``min_shard`` matrices per shard
    (tiny slices lose more to per-shard dispatch than they gain in
    overlap). Deterministic in its arguments.
    """
    if bucket_size < 1:
        raise ConfigurationError(
            f"bucket_size must be >= 1, got {bucket_size}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return max(1, min(workers, bucket_size // max(1, min_shard)))


def split_shards(
    indices: Sequence[int], shards: int
) -> list[tuple[int, ...]]:
    """Split ``indices`` into ``shards`` contiguous, near-equal slices.

    Contiguity preserves the caller's stacking order inside each shard, so
    scattering shard results back reproduces the unsharded layout exactly.
    The first ``len % shards`` shards get one extra element (the
    ``np.array_split`` convention); empty shards are never produced.
    """
    indices = tuple(int(i) for i in indices)
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    shards = min(shards, len(indices)) or 1
    base, extra = divmod(len(indices), shards)
    out: list[tuple[int, ...]] = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        out.append(indices[start : start + size])
        start += size
    return out


def degradation_ladder(backend: str) -> tuple[str, ...]:
    """Backend fallback order for retried tasks (most to least capable).

    A task that keeps failing on a rich backend retries on progressively
    simpler ones: process-pool faults (dead workers, lost segments) cannot
    reproduce on threads, and thread-level trouble cannot reproduce on the
    serial rung — which is also the bit-exact reference, so a task that
    survives anywhere produces identical results everywhere.

    The ``persistent`` backend skips the thread rung: its tasks carry
    arena :class:`~repro.runtime.arena.SlotRef` handles, and a thread
    that misses its deadline cannot be terminated — a zombie thread
    holding slot refs could touch slots after their leases return to the
    free list and are re-leased to another batch. The serial rung runs
    inline (no concurrent waiter), so it can never leave a zombie behind.
    """
    if backend == "persistent":
        return ("persistent", "serial")
    if backend == "processes":
        return ("processes", "threads", "serial")
    if backend == "threads":
        return ("threads", "serial")
    if backend == "serial":
        return ("serial",)
    raise ConfigurationError(
        f"no degradation ladder for unknown backend {backend!r}"
    )


def retry_backoff(
    attempt: int, *, base: float = 0.02, cap: float = 1.0
) -> float:
    """Deterministic exponential backoff delay before retry ``attempt``.

    ``attempt`` is 1-based (the first *retry*). No jitter by design: the
    runtime's contract is reproducibility, and the retry schedule is part
    of observable behavior under fault injection.
    """
    if attempt < 1:
        raise ConfigurationError(
            f"backoff attempt must be >= 1, got {attempt}"
        )
    if base < 0.0 or cap < 0.0:
        raise ConfigurationError(
            f"backoff base/cap must be >= 0, got base={base} cap={cap}"
        )
    return min(cap, base * (2.0 ** (attempt - 1)))
