"""Pre-pinned shared-memory arenas with a slot-lease protocol.

Why arenas.  The ``processes`` backend pays a fresh
``multiprocessing.shared_memory`` segment per dispatched unit: the parent
exports the stack (create + copy + registry bookkeeping), every worker
attaches and detaches it, and the parent unlinks once the pickled result
lands.  On small buckets that setup dwarfs the factorization itself —
which is why BENCH_wallclock's ``worker_scaling`` section stayed flat.
An :class:`Arena` hoists all of it out of the dispatch loop: a handful of
large segments are created **once**, carved into fixed-size slots, and a
batch merely *leases* a slot (pops an index off a free list), writes into
it, and returns it once the result has been adopted.  Workers map each
segment a single time — eagerly at spawn via :func:`attach`, or lazily on
first touch via :func:`resolve` — and keep the mapping for their whole
lifetime.

Ownership protocol.  The parent owns every segment and every lease:

- :meth:`Arena.place` / :meth:`Arena.reserve` lease a slot (``place``
  also copies an array in); both return a picklable :class:`SlotRef`.
- A worker calls :func:`resolve` on a ref to get a zero-copy ndarray
  window onto the slot — input slots are read, output slots are written
  in place, and only tiny metadata travels back over the pipe.
- The parent adopts results with :meth:`Arena.view` and MUST return every
  lease with :meth:`Arena.release_lease`, normally from a ``finally``
  block once the factors have been finalized.  The ``repro-lint`` rule
  ``SHM02`` audits exactly this pairing.
- :meth:`Arena.close` unlinks every segment.  Worker death never strands
  a lease: the free list lives in the parent, so a crashed attempt's slot
  is returned by the same ``finally`` block that serves the clean path,
  and a respawned pool re-attaches the unchanged segments by name.

Slots within one segment are uniformly sized.  A reservation that fits no
existing free slot grows the arena by appending a segment whose slot size
covers the request (rounded to a power of two); growth is rare once the
first few batches have sized the arena to the workload's buckets.
"""

from __future__ import annotations

import math
import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.shm import _untrack
from repro.utils.logging import get_logger

__all__ = [
    "Arena",
    "ArenaSpec",
    "SlotRef",
    "attach",
    "resolve",
    "stranded_segments",
]

_log = get_logger("runtime.arena")

#: Default byte size of one slot in a freshly created arena.
DEFAULT_SLOT_BYTES = 1 << 20

#: Default number of slots per segment (first segment and growth alike).
DEFAULT_SLOTS_PER_SEGMENT = 16

#: Every arena segment name starts with this; chaos tests and janitors
#: scan ``/dev/shm`` for it to prove nothing is stranded.
ARENA_PREFIX = "rparena"

_SHM_DIR = "/dev/shm"

_arena_seq = 0
_arena_seq_lock = threading.Lock()


@dataclass(frozen=True)
class SlotRef:
    """A picklable handle to one leased slot window.

    Travels in task manifests instead of the array payload.  ``segment``
    names the shared-memory segment, ``offset`` the byte position of the
    slot, and ``shape``/``dtype`` describe the ndarray window a worker
    materialises with :func:`resolve`.
    """

    segment: str
    slot: int
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return math.prod(self.shape) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ArenaSpec:
    """The attach manifest shipped to a worker at spawn/respawn time.

    Only segment *names* travel — ``SharedMemory`` attaches by name, and
    segments created by later growth are picked up lazily by
    :func:`resolve`, so a spec is never stale in a harmful way.
    """

    segments: tuple[str, ...]


# ---------------------------------------------------------------------------
# process-wide segment registry
# ---------------------------------------------------------------------------
# Maps segment name -> attached SharedMemory.  The arena-owning parent
# registers segments at creation; workers insert attachments here (once
# per segment, eagerly via attach() or lazily via resolve()).  Forked
# children inherit the parent's mappings, which stay valid across fork.

_registry_lock = threading.Lock()
_registry: dict[str, shared_memory.SharedMemory] = {}


def attach(spec: ArenaSpec) -> int:
    """Map every segment in ``spec`` into this process (idempotent).

    Called by persistent workers once at spawn — the whole point of the
    arena is that no further per-task attach happens.  Returns the number
    of segments newly mapped.
    """
    fresh = 0
    for name in spec.segments:
        if _attach_segment(name, existing_ok=True) is not None:
            fresh += 1
    return fresh


def _attach_segment(
    name: str, *, existing_ok: bool
) -> shared_memory.SharedMemory | None:
    """Attach ``name`` if not already mapped; return the new handle."""
    with _registry_lock:
        if name in _registry:
            if not existing_ok:
                raise ConfigurationError(f"arena segment {name!r} already mapped")
            return None
        seg = shared_memory.SharedMemory(name=name)
        _registry[name] = seg
        # CPython registers attaches with the fork-shared resource
        # tracker just like creates; drop the duplicate so the owning
        # parent's unlink stays the single unregister the tracker sees.
        # (Registry first: once mapped, the registry owns the handle.)
        _untrack(name)
        return seg


def resolve(ref: SlotRef) -> np.ndarray:
    """Materialise the ndarray window for a leased slot (zero-copy).

    Works in the owning parent (segments registered at creation), in
    persistent workers (attached at spawn, or lazily here for segments
    the arena grew after the pool came up), and in forked one-shot
    workers (mappings inherited across fork).
    """
    seg = _registry.get(ref.segment)
    if seg is None:
        _attach_segment(ref.segment, existing_ok=True)
        seg = _registry[ref.segment]
    return np.ndarray(ref.shape, dtype=ref.dtype, buffer=seg.buf, offset=ref.offset)


def _forget(names: Iterable[str]) -> None:
    """Drop registry entries for segments the owning arena destroyed."""
    with _registry_lock:
        for name in names:
            _registry.pop(name, None)


# ---------------------------------------------------------------------------
# the arena proper
# ---------------------------------------------------------------------------


class _Segment:
    """One shared-memory segment carved into equal slots."""

    __slots__ = ("name", "shm", "slot_bytes", "nslots", "free")

    def __init__(
        self, name: str, shm: shared_memory.SharedMemory, slot_bytes: int, nslots: int
    ) -> None:
        self.name = name
        self.shm = shm
        self.slot_bytes = slot_bytes
        self.nslots = nslots
        #: LIFO free list of slot indices — reuse keeps pages warm.
        self.free = list(range(nslots - 1, -1, -1))


def _destroy_segments(shms: list[shared_memory.SharedMemory]) -> None:
    """Unmap and unlink segments (finalizer target — must not ref the Arena)."""
    for seg in shms:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - an adopted view is still live
            pass  # the /dev/shm entry still dies below; pages free at exit
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    shms.clear()


class Arena:
    """A parent-owned pool of pre-pinned shared-memory slots.

    ``slot_bytes``/``slots_per_segment`` size the first segment; use
    :meth:`ensure` to pre-size from a bucket plan so the steady state
    never grows.  All methods are thread-safe; the free list and lease
    table live exclusively in the owning parent.
    """

    def __init__(
        self,
        *,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        slots_per_segment: int = DEFAULT_SLOTS_PER_SEGMENT,
    ) -> None:
        if slot_bytes <= 0 or slots_per_segment <= 0:
            raise ConfigurationError(
                "arena slot_bytes and slots_per_segment must be positive, got "
                f"{slot_bytes} / {slots_per_segment}"
            )
        global _arena_seq
        with _arena_seq_lock:
            seq = _arena_seq
            _arena_seq += 1
        self._prefix = f"{ARENA_PREFIX}{os.getpid()}x{seq}"
        self._default_slot_bytes = slot_bytes
        self._slots_per_segment = slots_per_segment
        self._lock = threading.Lock()
        self._segments: list[_Segment] = []
        self._leased: dict[tuple[str, int], SlotRef] = {}
        self._closed = False
        self._counters = {"leases": 0, "returns": 0, "grown_segments": 0}
        #: Shared with the finalizer so segments created later are covered.
        self._owned_shms: list[shared_memory.SharedMemory] = []
        self._finalizer = weakref.finalize(self, _destroy_segments, self._owned_shms)
        self._add_segment(slot_bytes, slots_per_segment)

    # -- sizing ----------------------------------------------------------

    def _add_segment(self, slot_bytes: int, nslots: int) -> _Segment:
        """Create, register, and index a fresh segment (lock held or init)."""
        name = f"{self._prefix}s{len(self._segments)}"
        shm = shared_memory.SharedMemory(  # repro: noqa[SHM01] ownership
            # moves to self._owned_shms; the weakref finalizer (and
            # close()) unmaps and unlinks every segment in that list.
            name=name, create=True, size=slot_bytes * nslots
        )
        seg = _Segment(name, shm, slot_bytes, nslots)
        self._segments.append(seg)
        self._owned_shms.append(shm)
        with _registry_lock:
            _registry[name] = shm
        return seg

    @staticmethod
    def _fit_slot_bytes(nbytes: int) -> int:
        """Power-of-two slot size covering ``nbytes``."""
        return 1 << max(1, int(nbytes) - 1).bit_length()

    def ensure(self, nbytes: int, count: int = 1) -> None:
        """Pre-grow so at least ``count`` free slots of ``>= nbytes`` exist.

        Called with the largest stack footprint of a bucket plan before
        dispatch, so the steady state leases without ever growing.
        """
        with self._lock:
            self._check_open()
            have = sum(
                len(seg.free) for seg in self._segments if seg.slot_bytes >= nbytes
            )
            if have >= count:
                return
            slot_bytes = max(self._default_slot_bytes, self._fit_slot_bytes(nbytes))
            nslots = max(self._slots_per_segment, count - have)
            self._add_segment(slot_bytes, nslots)
            self._counters["grown_segments"] += 1

    # -- lease protocol --------------------------------------------------

    def reserve(self, shape: tuple[int, ...], dtype: np.dtype | str) -> SlotRef:
        """Lease an output slot large enough for ``shape``/``dtype``."""
        dt = np.dtype(dtype)
        nbytes = math.prod(shape) * dt.itemsize
        with self._lock:
            self._check_open()
            seg = self._find_free(nbytes)
            if seg is None:
                slot_bytes = max(
                    self._default_slot_bytes, self._fit_slot_bytes(nbytes)
                )
                seg = self._add_segment(slot_bytes, self._slots_per_segment)
                self._counters["grown_segments"] += 1
            slot = seg.free.pop()
            ref = SlotRef(seg.name, slot, slot * seg.slot_bytes, tuple(shape), dt.str)
            self._leased[(seg.name, slot)] = ref
            self._counters["leases"] += 1
        return ref

    def _find_free(self, nbytes: int) -> _Segment | None:
        """First segment with a free slot that fits (lock held)."""
        for seg in self._segments:
            if seg.free and seg.slot_bytes >= nbytes:
                return seg
        return None

    def place(self, arr: np.ndarray) -> SlotRef:
        """Lease an input slot and copy ``arr`` into it."""
        arr = np.ascontiguousarray(arr)
        ref = self.reserve(arr.shape, arr.dtype)
        resolve(ref)[...] = arr
        return ref

    def view(self, ref: SlotRef) -> np.ndarray:
        """Parent-side window onto a leased slot (zero-copy adoption)."""
        with self._lock:
            self._check_open()
            if (ref.segment, ref.slot) not in self._leased:
                raise ConfigurationError(
                    f"arena slot {ref.segment}[{ref.slot}] is not leased — "
                    "views may only adopt outstanding leases"
                )
        return resolve(ref)

    def release_lease(self, ref: SlotRef) -> None:
        """Return a leased slot to the free list.

        A second release of the same lease is a protocol error (the slot
        may already be leased to someone else), mirroring the sanitizer's
        double-release rule for one-shot segments.
        """
        with self._lock:
            if self._closed:
                return
            key = (ref.segment, ref.slot)
            if key not in self._leased:
                raise ConfigurationError(
                    f"arena slot {ref.segment}[{ref.slot}] is not outstanding — "
                    "double release or foreign ref"
                )
            del self._leased[key]
            for seg in self._segments:
                if seg.name == ref.segment:
                    seg.free.append(ref.slot)
                    break
            self._counters["returns"] += 1

    def reclaim_leases(self) -> int:
        """Force-return every outstanding lease (post-mortem janitor).

        The supervised dispatch paths return leases from ``finally``
        blocks, so this is a belt-and-braces hook for teardown paths that
        lost track (and for chaos tests proving nothing can stay leased).
        """
        with self._lock:
            if self._closed:
                return 0
            count = len(self._leased)
            for (name, slot) in list(self._leased):
                for seg in self._segments:
                    if seg.name == name:
                        seg.free.append(slot)
                        break
            self._leased.clear()
            self._counters["returns"] += count
            return count

    # -- introspection ---------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def spec(self) -> ArenaSpec:
        with self._lock:
            self._check_open()
            return ArenaSpec(tuple(seg.name for seg in self._segments))

    def outstanding(self) -> int:
        with self._lock:
            return len(self._leased)

    def capacity_bytes(self) -> int:
        with self._lock:
            return sum(seg.slot_bytes * seg.nslots for seg in self._segments)

    def stats(self) -> dict[str, int]:
        """Lease-protocol counters for the dispatch-overhead breakdown."""
        with self._lock:
            out = dict(self._counters)
            out["outstanding"] = len(self._leased)
            out["segments"] = len(self._segments)
            out["capacity_bytes"] = sum(
                seg.slot_bytes * seg.nslots for seg in self._segments
            )
        return out

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            names = [seg.name for seg in self._segments]
            self._leased.clear()
            self._segments.clear()
        _forget(names)
        self._finalizer()

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("arena is closed")

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._segments)} segments"
        return f"Arena({self._prefix}, {state}, outstanding={len(self._leased)})"


def stranded_segments() -> list[str]:
    """Names of arena segments currently present in ``/dev/shm``.

    Chaos and serve tests call this after teardown to prove the lease
    protocol stranded nothing (empty list expected).
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - non-Linux hosts
        return []
    return sorted(n for n in names if n.startswith(ARENA_PREFIX))
