"""Resilient execution: deadlines, bounded retries, and backend fallback.

:class:`ResilientExecutor` wraps any :class:`~repro.runtime.executor.
Executor` and turns its ``map`` into a supervised, attempt-bounded run:

- every task gets a **deadline** (``RetryPolicy.task_timeout``) enforced
  while waiting on its future;
- failed tasks are **retried** up to ``max_retries`` times with
  deterministic exponential backoff (no jitter — the retry schedule is
  observable behavior and must replay exactly under fault injection);
- each retry runs one rung further down the **degradation ladder**
  (:func:`~repro.runtime.scheduler.degradation_ladder`): a task that died
  on the process pool retries on threads, then on the serial rung — the
  bit-exact reference, where an infrastructure fault cannot reproduce
  (arena-transport tasks skip the thread rung entirely; see the ladder's
  docstring);
- a **timed-out manifest on the persistent backend respawns the pool**
  before the retry round: a started manifest cannot be cancelled, and a
  zombie worker still holding :class:`~repro.runtime.arena.SlotRef`
  handles could read or write slots after their leases return to the
  free list and are re-leased — terminating the workers (the respawn
  re-attaches the arena and replays warm plans) makes that impossible;
- a broken process pool (dead worker) is **respawned**, and the dead
  task's shared-memory segments are **reclaimed** by namespace prefix
  (:func:`repro.runtime.shm.reclaim`) so crashes never strand pages;
- deterministic **numerical** failures (:class:`~repro.errors.
  ConvergenceError` and friends) are never retried — replaying them
  wastes work and reproduces the same bits — they resolve immediately,
  either raised or returned as :class:`~repro.runtime.executor.TaskError`
  values for the engine's quarantine path.

Because every rung partitions the same per-matrix-independent work, a
task that succeeds on *any* rung returns exactly the bytes the serial
reference computes — recovery never perturbs results, only wall-clock.

The wrapper is also the arming point for :mod:`repro.runtime.faults`:
each dispatched task runs inside a :class:`_TaskShell` that activates a
deterministic fault frame keyed by task id and attempt, so injected
faults fire on first attempts and retries run clean.
"""

from __future__ import annotations

import functools
import os
import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DeadlineExceeded,
    PlanError,
    ShapeError,
    TaskFailure,
)
from repro.runtime import faults, shm
from repro.runtime.executor import (
    Executor,
    SerialExecutor,
    TaskError,
    ThreadExecutor,
    _CapturedCall,
    _submission_order,
)
from repro.runtime.scheduler import degradation_ladder, retry_backoff
from repro.utils.logging import get_logger

__all__ = [
    "RetryPolicy",
    "ResilientExecutor",
    "policy_of",
    "base_executor",
]

_log = get_logger("runtime.resilient")

#: Deterministic failures: retrying replays the identical computation, so
#: these resolve on first occurrence (raise or quarantine, never retry).
_NONRETRYABLE = (ConfigurationError, ShapeError, PlanError, ConvergenceError)


def _retryable(exc: BaseException) -> bool:
    return isinstance(exc, Exception) and not isinstance(exc, _NONRETRYABLE)


@dataclass(frozen=True)
class RetryPolicy:
    """Supervision parameters of a :class:`ResilientExecutor`.

    Attributes
    ----------
    max_retries:
        Retries per task after its first attempt (0 = fail fast).
    task_timeout:
        Per-task deadline in seconds while waiting on a pool future
        (``None``: wait forever). The serial rung executes inline, so a
        deadline there can only come from fault injection.
    backoff_base / backoff_cap:
        Retry ``k`` sleeps ``min(cap, base * 2**(k-1))`` seconds.
    on_failure:
        ``"raise"`` or ``"quarantine"`` — how batch drivers above the
        executor should treat deterministic numerical failures. The
        executor itself only transports the mode (see
        :meth:`BatchedJacobiEngine.svd_batch`).
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be > 0, got {self.task_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff base/cap must be >= 0, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.on_failure not in ("raise", "quarantine"):
            raise ConfigurationError(
                f"on_failure must be 'raise' or 'quarantine', got "
                f"{self.on_failure!r}"
            )


class _TaskShell:
    """Picklable per-attempt task wrapper: fault frame + shm namespace.

    Travels to process workers (state is just the task function reference,
    the frozen fault plan, and identity strings), so injection decisions
    and segment naming are identical wherever the attempt lands.
    """

    __slots__ = (
        "fn", "plan", "key", "attempt", "backend", "parent_pid", "namespace"
    )

    def __init__(
        self,
        fn: Callable,
        plan: faults.FaultPlan | None,
        *,
        key: str,
        attempt: int,
        backend: str,
        parent_pid: int,
        namespace: str,
    ) -> None:
        self.fn = fn
        self.plan = plan
        self.key = key
        self.attempt = attempt
        self.backend = backend
        self.parent_pid = parent_pid
        self.namespace = namespace

    def __call__(self, item):
        with faults.activate(
            self.plan,
            self.key,
            attempt=self.attempt,
            backend=self.backend,
            parent_pid=self.parent_pid,
        ):
            with shm.namespace(self.namespace):
                faults.on_task_start()
                return self.fn(item)


class ResilientExecutor(Executor):
    """Retry/deadline/fallback supervisor around a base executor.

    Mirrors the wrapped executor's scheduling surface (``backend``,
    ``workers``, ``min_shard``, ``supports_shared_state``), so engines
    plan shards and pick dispatch paths exactly as they would against the
    bare executor — resilience changes failure handling, never planning.
    """

    def __init__(
        self,
        inner: Executor,
        policy: RetryPolicy | None = None,
        *,
        namespace_root: str | None = None,
    ) -> None:
        super().__init__(inner.workers, min_shard=inner.min_shard)
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.backend = inner.backend
        self.supports_shared_state = inner.supports_shared_state
        self._fallbacks: list[Executor] | None = None
        self._map_seq = 0
        #: Prefix every task namespace of this executor starts with. The
        #: default scopes segments per process; a cluster replica passes
        #: its own root (e.g. ``rpserve0r1``) so that when the *replica*
        #: dies, every segment any of its attempts ever created can be
        #: reclaimed by one prefix sweep without touching other replicas.
        self.namespace_root = (
            namespace_root
            if namespace_root is not None
            else f"rp{os.getpid()}"
        )
        #: Retry history of the most recent top-level ``map`` call.
        self.last_failures: list[TaskFailure] = []

    # -- the degradation ladder ------------------------------------------

    def _rungs(self) -> list[Executor]:
        """The inner executor plus lazily-built fallback executors."""
        if self._fallbacks is None:
            self._fallbacks = []
            for name in degradation_ladder(self.backend)[1:]:
                if name == "threads":
                    self._fallbacks.append(
                        ThreadExecutor(self.workers, min_shard=self.min_shard)
                    )
                else:
                    self._fallbacks.append(
                        SerialExecutor(min_shard=self.min_shard)
                    )
        return [self.inner, *self._fallbacks]

    # -- supervised map --------------------------------------------------

    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        costs: Sequence[float] | None = None,
        on_error: str = "raise",
    ) -> list:
        if on_error not in ("raise", "return"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        items = list(items)
        if not items:
            return []
        if self.active:
            # Nested map from inside one of our tasks: run inline under
            # the already-active fault frame (retry ownership stays with
            # the outermost task).
            run = _CapturedCall(fn) if on_error == "return" else fn
            return [run(item) for item in items]
        return self._map_supervised(fn, items, costs, on_error)

    def _map_supervised(
        self,
        fn: Callable,
        items: list,
        costs: Sequence[float] | None,
        on_error: str,
    ) -> list:
        policy = self.policy
        plan = faults.installed()
        rungs = self._rungs()
        self._map_seq += 1
        ns_root = f"{self.namespace_root}x{self._map_seq}"
        count = len(items)
        results: list = [None] * count
        errors: dict[int, BaseException] = {}
        history: dict[int, list[TaskFailure]] = {i: [] for i in range(count)}
        stale_namespaces: list[str] = []
        pending = _submission_order(count, costs)
        for attempt in range(policy.max_retries + 1):
            if not pending:
                break
            rung = rungs[min(attempt, len(rungs) - 1)]
            if attempt:
                time.sleep(
                    retry_backoff(
                        attempt,
                        base=policy.backoff_base,
                        cap=policy.backoff_cap,
                    )
                )
                _log.debug(
                    "retry round %d on rung %s: tasks %s",
                    attempt, rung.backend, pending,
                )
            futures: list[tuple[int, str, Future]] = []
            for idx in pending:
                key = f"{ns_root}t{idx}"
                shell = _TaskShell(
                    fn,
                    plan,
                    key=key,
                    attempt=attempt,
                    backend=rung.backend,
                    parent_pid=os.getpid(),
                    namespace=f"{key}a{attempt}",
                )
                futures.append(
                    (idx, shell.namespace, self._dispatch(rung, shell, items[idx]))
                )
            retry: list[int] = []
            respawned = False
            for idx, task_ns, fut in futures:
                try:
                    results[idx] = fut.result(timeout=policy.task_timeout)
                    continue
                except DeadlineExceeded as caught:
                    # Raised by the task itself (an injected hang on the
                    # serial rung) — already a classified deadline; must
                    # not be mistaken for the waiter's FutureTimeoutError
                    # below (DeadlineExceeded subclasses TimeoutError).
                    exc: BaseException = caught
                except FutureTimeoutError as caught:
                    if policy.task_timeout is None:
                        # No deadline armed, so this TimeoutError came out
                        # of the task body; classify it like any failure.
                        exc = caught
                    else:
                        exc = DeadlineExceeded(
                            f"task {idx} missed its "
                            f"{policy.task_timeout:.4g}s deadline on the "
                            f"{rung.backend} rung (attempt {attempt})"
                        )
                        fut.cancel()
                except Exception as caught:  # repro: noqa[EXC01] supervisor
                    # boundary: every task failure is classified below —
                    # retried, quarantined, or re-raised — never swallowed.
                    exc = caught
                # The attempt's namespace can only hold segments nobody
                # will ever release now; reclaim immediately (and again at
                # map end, in case a timed-out task was still creating).
                stale_namespaces.append(task_ns)
                shm.reclaim(task_ns)
                if isinstance(exc, BrokenExecutor) and not respawned:
                    # One dead worker poisons every future of the pool;
                    # replace it once per round, before the retry round.
                    rung.respawn()
                    respawned = True
                elif (
                    isinstance(exc, DeadlineExceeded)
                    and getattr(rung, "arena_transport", False)
                    and not respawned
                ):
                    # fut.cancel() cannot stop a manifest that already
                    # started: the slow worker would keep running with
                    # its SlotRefs while the retry succeeds, the engine
                    # returns the leases, and the free list re-leases
                    # those slots to the next batch — a zombie write then
                    # silently corrupts unrelated results. Terminate the
                    # pool before the retry round (respawn re-attaches
                    # the arena and replays the warm set); other in-
                    # flight manifests fail as BrokenExecutor and retry.
                    rung.respawn()
                    respawned = True
                history[idx].append(
                    TaskFailure(
                        index=idx,
                        stage="executor",
                        cause=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt + 1,
                        recovered=False,
                    )
                )
                if _retryable(exc) and attempt < policy.max_retries:
                    retry.append(idx)
                else:
                    errors[idx] = exc
            pending = retry
        for task_ns in stale_namespaces:
            shm.reclaim(task_ns)
        self.last_failures = [
            entry for idx in sorted(history) for entry in history[idx]
        ]
        if errors:
            if on_error == "raise":
                raise errors[min(errors)]
            for idx, exc in errors.items():
                results[idx] = TaskError(
                    error=exc, failures=tuple(history[idx])
                )
        return results

    def _dispatch(self, rung: Executor, shell: _TaskShell, item) -> Future:
        if rung.supports_shared_state:
            # Route through our _run_task so `self.active` is visible in
            # the rung's worker thread: nested maps then inline against
            # *this* wrapper instead of re-submitting (deadlock-free).
            return rung.submit(functools.partial(self._run_task, shell), item)
        return rung.submit(shell, item)

    # -- delegation ------------------------------------------------------

    def submit(self, fn: Callable, item) -> Future:
        return self.inner.submit(fn, item)

    def respawn(self) -> None:
        self.inner.respawn()

    def close(self) -> None:
        self.inner.close()
        for ex in self._fallbacks or ():
            ex.close()
        self._fallbacks = None


def policy_of(executor: Executor | None) -> RetryPolicy | None:
    """The executor's retry policy when it is resilient, else ``None``."""
    if isinstance(executor, ResilientExecutor):
        return executor.policy
    return None


def base_executor(executor: Executor) -> Executor:
    """Unwrap a resilient executor to the backend executor it supervises."""
    if isinstance(executor, ResilientExecutor):
        return executor.inner
    return executor
